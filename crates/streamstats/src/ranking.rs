//! The order-statistic ranking: every finished student under the
//! analysis total order (score descending, student id ascending), with
//! `O(log n)`-ish rank selection for the moving group boundary.
//!
//! Scores are mapped to monotone integer keys ([`RankKey`]) and spread
//! over [`BUCKETS`] Fenwick-counted buckets by their top bits; the k-th
//! ranked student is found by a Fenwick binary descent to the right
//! bucket followed by an in-order walk of that bucket's set. Real score
//! distributions span many buckets, so the walk is short; adversarially
//! identical scores degrade to a linear walk of one bucket but stay
//! correct (and the per-finish repair only ever selects ranks adjacent
//! to the group boundaries).

use mine_core::StudentId;

use crate::fenwick::Fenwick;

/// Number of score buckets backing the Fenwick tree.
pub const BUCKETS: usize = 1024;

/// A student's position in the analysis total order.
///
/// Ordering is lexicographic on `(inverted score bits, student id)`:
/// ascending `RankKey` order is exactly the batch pipeline's ranking of
/// score descending with ties broken by ascending id.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RankKey {
    /// Monotone-inverted IEEE-754 bits: ascending `ibits` is descending
    /// score.
    ibits: u64,
    /// Tie break: ascending student id.
    student: StudentId,
}

impl RankKey {
    /// Builds the key for a finite `score`; `None` for NaN/±∞, which
    /// have no defined rank (the batch comparator treats them as equal
    /// to everything, so such records are unstreamable).
    #[must_use]
    pub fn new(score: f64, student: StudentId) -> Option<Self> {
        if !score.is_finite() {
            return None;
        }
        // Collapse -0.0 onto +0.0: the batch comparator sees them as
        // equal, so they must map to one integer key.
        let score = if score == 0.0 { 0.0 } else { score };
        let bits = score.to_bits();
        // Standard order-preserving map: flip all bits for negatives,
        // flip the sign bit for positives — ascending integer order is
        // then ascending score order. Invert for descending.
        let monotone = if score.is_sign_negative() {
            !bits
        } else {
            bits | 0x8000_0000_0000_0000
        };
        Some(Self {
            ibits: !monotone,
            student,
        })
    }

    /// The student this key ranks.
    #[must_use]
    pub fn student(&self) -> &StudentId {
        &self.student
    }

    /// The Fenwick bucket this key counts under.
    #[must_use]
    pub fn bucket(&self) -> usize {
        (self.ibits >> 54) as usize
    }
}

/// The full ranking: Fenwick counts per bucket plus ordered per-bucket
/// sets resolving exact order within a bucket.
#[derive(Debug)]
pub struct Ranking {
    counts: Fenwick,
    buckets: Vec<std::collections::BTreeSet<RankKey>>,
}

impl Default for Ranking {
    fn default() -> Self {
        Self::new()
    }
}

impl Ranking {
    /// An empty ranking.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: Fenwick::new(BUCKETS),
            buckets: vec![std::collections::BTreeSet::new(); BUCKETS],
        }
    }

    /// Ranked students.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.total() as usize
    }

    /// Whether nobody is ranked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a key. Returns `false` when it was already present.
    pub fn insert(&mut self, key: RankKey) -> bool {
        let bucket = key.bucket();
        let fresh = self.buckets[bucket].insert(key);
        if fresh {
            self.counts.add(bucket);
        }
        fresh
    }

    /// Removes a key. Returns `false` when it was not present.
    pub fn remove(&mut self, key: &RankKey) -> bool {
        let bucket = key.bucket();
        let present = self.buckets[bucket].remove(key);
        if present {
            self.counts.remove(bucket);
        }
        present
    }

    /// The 0-based `rank`-th key (rank 0 = best score, ties by id).
    #[must_use]
    pub fn select(&self, rank: usize) -> Option<&RankKey> {
        let (bucket, offset) = self.counts.select(rank as u64)?;
        self.buckets[bucket].iter().nth(offset as usize)
    }

    /// The per-bucket occupancy histogram `(bucket, count)` for
    /// non-empty buckets — the engine's score-histogram backing state,
    /// exposed for observability.
    #[must_use]
    pub fn bucket_histogram(&self) -> Vec<(usize, u64)> {
        (0..BUCKETS)
            .filter_map(|b| {
                let count = self.counts.count(b);
                (count > 0).then_some((b, count))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sid(s: &str) -> StudentId {
        s.parse().unwrap()
    }

    #[test]
    fn rank_order_is_score_descending_then_id_ascending() {
        let mut ranking = Ranking::new();
        ranking.insert(RankKey::new(5.0, sid("carol")).unwrap());
        ranking.insert(RankKey::new(9.0, sid("bob")).unwrap());
        ranking.insert(RankKey::new(5.0, sid("alice")).unwrap());
        ranking.insert(RankKey::new(-2.0, sid("dan")).unwrap());
        let order: Vec<&str> = (0..4)
            .map(|r| ranking.select(r).unwrap().student().as_str())
            .collect();
        assert_eq!(order, ["bob", "alice", "carol", "dan"]);
        assert_eq!(ranking.select(4), None);
    }

    #[test]
    fn negative_zero_ties_with_positive_zero() {
        let a = RankKey::new(0.0, sid("a")).unwrap();
        let b = RankKey::new(-0.0, sid("b")).unwrap();
        assert_eq!(a.bucket(), b.bucket());
        assert!(a < b, "tie resolves by id");
    }

    #[test]
    fn non_finite_scores_have_no_key() {
        assert!(RankKey::new(f64::NAN, sid("x")).is_none());
        assert!(RankKey::new(f64::INFINITY, sid("x")).is_none());
        assert!(RankKey::new(f64::NEG_INFINITY, sid("x")).is_none());
    }

    proptest! {
        /// The ranking's select agrees with sorting (score desc, id asc)
        /// the way `ScoreGroups::split` does.
        #[test]
        fn select_matches_full_sort(
            scores in proptest::collection::vec(-1000.0f64..1000.0, 1..60)
        ) {
            let mut ranking = Ranking::new();
            let mut oracle: Vec<(StudentId, f64)> = Vec::new();
            for (i, &score) in scores.iter().enumerate() {
                // Duplicate every third score to force bucket ties.
                let score = if i % 3 == 0 { score.trunc() } else { score };
                let student = sid(&format!("s{i:03}"));
                ranking.insert(RankKey::new(score, student.clone()).unwrap());
                oracle.push((student, score));
            }
            oracle.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            for (rank, (student, _)) in oracle.iter().enumerate() {
                prop_assert_eq!(ranking.select(rank).unwrap().student(), student);
            }
        }
    }
}
