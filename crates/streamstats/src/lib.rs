//! Streaming sufficient statistics for live item analysis.
//!
//! The batch pipeline (`mine-analysis`) recomputes the full §4 report
//! from every finished sitting on each read — O(students × questions)
//! per request, paid again whenever one more student finishes. This
//! crate maintains *running sufficient statistics* per exam instead:
//!
//! * a Fenwick-tree order-statistic ranking over total scores (the
//!   moving 25 %-group boundary),
//! * per-question per-option counters for the current high/low groups,
//!   incrementally re-assigned as the boundary shifts,
//! * order-independent whole-class accumulators (time multisets,
//!   attempted counts) feeding the statistics and figures.
//!
//! A finish updates the engine in O(questions + re-assignments); a read
//! assembles the complete report — groups, Tables 1–4, rules, signals,
//! figures, Cronbach's alpha — from the counters without touching the
//! raw records, byte-identical (under `serde_json`) to the batch
//! pipeline over the same rows. Inputs outside the counters' exact
//! domain (mixed problem sets, duplicate in-row problems, non-finite
//! scores, classes too small to split) report as [`Unstreamable`] and
//! callers fall back to the batch path, which reproduces the batch
//! pipeline's exact output or error.
//!
//! [`alt`] derives the option-wise alternative discrimination view of
//! Joshi et al. (arXiv:1906.07941) from the same counters — a pure
//! read-side assembly, no extra state.

#![warn(missing_docs)]

use std::fmt;

pub mod alt;
mod assemble;
pub mod engine;
pub mod fenwick;
pub mod ranking;

pub use alt::{alt_indices, AltIndices, AltOption, AltQuestion};
pub use engine::{ExamStream, StreamEngine};
pub use fenwick::Fenwick;
pub use ranking::{RankKey, Ranking, BUCKETS};

/// Why a stream cannot currently reproduce the batch report exactly.
///
/// Not an analysis failure: the caller is expected to fall back to the
/// batch pipeline, which either succeeds (and defines the answer) or
/// fails with the authoritative analysis error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unstreamable {
    reason: &'static str,
}

impl Unstreamable {
    pub(crate) fn new(reason: &'static str) -> Self {
        Self { reason }
    }

    /// Human-readable reason for the fallback.
    #[must_use]
    pub fn reason(&self) -> &str {
        self.reason
    }
}

impl fmt::Display for Unstreamable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "streaming statistics unavailable: {}", self.reason)
    }
}

impl std::error::Error for Unstreamable {}
