//! Option-wise alternative discrimination indices.
//!
//! Joshi et al. ("A novel alternative to analyzing multiple choice
//! questions via discrimination index", arXiv:1906.07941) argue the
//! classical `D = PH − PL` collapses too much: it only watches the
//! correct option, so a question whose *distractors* systematically
//! attract the high group still looks healthy. The alternative view
//! scores every option from the same high/low counters Table 1 already
//! holds:
//!
//! * per option `o`: `d_o = (H_o − L_o) / k` — the option-level
//!   discrimination (positive = preferred by the strong group) — and
//!   `preference_o = (H_o + L_o) / 2k`, the option's overall allure;
//! * per question: `D* = d_correct − max(d_distractor)` — the classical
//!   index penalized by the most high-group-attracting distractor. For
//!   a healthy item every distractor has `d_o ≤ 0` and `D*` is at least
//!   the classical `D`; a distractor popular with strong students drags
//!   `D*` below it.
//!
//! Everything here is a pure function of an assembled report (streaming
//! or batch produce identical ones), so both `?mode=` paths expose
//! identical alternative indices.

use serde::Serialize;

use mine_analysis::{ExamAnalysis, OptionMatrix};
use mine_core::{OptionKey, ProblemId};

/// The alternative-index view of one exam analysis.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AltIndices {
    /// Students per score group (the `k` every fraction divides by).
    pub group_size: usize,
    /// Per analyzed question, exam order.
    pub questions: Vec<AltQuestion>,
}

/// Alternative indices for one question.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AltQuestion {
    /// 1-based question number (matching the main report).
    pub number: usize,
    /// The problem.
    pub problem: ProblemId,
    /// Classical `D = PH − PL`.
    pub discrimination: f64,
    /// `D* = d_correct − max(d_distractor)`; `None` for non-choice
    /// questions (no option counters to derive it from).
    pub alt_discrimination: Option<f64>,
    /// Per-option breakdown; empty for non-choice questions.
    pub options: Vec<AltOption>,
}

/// One option's counters and derived indices.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AltOption {
    /// The option key.
    pub option: OptionKey,
    /// Whether this is the correct option.
    pub correct: bool,
    /// High-group students choosing it.
    pub high: usize,
    /// Low-group students choosing it.
    pub low: usize,
    /// `d_o = (H_o − L_o) / k`.
    pub discrimination: f64,
    /// `(H_o + L_o) / 2k` — the option's overall allure.
    pub preference: f64,
}

/// Derives the alternative indices from an assembled analysis.
#[must_use]
pub fn alt_indices(analysis: &ExamAnalysis) -> AltIndices {
    let group_size = analysis.groups.group_size();
    let questions = analysis
        .questions
        .iter()
        .map(|question| {
            let (alt_discrimination, options) = match &question.matrix {
                Some(matrix) => {
                    let options = option_rows(matrix, group_size);
                    (Some(alt_of(&options)), options)
                }
                None => (None, Vec::new()),
            };
            AltQuestion {
                number: question.indices.number,
                problem: question.indices.problem.clone(),
                discrimination: question.indices.discrimination.value(),
                alt_discrimination,
                options,
            }
        })
        .collect();
    AltIndices {
        group_size,
        questions,
    }
}

fn option_rows(matrix: &OptionMatrix, group_size: usize) -> Vec<AltOption> {
    let k = group_size as f64;
    OptionKey::first(matrix.option_count())
        .map(|key| {
            let high = matrix.high_count(key);
            let low = matrix.low_count(key);
            AltOption {
                option: key,
                correct: key == matrix.correct,
                high,
                low,
                discrimination: (high as f64 - low as f64) / k,
                preference: (high + low) as f64 / (2.0 * k),
            }
        })
        .collect()
}

fn alt_of(options: &[AltOption]) -> f64 {
    let correct = options
        .iter()
        .find(|o| o.correct)
        .map_or(0.0, |o| o.discrimination);
    let worst_distractor = options
        .iter()
        .filter(|o| !o.correct)
        .map(|o| o.discrimination)
        .fold(f64::NEG_INFINITY, f64::max);
    if worst_distractor.is_finite() {
        correct - worst_distractor.max(0.0)
    } else {
        // Single-option question: nothing to penalize with.
        correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(high: Vec<usize>, low: Vec<usize>) -> OptionMatrix {
        OptionMatrix {
            problem: "q0".parse().unwrap(),
            correct: OptionKey::A,
            high,
            low,
        }
    }

    #[test]
    fn healthy_item_keeps_classical_discrimination() {
        // Correct option splits 9/3, distractors all lean low.
        let rows = option_rows(&matrix(vec![9, 1, 0], vec![3, 4, 3]), 10);
        assert_eq!(rows.len(), 3);
        assert!((rows[0].discrimination - 0.6).abs() < 1e-12);
        assert!(rows[1].discrimination < 0.0);
        // No distractor attracts the high group, so D* == d_correct.
        assert!((alt_of(&rows) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn high_group_attracting_distractor_is_penalized() {
        // Option B pulls 4 more high than low students.
        let rows = option_rows(&matrix(vec![5, 5, 0], vec![4, 1, 5]), 10);
        let alt = alt_of(&rows);
        let classical = rows[0].discrimination;
        assert!(
            alt < classical,
            "D*={alt} must undercut D={classical} when a distractor leans high"
        );
        assert!((alt - (0.1 - 0.4)).abs() < 1e-12);
    }

    #[test]
    fn preference_is_the_mean_allure() {
        let rows = option_rows(&matrix(vec![6, 4], vec![2, 8]), 10);
        assert!((rows[0].preference - 0.4).abs() < 1e-12);
        assert!((rows[1].preference - 0.6).abs() < 1e-12);
    }
}
