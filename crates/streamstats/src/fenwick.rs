//! A Fenwick (binary indexed) tree over a fixed number of buckets,
//! used as the counting layer of the order-statistic ranking.
//!
//! The ranking spreads students over [`crate::ranking::BUCKETS`] score
//! buckets; this tree answers "how many students sit in buckets
//! `0..=b`" and "which bucket holds the k-th ranked student" in
//! `O(log buckets)`, independent of class size. Both are exact counts —
//! the in-bucket order is resolved by the ranking's per-bucket sets.

/// Fenwick tree of `u64` counts over a fixed bucket range.
#[derive(Debug, Clone)]
pub struct Fenwick {
    /// 1-indexed partial sums; `tree[i]` covers `i - lowbit(i) + 1..=i`.
    tree: Vec<u64>,
    /// Number of addressable buckets.
    len: usize,
    /// Largest power of two `<= len`, the starting stride of `select`.
    top: usize,
}

impl Fenwick {
    /// An empty tree over `len` buckets.
    #[must_use]
    pub fn new(len: usize) -> Self {
        let top = if len == 0 {
            0
        } else {
            1 << (usize::BITS - 1 - len.leading_zeros())
        };
        Self {
            tree: vec![0; len + 1],
            len,
            top,
        }
    }

    /// Number of addressable buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no counts at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Adds one count to `bucket`.
    ///
    /// # Panics
    ///
    /// Panics when `bucket >= len`.
    pub fn add(&mut self, bucket: usize) {
        assert!(bucket < self.len, "bucket {bucket} out of {}", self.len);
        let mut i = bucket + 1;
        while i <= self.len {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Removes one count from `bucket`.
    ///
    /// # Panics
    ///
    /// Panics when `bucket >= len` or the bucket is already empty
    /// (checked via the prefix sums, so corruption is caught early).
    pub fn remove(&mut self, bucket: usize) {
        assert!(bucket < self.len, "bucket {bucket} out of {}", self.len);
        assert!(self.count(bucket) > 0, "bucket {bucket} underflow");
        let mut i = bucket + 1;
        while i <= self.len {
            self.tree[i] -= 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Total count in buckets `0..=bucket`.
    ///
    /// # Panics
    ///
    /// Panics when `bucket >= len`.
    #[must_use]
    pub fn prefix(&self, bucket: usize) -> u64 {
        assert!(bucket < self.len, "bucket {bucket} out of {}", self.len);
        let mut sum = 0;
        let mut i = bucket + 1;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Total count across all buckets.
    #[must_use]
    pub fn total(&self) -> u64 {
        if self.len == 0 {
            0
        } else {
            self.prefix(self.len - 1)
        }
    }

    /// Count in `bucket` alone.
    #[must_use]
    pub fn count(&self, bucket: usize) -> u64 {
        let below = if bucket == 0 {
            0
        } else {
            self.prefix(bucket - 1)
        };
        self.prefix(bucket) - below
    }

    /// Locates the 0-based `k`-th count in bucket order: returns the
    /// bucket holding it and the 0-based offset within that bucket, or
    /// `None` when fewer than `k + 1` counts are stored.
    ///
    /// This is the classic Fenwick binary descent: walk strides from the
    /// largest power of two down, keeping the invariant that `pos`
    /// covers a prefix with at most `k` counts.
    #[must_use]
    pub fn select(&self, k: u64) -> Option<(usize, u64)> {
        if k >= self.total() {
            return None;
        }
        let mut pos = 0usize; // number of buckets confirmed before the target
        let mut remaining = k + 1; // 1-based rank still to find
        let mut stride = self.top;
        while stride > 0 {
            let next = pos + stride;
            if next <= self.len && self.tree[next] < remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            stride >>= 1;
        }
        // `pos` full buckets precede the target, so it lives in bucket
        // `pos` (0-indexed) at offset `remaining - 1`.
        Some((pos, remaining - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_tree_has_no_counts() {
        let tree = Fenwick::new(16);
        assert!(tree.is_empty());
        assert_eq!(tree.total(), 0);
        assert_eq!(tree.select(0), None);
    }

    #[test]
    fn prefix_sums_match_naive_accumulation() {
        let mut tree = Fenwick::new(10);
        let adds = [3usize, 3, 0, 9, 5, 5, 5, 1];
        for &bucket in &adds {
            tree.add(bucket);
        }
        let mut naive = [0u64; 10];
        for &bucket in &adds {
            naive[bucket] += 1;
        }
        let mut running = 0;
        for (bucket, &count) in naive.iter().enumerate() {
            running += count;
            assert_eq!(tree.prefix(bucket), running, "prefix({bucket})");
            assert_eq!(tree.count(bucket), count, "count({bucket})");
        }
        assert_eq!(tree.total(), adds.len() as u64);
    }

    #[test]
    fn kth_order_queries_walk_the_buckets() {
        let mut tree = Fenwick::new(8);
        for bucket in [1usize, 4, 4, 7] {
            tree.add(bucket);
        }
        assert_eq!(tree.select(0), Some((1, 0)));
        assert_eq!(tree.select(1), Some((4, 0)));
        assert_eq!(tree.select(2), Some((4, 1)));
        assert_eq!(tree.select(3), Some((7, 0)));
        assert_eq!(tree.select(4), None);
    }

    #[test]
    fn boundary_ties_resolve_by_offset_within_the_bucket() {
        // Five counts piled on one bucket: every rank maps to the same
        // bucket with ascending offsets, which the ranking layer then
        // resolves through its ordered per-bucket set.
        let mut tree = Fenwick::new(4);
        for _ in 0..5 {
            tree.add(2);
        }
        for k in 0..5 {
            assert_eq!(tree.select(k), Some((2, k)));
        }
        // Edge buckets work too.
        tree.add(0);
        tree.add(3);
        assert_eq!(tree.select(0), Some((0, 0)));
        assert_eq!(tree.select(6), Some((3, 0)));
    }

    #[test]
    fn remove_undoes_add() {
        let mut tree = Fenwick::new(6);
        tree.add(2);
        tree.add(2);
        tree.add(5);
        tree.remove(2);
        assert_eq!(tree.count(2), 1);
        assert_eq!(tree.total(), 2);
        assert_eq!(tree.select(1), Some((5, 0)));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn removing_from_an_empty_bucket_panics() {
        let mut tree = Fenwick::new(4);
        tree.remove(1);
    }

    #[test]
    fn single_bucket_tree_works() {
        let mut tree = Fenwick::new(1);
        tree.add(0);
        tree.add(0);
        assert_eq!(tree.prefix(0), 2);
        assert_eq!(tree.select(1), Some((0, 1)));
    }

    proptest! {
        /// Against a naive sorted-vec oracle: a random interleaving of
        /// adds and removes keeps every prefix sum and every k-th order
        /// query identical to re-sorting the live multiset.
        #[test]
        fn matches_naive_sorted_vec_oracle(
            ops in proptest::collection::vec((any::<bool>(), 0usize..32), 1..200)
        ) {
            let mut tree = Fenwick::new(32);
            let mut oracle: Vec<usize> = Vec::new();
            for (remove, bucket) in ops {
                if remove {
                    if let Some(at) = oracle.iter().position(|&b| b == bucket) {
                        oracle.remove(at);
                        tree.remove(bucket);
                    }
                } else {
                    oracle.push(bucket);
                    tree.add(bucket);
                }
                oracle.sort_unstable();
                prop_assert_eq!(tree.total(), oracle.len() as u64);
                let mut running = 0u64;
                for bucket in 0..32 {
                    running += oracle.iter().filter(|&&b| b == bucket).count() as u64;
                    prop_assert_eq!(tree.prefix(bucket), running);
                }
                for (k, &bucket) in oracle.iter().enumerate() {
                    let offset = oracle[..k].iter().filter(|&&b| b == bucket).count() as u64;
                    prop_assert_eq!(tree.select(k as u64), Some((bucket, offset)));
                }
                prop_assert_eq!(tree.select(oracle.len() as u64), None);
            }
        }
    }
}
