//! The streaming engine: per-exam running sufficient statistics,
//! updated once per finished sitting.
//!
//! # What is maintained incrementally
//!
//! * the [`Ranking`] (Fenwick order-statistic tree + per-bucket sets)
//!   over the analysis total order (score descending, id ascending),
//! * the high/low group membership sets, repaired after every change so
//!   `high` is always exactly the first `k` ranked students and `low`
//!   the last `k` (`k = fraction.group_size(n)`), with each membership
//!   transition applying ±1 to that student's per-question per-option
//!   counters — the "O(1 + re-assignments)" work per finish,
//! * per-question correct counts and option tallies for both groups,
//! * order-independent whole-class aggregates: total sitting time,
//!   attempted-response count, and the `answered_at` / `total_time`
//!   multisets backing the §4.2.1 time figure.
//!
//! # Why this converges everywhere
//!
//! Every piece of engine state is a *pure function of the current set of
//! finished rows*: counters always equal "sum over current members",
//! membership always equals "first/last k of the ranking", multisets are
//! order-independent. A resit replaces its previous row (remove then
//! insert), matching the server's `FinishedStore` semantics. So the
//! live finish path, a WAL replay after kill -9, and a promoted
//! follower's apply stream — which see the same rows in different
//! orders — all land on identical engine state, and
//! [`ExamStream::report`] is deterministic on top of it.
//!
//! # How floating-point folds stay byte-identical
//!
//! The batch pipeline computes its variances in moment form (Σv, Σv²).
//! When every awarded-points value is an exact small integer (see
//! [`exactly_summable`]) those sums are exact in both the batch f64
//! folds and the engine's running i64 accumulators, so the assembler
//! reproduces every statistic bit-for-bit from counters alone. The only
//! read-time row iteration left is the per-student scatter figure,
//! whose *output* is itself one point per row. Rows outside the
//! exact-integer envelope mark the stream unstreamable and callers
//! fall back to the batch path, which reproduces the exact report (or
//! its exact error) from the raw rows.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use mine_analysis::{AnalysisConfig, BatchReport};
use mine_core::{ProblemId, StudentId, StudentRecord};
use mine_itembank::Problem;

use crate::assemble;
use crate::ranking::{RankKey, Ranking};
use crate::Unstreamable;

/// Options per question the engine tallies: `OptionKey` indices are
/// `0..=25`, so 26 slots always suffice; the report truncates to each
/// question's real option count.
pub(crate) const OPTION_SLOTS: usize = 26;

/// Largest magnitude a points value (or row total) may have while its
/// square still sums exactly in an f64 fold over two million rows
/// (`v² ≤ 2³², n ≤ 2²¹ ⇒ partial sums < 2⁵³`). Values beyond this are
/// unstreamable and fall back to batch.
const EXACT_LIMIT: f64 = 65_536.0;

/// Rows beyond which the batch pipeline's f64 moment folds are no
/// longer guaranteed exact against the engine's integer sums.
const EXACT_ROWS: usize = 2_000_000;

/// Whether `v` participates exactly in integer moment sums.
fn exactly_summable(v: f64) -> bool {
    v.is_finite() && v.fract() == 0.0 && v.abs() <= EXACT_LIMIT
}

/// Cap on [`ExamStream::answered_times`] (one bucket per second, ~12
/// days): a pathological `answered_at` cannot balloon the vec. Times at
/// or past the cap all share the last bucket, which rank queries never
/// treat as wholly below a threshold — they search it instead.
pub(crate) const TIME_BUCKET_CAP: usize = 1 << 20;

/// Bucket index of `at` in [`ExamStream::answered_times`].
pub(crate) fn time_bucket(at: Duration) -> usize {
    usize::try_from(at.as_secs())
        .unwrap_or(usize::MAX)
        .min(TIME_BUCKET_CAP - 1)
}

/// One response of one finished row, in presentation order.
#[derive(Debug, Clone)]
pub(crate) struct Cell {
    /// Interned problem id.
    pub problem: u32,
    /// Graded correct?
    pub correct: bool,
    /// Chosen option index for choice answers.
    pub option: Option<u8>,
    /// Points awarded.
    pub points: f64,
    /// When the answer was committed, relative to the sitting start.
    pub answered_at: Option<Duration>,
}

/// A finished sitting, reduced to what the report needs.
#[derive(Debug, Clone)]
pub(crate) struct StudentRow {
    /// Total score (same left-to-right fold as `StudentRecord::score`).
    pub score: f64,
    /// Total attainable points.
    pub max_score: f64,
    /// Total sitting time.
    pub total_time: Duration,
    /// Non-skipped responses.
    pub attempted: usize,
    /// Responses in presentation order.
    pub cells: Vec<Cell>,
    /// `(problem, cell index)` sorted by problem, first occurrence
    /// first — O(log q) response lookup for the Cronbach fold.
    pub by_problem: Vec<(u32, u32)>,
    /// Whether the row answers the same problem twice.
    pub duplicate_problems: bool,
    /// Whether every awarded-points value (and the total) is an exact
    /// small integer, so the row participates in the engine's integer
    /// moment sums. A `false` row makes the stream unstreamable.
    pub exact_sums: bool,
    /// Rank key; `None` for non-finite scores (unstreamable).
    pub rank: Option<RankKey>,
}

/// One row's slice of the scatter working set: total score plus the
/// span of its correctly answered interned problems (presentation
/// order) inside [`ExamStream::scatter_arena`]. Kept in a flat vec
/// sorted by student so the score–difficulty figure is one
/// gather-friendly pass instead of a pointer-chasing tree walk.
#[derive(Debug, Clone)]
pub(crate) struct ScatterRow {
    pub student: StudentId,
    pub score: f64,
    pub offset: u32,
    pub len: u32,
}

/// Per-question per-group tallies.
#[derive(Debug, Clone)]
pub(crate) struct QStat {
    pub high_correct: u64,
    pub low_correct: u64,
    pub high_options: [u64; OPTION_SLOTS],
    pub low_options: [u64; OPTION_SLOTS],
}

impl Default for QStat {
    fn default() -> Self {
        Self {
            high_correct: 0,
            low_correct: 0,
            high_options: [0; OPTION_SLOTS],
            low_options: [0; OPTION_SLOTS],
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    High,
    Low,
}

/// The running statistics of one exam.
#[derive(Debug)]
pub struct ExamStream {
    pub(crate) config: AnalysisConfig,
    /// Problem id → intern index (stable across the stream's lifetime).
    intern: HashMap<ProblemId, u32>,
    /// Intern index → problem id.
    pub(crate) problem_ids: Vec<ProblemId>,
    /// Finished rows by student — same ordering as the server's
    /// `FinishedStore`, which the order-sensitive read-time folds rely
    /// on.
    pub(crate) rows: BTreeMap<StudentId, StudentRow>,
    /// The order-statistic ranking of every rankable row.
    pub(crate) ranking: Ranking,
    /// Current high group = first `k` of the ranking.
    pub(crate) high: BTreeSet<RankKey>,
    /// Current low group = last `k` of the ranking.
    pub(crate) low: BTreeSet<RankKey>,
    /// Per-question group tallies, indexed by intern index.
    pub(crate) qstats: Vec<QStat>,
    /// Sorted problem-multiset shape → number of rows with it. More
    /// than one shape means the batch pipeline would reject the record.
    shapes: HashMap<Vec<u32>, usize>,
    /// Rows answering some problem twice (invisible to
    /// `ExamRecord::validate` when uniform, but they break the
    /// first-occurrence index the assembler uses — unstreamable).
    dup_rows: usize,
    /// Rows with non-finite scores (no defined rank — unstreamable).
    unrankable: usize,
    /// Rows whose points are not exact small integers (unstreamable —
    /// their float folds cannot be reproduced order-independently).
    inexact_rows: usize,
    /// Σ score over exact rows, exact integer arithmetic.
    pub(crate) score_sum: i64,
    /// Σ score² over exact rows.
    pub(crate) score_sq_sum: i64,
    /// Score multiset over exact rows — order statistics (median,
    /// pass counts, histogram buckets) in O(distinct values).
    pub(crate) scores: BTreeMap<i64, u64>,
    /// Σ points per interned problem over exact rows.
    pub(crate) item_sums: Vec<i64>,
    /// Σ points² per interned problem over exact rows.
    pub(crate) item_sq_sums: Vec<i64>,
    /// Σ total_time over rows (integer Duration math, order-free).
    pub(crate) total_time_sum: Duration,
    /// Σ attempted over rows.
    pub(crate) attempted_sum: u64,
    /// Multiset of every response's `answered_at`, bucketed per second
    /// ([`time_bucket`]) with each bucket sorted — a `<= t` rank query
    /// (the time-answered figure asks 20 per read) sums whole buckets
    /// and binary-searches only the boundary second.
    pub(crate) answered_times: Vec<Vec<Duration>>,
    /// `answered_times[b].len()` densely, so whole-bucket prefix sums
    /// vectorize instead of hopping across bucket headers.
    pub(crate) answered_counts: Vec<u32>,
    /// Multiset of per-row total sitting times.
    pub(crate) total_times: BTreeMap<Duration, u64>,
    /// Scatter rows in student order, mirroring `rows` (see
    /// [`ScatterRow`]).
    pub(crate) scatter_rows: Vec<ScatterRow>,
    /// Flat storage for every scatter row's correct interns. Resits
    /// orphan their old span; compaction reclaims once orphans dominate.
    pub(crate) scatter_arena: Vec<u32>,
    /// Orphaned entries in `scatter_arena`.
    scatter_garbage: usize,
    /// Membership re-assignments performed by the last `apply`.
    last_reassignments: usize,
}

impl ExamStream {
    /// An empty stream under `config`.
    #[must_use]
    pub fn new(config: AnalysisConfig) -> Self {
        Self {
            config,
            intern: HashMap::new(),
            problem_ids: Vec::new(),
            rows: BTreeMap::new(),
            ranking: Ranking::new(),
            high: BTreeSet::new(),
            low: BTreeSet::new(),
            qstats: Vec::new(),
            shapes: HashMap::new(),
            dup_rows: 0,
            unrankable: 0,
            inexact_rows: 0,
            score_sum: 0,
            score_sq_sum: 0,
            scores: BTreeMap::new(),
            item_sums: Vec::new(),
            item_sq_sums: Vec::new(),
            total_time_sum: Duration::ZERO,
            attempted_sum: 0,
            answered_times: Vec::new(),
            answered_counts: Vec::new(),
            total_times: BTreeMap::new(),
            scatter_rows: Vec::new(),
            scatter_arena: Vec::new(),
            scatter_garbage: 0,
            last_reassignments: 0,
        }
    }

    /// Finished sittings currently folded in.
    #[must_use]
    pub fn sittings(&self) -> usize {
        self.rows.len()
    }

    /// Group membership changes (each applying one row's counters) made
    /// by the most recent [`Self::apply`] — the "re-assignments" of the
    /// per-finish cost bound.
    #[must_use]
    pub fn last_reassignments(&self) -> usize {
        self.last_reassignments
    }

    /// Whether the stream can currently produce a report identical to
    /// the batch pipeline's (shape-uniform, duplicate-free, all scores
    /// finite, groups disjoint).
    #[must_use]
    pub fn streamable(&self) -> bool {
        self.anomaly().is_none()
    }

    pub(crate) fn anomaly(&self) -> Option<&'static str> {
        if self.rows.is_empty() {
            return Some("no finished sittings streamed");
        }
        if self.dup_rows > 0 {
            return Some("a sitting answers the same problem twice");
        }
        if self.shapes.len() > 1 {
            return Some("sittings answered different problem sets");
        }
        if self.unrankable > 0 {
            return Some("a sitting has a non-finite score");
        }
        if self.inexact_rows > 0 {
            return Some("a sitting has non-integer or oversized points");
        }
        if self.rows.len() > EXACT_ROWS {
            return Some("class too large for exact moment folds");
        }
        let n = self.ranking.len();
        let k = self.config.group_fraction.group_size(n);
        if 2 * k > n {
            return Some("class too small for disjoint high/low groups");
        }
        None
    }

    /// Folds one finished sitting in. A record for a student already
    /// streamed replaces the previous row (resit semantics, matching
    /// the server's finished store).
    pub fn apply(&mut self, record: &StudentRecord) {
        self.last_reassignments = 0;
        self.remove(&record.student);

        let mut cells = Vec::with_capacity(record.responses.len());
        let mut by_problem: Vec<(u32, u32)> = Vec::with_capacity(record.responses.len());
        for (i, response) in record.responses.iter().enumerate() {
            let problem = self.intern_problem(&response.problem);
            cells.push(Cell {
                problem,
                correct: response.is_correct,
                option: response.answer.chosen_option().map(|key| key.index() as u8),
                points: response.points_awarded,
                answered_at: response.answered_at,
            });
            by_problem.push((problem, i as u32));
        }
        by_problem.sort_unstable();
        let duplicate_problems = by_problem.windows(2).any(|w| w[0].0 == w[1].0);

        let score = record.score();
        let exact_sums =
            exactly_summable(score) && cells.iter().all(|cell| exactly_summable(cell.points));
        let row = StudentRow {
            score,
            max_score: record.max_score(),
            total_time: record.total_time,
            attempted: record.attempted_count(),
            cells,
            by_problem,
            duplicate_problems,
            exact_sums,
            rank: RankKey::new(score, record.student.clone()),
        };

        let shape: Vec<u32> = row.by_problem.iter().map(|&(p, _)| p).collect();
        *self.shapes.entry(shape).or_insert(0) += 1;
        if row.duplicate_problems {
            self.dup_rows += 1;
        }
        self.total_time_sum += row.total_time;
        self.attempted_sum += row.attempted as u64;
        multiset_add(&mut self.total_times, row.total_time);
        for cell in &row.cells {
            if let Some(at) = cell.answered_at {
                let bucket = time_bucket(at);
                if bucket >= self.answered_times.len() {
                    self.answered_times.resize(bucket + 1, Vec::new());
                    self.answered_counts.resize(bucket + 1, 0);
                }
                let times = &mut self.answered_times[bucket];
                let pos = times.partition_point(|&existing| existing < at);
                times.insert(pos, at);
                self.answered_counts[bucket] += 1;
            }
        }
        self.qstats
            .resize_with(self.problem_ids.len(), QStat::default);
        self.item_sums.resize(self.problem_ids.len(), 0);
        self.item_sq_sums.resize(self.problem_ids.len(), 0);
        if row.exact_sums {
            let s = row.score as i64;
            self.score_sum += s;
            self.score_sq_sum += s * s;
            *self.scores.entry(s).or_insert(0) += 1;
            for cell in &row.cells {
                let p = cell.points as i64;
                self.item_sums[cell.problem as usize] += p;
                self.item_sq_sums[cell.problem as usize] += p * p;
            }
        } else {
            self.inexact_rows += 1;
        }

        let offset = u32::try_from(self.scatter_arena.len()).expect("arena under 2^32 entries");
        self.scatter_arena.extend(
            row.cells
                .iter()
                .filter(|cell| cell.correct)
                .map(|cell| cell.problem),
        );
        let scatter = ScatterRow {
            student: record.student.clone(),
            score: row.score,
            offset,
            len: u32::try_from(self.scatter_arena.len()).expect("arena under 2^32 entries")
                - offset,
        };
        let at = self
            .scatter_rows
            .partition_point(|existing| existing.student < scatter.student);
        self.scatter_rows.insert(at, scatter);

        let rank = row.rank.clone();
        self.rows.insert(record.student.clone(), row);
        match rank {
            Some(key) => {
                self.ranking.insert(key.clone());
                // A newcomer landing inside the current high prefix (or
                // low suffix) joins it immediately, keeping the
                // prefix/suffix invariant; `repair` then restores the
                // size.
                let inside_high = self.high.iter().next_back().is_some_and(|last| key < *last);
                if inside_high {
                    self.member_add(Side::High, key.clone());
                }
                let inside_low = self.low.iter().next().is_some_and(|first| key > *first);
                if inside_low {
                    self.member_add(Side::Low, key);
                }
            }
            None => self.unrankable += 1,
        }
        self.repair();
    }

    /// Removes a student's row (no-op when absent). Public so resit
    /// revocation flows can be wired later; `apply` uses it for
    /// replacement semantics.
    pub fn remove(&mut self, student: &StudentId) {
        let Some(row) = self.rows.remove(student) else {
            return;
        };
        let at = self
            .scatter_rows
            .partition_point(|existing| existing.student < *student);
        debug_assert!(
            self.scatter_rows[at].student == *student,
            "scatter mirrors rows"
        );
        let orphan = self.scatter_rows.remove(at);
        self.scatter_garbage += orphan.len as usize;
        if self.scatter_garbage > self.scatter_arena.len() / 2 && self.scatter_arena.len() > 1024 {
            self.compact_scatter_arena();
        }
        match &row.rank {
            Some(key) => {
                if self.high.remove(key) {
                    self.tally(&row, Side::High, false);
                }
                if self.low.remove(key) {
                    self.tally(&row, Side::Low, false);
                }
                self.ranking.remove(key);
            }
            None => self.unrankable -= 1,
        }

        let shape: Vec<u32> = row.by_problem.iter().map(|&(p, _)| p).collect();
        if let Some(count) = self.shapes.get_mut(&shape) {
            *count -= 1;
            if *count == 0 {
                self.shapes.remove(&shape);
            }
        }
        if row.duplicate_problems {
            self.dup_rows -= 1;
        }
        self.total_time_sum -= row.total_time;
        self.attempted_sum -= row.attempted as u64;
        multiset_remove(&mut self.total_times, row.total_time);
        for cell in &row.cells {
            if let Some(at) = cell.answered_at {
                let bucket = time_bucket(at);
                let times = &mut self.answered_times[bucket];
                let pos = times.partition_point(|&existing| existing < at);
                debug_assert!(times.get(pos) == Some(&at), "time multiset mirrors rows");
                times.remove(pos);
                self.answered_counts[bucket] -= 1;
            }
        }
        if row.exact_sums {
            let s = row.score as i64;
            self.score_sum -= s;
            self.score_sq_sum -= s * s;
            match self.scores.get_mut(&s) {
                Some(count) if *count > 1 => *count -= 1,
                Some(_) => {
                    self.scores.remove(&s);
                }
                None => debug_assert!(false, "removing score {s} not in multiset"),
            }
            for cell in &row.cells {
                let p = cell.points as i64;
                self.item_sums[cell.problem as usize] -= p;
                self.item_sq_sums[cell.problem as usize] -= p * p;
            }
        } else {
            self.inexact_rows -= 1;
        }
        self.repair();
    }

    /// Rewrites `scatter_arena` with only the live spans (in row
    /// order), dropping the entries orphaned by resits. Amortized O(1)
    /// per removal: runs only once orphans outnumber live entries.
    fn compact_scatter_arena(&mut self) {
        let live = self.scatter_arena.len() - self.scatter_garbage;
        let mut arena = Vec::with_capacity(live.next_power_of_two());
        for row in &mut self.scatter_rows {
            let offset = u32::try_from(arena.len()).expect("arena shrinks during compaction");
            let span = row.offset as usize..(row.offset + row.len) as usize;
            arena.extend_from_slice(&self.scatter_arena[span]);
            row.offset = offset;
        }
        self.scatter_arena = arena;
        self.scatter_garbage = 0;
    }

    /// Assembles the full §4 report from the running statistics,
    /// byte-identical (under `serde_json`) to the batch pipeline over
    /// the same rows.
    ///
    /// # Errors
    ///
    /// [`Unstreamable`] when the streamed rows are outside what the
    /// incremental counters can reproduce exactly (mixed problem sets,
    /// in-row duplicates, non-finite scores, a class too small to split,
    /// or a problem missing from `problems`) — callers fall back to the
    /// batch path, which reproduces the batch pipeline's exact error.
    pub fn report(&self, problems: &[Problem]) -> Result<BatchReport, Unstreamable> {
        assemble::assemble(self, problems)
    }

    /// The interned id of `problem`, allocating on first sight.
    fn intern_problem(&mut self, problem: &ProblemId) -> u32 {
        if let Some(&index) = self.intern.get(problem) {
            return index;
        }
        let index = u32::try_from(self.problem_ids.len()).expect("fewer than 2^32 problems");
        self.intern.insert(problem.clone(), index);
        self.problem_ids.push(problem.clone());
        index
    }

    /// Canonical problem order: the minimum-id row's cells, presentation
    /// order — exactly `ExamRecord::problems()` over the `BTreeMap`
    /// iteration the batch path sees.
    pub(crate) fn canonical_cells(&self) -> Option<&StudentRow> {
        self.rows.values().next()
    }

    /// Restores `high` = first `k` and `low` = last `k` of the ranking
    /// after any insertion/removal, applying counter deltas for every
    /// membership change.
    fn repair(&mut self) {
        let n = self.ranking.len();
        let k = if n == 0 {
            0
        } else {
            self.config.group_fraction.group_size(n)
        };
        while self.high.len() > k {
            let worst = self.high.iter().next_back().expect("len > k >= 0").clone();
            self.member_drop(Side::High, &worst);
        }
        while self.high.len() < k {
            let next = self
                .ranking
                .select(self.high.len())
                .expect("k <= n")
                .clone();
            self.member_add(Side::High, next);
        }
        while self.low.len() > k {
            let best = self.low.iter().next().expect("len > k >= 0").clone();
            self.member_drop(Side::Low, &best);
        }
        while self.low.len() < k {
            let next = self
                .ranking
                .select(n - 1 - self.low.len())
                .expect("k <= n")
                .clone();
            self.member_add(Side::Low, next);
        }
    }

    fn member_add(&mut self, side: Side, key: RankKey) {
        let row = self
            .rows
            .get(key.student())
            .expect("ranked students have rows");
        let qstats = &mut self.qstats;
        Self::tally_into(qstats, row, side, true);
        self.last_reassignments += 1;
        match side {
            Side::High => self.high.insert(key),
            Side::Low => self.low.insert(key),
        };
    }

    fn member_drop(&mut self, side: Side, key: &RankKey) {
        match side {
            Side::High => self.high.remove(key),
            Side::Low => self.low.remove(key),
        };
        let row = self
            .rows
            .get(key.student())
            .expect("ranked students have rows");
        Self::tally_into(&mut self.qstats, row, side, false);
        self.last_reassignments += 1;
    }

    fn tally(&mut self, row: &StudentRow, side: Side, add: bool) {
        Self::tally_into(&mut self.qstats, row, side, add);
    }

    /// Applies one row's responses to one group's counters.
    fn tally_into(qstats: &mut [QStat], row: &StudentRow, side: Side, add: bool) {
        for cell in &row.cells {
            let stat = &mut qstats[cell.problem as usize];
            let (correct, options) = match side {
                Side::High => (&mut stat.high_correct, &mut stat.high_options),
                Side::Low => (&mut stat.low_correct, &mut stat.low_options),
            };
            if cell.correct {
                if add {
                    *correct += 1;
                } else {
                    *correct -= 1;
                }
            }
            if let Some(option) = cell.option {
                let slot = &mut options[option as usize];
                if add {
                    *slot += 1;
                } else {
                    *slot -= 1;
                }
            }
        }
    }
}

fn multiset_add(map: &mut BTreeMap<Duration, u64>, key: Duration) {
    *map.entry(key).or_insert(0) += 1;
}

fn multiset_remove(map: &mut BTreeMap<Duration, u64>, key: Duration) {
    match map.get_mut(&key) {
        Some(count) if *count > 1 => *count -= 1,
        Some(_) => {
            map.remove(&key);
        }
        None => debug_assert!(false, "removing {key:?} not in multiset"),
    }
}

/// The process-wide engine: one [`ExamStream`] per exam behind a
/// per-exam mutex, so the server can fold a finish into the store and
/// the stream under one critical section.
#[derive(Debug)]
pub struct StreamEngine {
    config: AnalysisConfig,
    exams: RwLock<HashMap<String, Arc<Mutex<ExamStream>>>>,
}

impl StreamEngine {
    /// An empty engine analyzing under `config`.
    #[must_use]
    pub fn new(config: AnalysisConfig) -> Self {
        Self {
            config,
            exams: RwLock::new(HashMap::new()),
        }
    }

    /// The analysis configuration every stream runs under.
    #[must_use]
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Runs `f` under the exam's stream lock, creating an empty stream
    /// on first use. The lock is the ingestion critical section: callers
    /// that must keep the stream aligned with another store update both
    /// inside one `with_exam` call.
    pub fn with_exam<R>(&self, exam: &str, f: impl FnOnce(&mut ExamStream) -> R) -> R {
        // The fast-path read guard must be dropped before taking the
        // write lock (a scrutinee temporary would live through the
        // whole branch and self-deadlock), hence the two statements.
        let known = self.exams.read().get(exam).map(Arc::clone);
        let slot = match known {
            Some(slot) => slot,
            None => Arc::clone(
                self.exams
                    .write()
                    .entry(exam.to_string())
                    .or_insert_with(|| Arc::new(Mutex::new(ExamStream::new(self.config)))),
            ),
        };
        let mut stream = slot.lock();
        f(&mut stream)
    }

    /// Folds one finished sitting into `exam`'s stream.
    pub fn apply(&self, exam: &str, record: &StudentRecord) {
        self.with_exam(exam, |stream| stream.apply(record));
    }

    /// Sittings currently folded into `exam`'s stream (0 when the exam
    /// has never streamed).
    #[must_use]
    pub fn sittings(&self, exam: &str) -> usize {
        self.exams
            .read()
            .get(exam)
            .map_or(0, |slot| slot.lock().sittings())
    }

    /// Assembles `exam`'s report from the running statistics.
    ///
    /// # Errors
    ///
    /// [`Unstreamable`] when the exam never streamed or its stream
    /// cannot reproduce the batch output exactly.
    pub fn report(&self, exam: &str, problems: &[Problem]) -> Result<BatchReport, Unstreamable> {
        let slot = self.exams.read().get(exam).map(Arc::clone);
        match slot {
            Some(slot) => slot.lock().report(problems),
            None => Err(Unstreamable::new("no finished sittings streamed")),
        }
    }

    /// Drops every stream — used when a follower re-bootstraps from a
    /// snapshot before replaying the leader's WAL.
    pub fn clear(&self) {
        self.exams.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::{Answer, ItemResponse};

    fn record(student: &str, points: &[f64]) -> StudentRecord {
        let responses = points
            .iter()
            .enumerate()
            .map(|(q, &p)| {
                let pid: ProblemId = format!("q{q}").parse().unwrap();
                if p > 0.0 {
                    ItemResponse::correct(pid, Answer::TrueFalse(true), p)
                } else {
                    ItemResponse::incorrect(pid, Answer::TrueFalse(false), 1.0)
                }
            })
            .collect();
        let mut rec = StudentRecord::new(student.parse().unwrap(), responses);
        rec.total_time = Duration::from_secs(60);
        rec
    }

    #[test]
    fn groups_track_the_first_and_last_k() {
        let mut stream = ExamStream::new(AnalysisConfig::default());
        for i in 0..8 {
            let points: Vec<f64> = (0..4).map(|q| if q < i % 5 { 1.0 } else { 0.0 }).collect();
            stream.apply(&record(&format!("s{i}"), &points));
        }
        let n = stream.ranking.len();
        let k = stream.config.group_fraction.group_size(n);
        assert_eq!(stream.high.len(), k);
        assert_eq!(stream.low.len(), k);
        for rank in 0..k {
            assert!(stream.high.contains(stream.ranking.select(rank).unwrap()));
            assert!(stream
                .low
                .contains(stream.ranking.select(n - 1 - rank).unwrap()));
        }
    }

    #[test]
    fn resit_replaces_the_previous_row() {
        let mut stream = ExamStream::new(AnalysisConfig::default());
        stream.apply(&record("s1", &[1.0, 1.0]));
        stream.apply(&record("s2", &[0.0, 0.0]));
        stream.apply(&record("s1", &[0.0, 1.0]));
        assert_eq!(stream.sittings(), 2);
        let s1: StudentId = "s1".parse().unwrap();
        assert_eq!(stream.rows.get(&s1).unwrap().score, 1.0);
    }

    #[test]
    fn order_independence_of_final_state_counters() {
        let records: Vec<StudentRecord> = (0..9)
            .map(|i| {
                let points: Vec<f64> = (0..3)
                    .map(|q| if (i + q) % 3 == 0 { 1.0 } else { 0.0 })
                    .collect();
                record(&format!("s{i}"), &points)
            })
            .collect();
        let mut forward = ExamStream::new(AnalysisConfig::default());
        for r in &records {
            forward.apply(r);
        }
        let mut backward = ExamStream::new(AnalysisConfig::default());
        for r in records.iter().rev() {
            backward.apply(r);
        }
        assert_eq!(forward.high, backward.high);
        assert_eq!(forward.low, backward.low);
        for (a, b) in forward.qstats.iter().zip(&backward.qstats) {
            assert_eq!(a.high_correct, b.high_correct);
            assert_eq!(a.low_correct, b.low_correct);
            assert_eq!(a.high_options, b.high_options);
            assert_eq!(a.low_options, b.low_options);
        }
    }

    // Regression: the first `with_exam` for an exam takes the map's
    // write lock after a failed read — a scrutinee-temporary read
    // guard held across that write deadlocked the whole server once.
    #[test]
    fn engine_with_exam_creates_streams_and_clear_drops_them() {
        let engine = StreamEngine::new(AnalysisConfig::default());
        assert_eq!(engine.with_exam("quiz", |stream| stream.sittings()), 0);
        engine.apply("quiz", &record("s1", &[1.0, 0.0]));
        engine.apply("quiz", &record("s2", &[0.0, 0.0]));
        engine.apply("other", &record("s1", &[1.0, 1.0]));
        assert_eq!(engine.sittings("quiz"), 2);
        assert_eq!(engine.sittings("other"), 1);
        assert_eq!(engine.sittings("absent"), 0);
        engine.clear();
        assert_eq!(engine.sittings("quiz"), 0);
    }
}
