//! Report assembly: the running statistics → the exact `BatchReport`
//! the batch pipeline produces.
//!
//! Counters answer everything in O(questions + distinct scores): group
//! membership, per-option tallies and time multisets directly, and the
//! floating-point statistics through the exactness argument in the
//! engine docs — the batch pipeline's folds over integer points are
//! exact, so dividing the engine's running i64 sums through the same
//! moment-form expressions reproduces every batch value bit for bit.
//! Only the score–difficulty scatter still walks the row map, because
//! its *output* is one point per row (shared `BTreeMap` ordering keeps
//! that walk byte-identical too).
//! Anything the counters cannot reproduce exactly returns
//! [`Unstreamable`] and the caller falls back to the batch path, which
//! then reproduces the batch pipeline's exact output *or its exact
//! error*.

use std::collections::HashMap;

use mine_analysis::distraction::analyze_distractors;
use mine_analysis::exam_analysis::{ExamAnalysis, ExamStatistics, QuestionAnalysis};
use mine_analysis::figures::{cognition_subject_matrix_from, FigurePoint, Figures};
use mine_analysis::reliability::Reliability;
use mine_analysis::rules::evaluate_rules;
use mine_analysis::status::StatusFlags;
use mine_analysis::two_way::TwoWayTable;
use mine_analysis::{BatchReport, OptionMatrix, QuestionIndices, ScoreGroups};
use mine_core::{ProblemId, StudentId};
use mine_itembank::{Problem, ProblemBody};
use mine_metadata::{DifficultyIndex, DiscriminationIndex, QuestionStyle};

use crate::engine::{time_bucket, ExamStream, OPTION_SLOTS};
use crate::Unstreamable;

/// Assembles the full report; see the module docs.
pub(crate) fn assemble(
    stream: &ExamStream,
    problems: &[Problem],
) -> Result<BatchReport, Unstreamable> {
    if let Some(reason) = stream.anomaly() {
        return Err(Unstreamable::new(reason));
    }
    let canonical = stream
        .canonical_cells()
        .expect("anomaly() rejects empty streams");
    let n = stream.rows.len();

    // Problem definitions, first-wins by id like `RecordIndex::build`;
    // a canonical problem without a definition is the batch pipeline's
    // `UnknownProblem` error — fall back and let it say so.
    let mut by_id: HashMap<&str, &Problem> = HashMap::with_capacity(problems.len());
    for problem in problems {
        by_id.entry(problem.id().as_str()).or_insert(problem);
    }
    let mut resolved: Vec<&Problem> = Vec::with_capacity(canonical.cells.len());
    for cell in &canonical.cells {
        let id = &stream.problem_ids[cell.problem as usize];
        match by_id.get(id.as_str()) {
            Some(problem) => resolved.push(problem),
            None => {
                return Err(Unstreamable::new(
                    "a streamed problem has no supplied definition",
                ))
            }
        }
    }

    // Group split from the membership sets: ascending `RankKey` order is
    // the ranking order (best first), exactly how `ScoreGroups::split`
    // orders both groups.
    let high: Vec<StudentId> = stream.high.iter().map(|k| k.student().clone()).collect();
    let low: Vec<StudentId> = stream.low.iter().map(|k| k.student().clone()).collect();
    let group_size = high.len();
    let groups = ScoreGroups::from_parts(high, low, n, stream.config.group_fraction);

    // Per-question analyses from the group counters, numbering exactly
    // like the batch loop (questionnaires excluded, numbers stay
    // consecutive).
    let canonical_interns: Vec<u32> = canonical.cells.iter().map(|c| c.problem).collect();
    let mut questions = Vec::with_capacity(canonical.cells.len());
    let mut surveys: Vec<ProblemId> = Vec::new();
    let mut number = 0usize;
    // Difficulty by interned problem, dense (NaN = questionnaire, i.e.
    // not analyzed), filled as each analysis is produced so the scatter
    // figure needs no id lookups. The batch scatter keys a map by id
    // string with first-entry-wins; analyzed problems are unique under
    // the no-duplicate gate, so both resolve to the same value.
    let mut difficulty_of: Vec<f64> = vec![f64::NAN; stream.problem_ids.len()];
    for (pos, problem) in resolved.iter().enumerate() {
        let intern = canonical_interns[pos] as usize;
        let problem_id = &stream.problem_ids[intern];
        if problem.style() == QuestionStyle::Questionnaire {
            surveys.push(problem_id.clone());
            continue;
        }
        number += 1;
        let analysis = question_analysis(stream, problem, problem_id, intern, number, group_size);
        difficulty_of[intern] = analysis.indices.difficulty.value();
        questions.push(analysis);
    }

    let statistics = statistics(stream, n);
    let ta = time_answered(stream, n, 20);
    let sd = score_difficulty(
        stream,
        &difficulty_of,
        questions.len() == canonical_interns.len(),
    );
    let two_way = TwoWayTable::from_problems(resolved.iter().copied());
    let figures = Figures {
        time_answered: ta,
        score_difficulty: sd,
        cognition_subject: cognition_subject_matrix_from(&two_way),
        score_histogram: score_histogram(stream, n, 10),
    };
    let reliability = reliability(stream, &canonical_interns, n);
    let analysis = ExamAnalysis {
        groups,
        questions,
        statistics,
        figures,
        two_way,
        reliability,
        surveys,
    };
    Ok(BatchReport::from_analyses(vec![analysis]))
}

/// One question's §4.1 pipeline, fed from the counters instead of group
/// tallies; arithmetic order matches `analyze_question_indexed`.
fn question_analysis(
    stream: &ExamStream,
    problem: &Problem,
    problem_id: &ProblemId,
    intern: usize,
    number: usize,
    group_size: usize,
) -> QuestionAnalysis {
    let choice = match problem.body() {
        ProblemBody::MultipleChoice {
            options, correct, ..
        } => Some((options.len(), *correct)),
        _ => None,
    };
    let stat = &stream.qstats[intern];
    let matrix = choice.map(|(option_count, correct)| {
        // Out-of-range chosen options are dropped exactly like the
        // batch tally's `key.index() < counts.len()` guard: the engine
        // counts every slot, the report truncates to the real options.
        let collect = |slots: &[u64; OPTION_SLOTS]| -> Vec<usize> {
            (0..option_count)
                .map(|i| slots.get(i).copied().unwrap_or(0) as usize)
                .collect()
        };
        OptionMatrix {
            problem: problem_id.clone(),
            correct,
            high: collect(&stat.high_options),
            low: collect(&stat.low_options),
        }
    });

    let group_size = group_size as f64;
    let ph = stat.high_correct as f64 / group_size;
    let pl = stat.low_correct as f64 / group_size;
    let indices = QuestionIndices {
        number,
        problem: problem_id.clone(),
        ph,
        pl,
        discrimination: DiscriminationIndex::new(ph - pl)
            .expect("difference of fractions is in [-1, 1]"),
        difficulty: DifficultyIndex::new((ph + pl) / 2.0).expect("mean of fractions is in [0, 1]"),
    };

    let findings = matrix
        .as_ref()
        .map(|m| evaluate_rules(m, stream.config.flatness))
        .unwrap_or_default();
    let status = StatusFlags::from_rules(&findings);
    let distractors = matrix.as_ref().map(analyze_distractors).unwrap_or_default();
    let signal = stream.config.signal.classify(indices.discrimination);
    let advice = stream
        .config
        .signal
        .advice(indices.discrimination, &findings);
    QuestionAnalysis {
        indices,
        matrix,
        findings,
        status,
        distractors,
        signal,
        advice,
    }
}

/// The `idx`-th smallest score (0-based) from the score multiset —
/// the value `scores[idx]` of the batch pipeline's sorted vector.
fn nth_score(scores: &std::collections::BTreeMap<i64, u64>, mut idx: u64) -> f64 {
    for (&score, &count) in scores {
        if idx < count {
            return score as f64;
        }
        idx -= count;
    }
    debug_assert!(false, "order statistic {idx} beyond multiset");
    0.0
}

/// `ExamAnalysis::statistics` from the moment sums and the score
/// multiset: every value is the same bit pattern the batch fold
/// produces (integer sums are exact in both, and the divisions,
/// products and clamps are written identically), in O(distinct scores)
/// instead of O(n log n).
fn statistics(stream: &ExamStream, n: usize) -> ExamStatistics {
    let nf = n as f64;
    let mean = stream.score_sum as f64 / nf;
    let median = if n % 2 == 1 {
        nth_score(&stream.scores, (n / 2) as u64)
    } else {
        (nth_score(&stream.scores, (n / 2 - 1) as u64) + nth_score(&stream.scores, (n / 2) as u64))
            / 2.0
    };
    let variance = (stream.score_sq_sum as f64 / nf - mean * mean).max(0.0);
    let max_score = stream
        .rows
        .values()
        .next()
        .map(|r| r.max_score)
        .unwrap_or(0.0);
    let pass_line = max_score * stream.config.pass_mark;
    let passed: u64 = stream
        .scores
        .iter()
        .filter(|&(&score, _)| score as f64 >= pass_line)
        .map(|(_, &count)| count)
        .sum();
    let pass_rate = passed as f64 / nf;
    let mean_attempted = stream.attempted_sum as f64 / nf;
    ExamStatistics {
        class_size: n,
        mean_score: mean,
        median_score: median,
        std_dev: variance.sqrt(),
        max_score,
        pass_rate,
        average_time: stream.total_time_sum / n as u32,
        mean_attempted,
    }
}

/// `figures::time_answered_series` from the bucketed `answered_times`
/// multiset: each sample needs the exact `answered_at <= t` count. The
/// sample times are increasing, so one cumulative pass over the
/// per-second buckets serves them all (a bucket strictly below a
/// threshold's second holds only times below the threshold), and only
/// the boundary second is resolved exactly, by a binary search of its
/// sorted bucket — O(seconds + samples·log) instead of touching every
/// response time.
fn time_answered(stream: &ExamStream, n: usize, samples: usize) -> Vec<FigurePoint> {
    let max_time = stream
        .total_times
        .keys()
        .next_back()
        .copied()
        .unwrap_or(std::time::Duration::ZERO);
    if n == 0 || samples == 0 || max_time.is_zero() {
        return Vec::new();
    }
    let mut full = 0u64;
    let mut cursor = 0usize;
    (1..=samples)
        .map(|i| {
            let t = max_time.mul_f64(i as f64 / samples as f64);
            let cut = time_bucket(t).min(stream.answered_times.len());
            full += stream.answered_counts[cursor..cut]
                .iter()
                .map(|&count| u64::from(count))
                .sum::<u64>();
            cursor = cut;
            let residual = stream
                .answered_times
                .get(cut)
                .map_or(0, |bucket| bucket.partition_point(|&at| at <= t) as u64);
            FigurePoint {
                x: t.as_secs_f64(),
                y: (full + residual) as f64 / n as f64,
            }
        })
        .collect()
}

/// `figures::score_difficulty_scatter`: per row, mean difficulty of the
/// correctly answered analyzed questions, summed in presentation order.
fn score_difficulty(
    stream: &ExamStream,
    difficulty_of: &[f64],
    all_analyzed: bool,
) -> Vec<FigurePoint> {
    // Each row's sum is a serial f64 dependency chain whose order is
    // fixed by byte-identity, so the passes below fold several rows'
    // (independent) chains in lockstep to keep the FPU busy; each chain
    // still adds its own values in presentation order.
    //
    // With no questionnaires every correct response has a difficulty, so
    // the common case skips the per-response NaN test and the count
    // bookkeeping entirely (the count is the span length).
    if all_analyzed {
        return scatter_all_analyzed(stream, difficulty_of);
    }
    let fold = |row: &crate::engine::ScatterRow| -> (f64, usize) {
        let span = row.offset as usize..(row.offset + row.len) as usize;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for &intern in &stream.scatter_arena[span] {
            let p = difficulty_of[intern as usize];
            if !p.is_nan() {
                sum += p;
                count += 1;
            }
        }
        (sum, count)
    };
    let mut points = Vec::with_capacity(stream.scatter_rows.len());
    let mut push = |row: &crate::engine::ScatterRow, sum: f64, count: usize| {
        if count > 0 {
            points.push(FigurePoint {
                x: row.score,
                y: sum / count as f64,
            });
        }
    };
    let mut pairs = stream.scatter_rows.chunks_exact(2);
    for pair in &mut pairs {
        let (a, b) = (&pair[0], &pair[1]);
        let (sa, sb) = (
            &stream.scatter_arena[a.offset as usize..(a.offset + a.len) as usize],
            &stream.scatter_arena[b.offset as usize..(b.offset + b.len) as usize],
        );
        let shared = sa.len().min(sb.len());
        let (mut sum_a, mut count_a) = (0.0f64, 0usize);
        let (mut sum_b, mut count_b) = (0.0f64, 0usize);
        for j in 0..shared {
            let pa = difficulty_of[sa[j] as usize];
            let pb = difficulty_of[sb[j] as usize];
            if !pa.is_nan() {
                sum_a += pa;
                count_a += 1;
            }
            if !pb.is_nan() {
                sum_b += pb;
                count_b += 1;
            }
        }
        for &intern in &sa[shared..] {
            let p = difficulty_of[intern as usize];
            if !p.is_nan() {
                sum_a += p;
                count_a += 1;
            }
        }
        for &intern in &sb[shared..] {
            let p = difficulty_of[intern as usize];
            if !p.is_nan() {
                sum_b += p;
                count_b += 1;
            }
        }
        push(a, sum_a, count_a);
        push(b, sum_b, count_b);
    }
    for row in pairs.remainder() {
        let (sum, count) = fold(row);
        push(row, sum, count);
    }
    points
}

/// [`score_difficulty`] when every analyzed-or-not lookup is known to
/// resolve: a pure gather-and-add, eight independent row chains folded
/// in lockstep (each still in its own presentation order) so the adds
/// overlap instead of serializing on one chain's fadd latency.
fn scatter_all_analyzed(stream: &ExamStream, difficulty_of: &[f64]) -> Vec<FigurePoint> {
    const LANES: usize = 8;
    let arena = &stream.scatter_arena;
    let span_of = |row: &crate::engine::ScatterRow| {
        &arena[row.offset as usize..(row.offset + row.len) as usize]
    };
    let mut points = Vec::with_capacity(stream.scatter_rows.len());
    let mut blocks = stream.scatter_rows.chunks_exact(LANES);
    for block in &mut blocks {
        let spans: [&[u32]; LANES] = std::array::from_fn(|lane| span_of(&block[lane]));
        let shared = spans.iter().map(|span| span.len()).min().unwrap_or(0);
        let mut sums = [0.0f64; LANES];
        for j in 0..shared {
            for lane in 0..LANES {
                sums[lane] += difficulty_of[spans[lane][j] as usize];
            }
        }
        for (row, (span, mut sum)) in block.iter().zip(spans.into_iter().zip(sums)) {
            for &intern in &span[shared..] {
                sum += difficulty_of[intern as usize];
            }
            if !span.is_empty() {
                points.push(FigurePoint {
                    x: row.score,
                    y: sum / span.len() as f64,
                });
            }
        }
    }
    for row in blocks.remainder() {
        let span = span_of(row);
        let mut sum = 0.0f64;
        for &intern in span {
            sum += difficulty_of[intern as usize];
        }
        if !span.is_empty() {
            points.push(FigurePoint {
                x: row.score,
                y: sum / span.len() as f64,
            });
        }
    }
    points
}

/// `figures::score_histogram` from the score multiset (same max-score
/// fold, same bucketing — equal scores land in the same bucket, so the
/// multiset walk counts exactly what the per-row loop counts).
fn score_histogram(stream: &ExamStream, n: usize, buckets: usize) -> Vec<(f64, usize)> {
    if n == 0 || buckets == 0 {
        return Vec::new();
    }
    let max_score = stream
        .rows
        .values()
        .map(|r| r.max_score)
        .fold(0.0f64, f64::max);
    if max_score <= 0.0 {
        return Vec::new();
    }
    let width = max_score / buckets as f64;
    let mut counts = vec![0usize; buckets];
    for (&score, &count) in &stream.scores {
        let index = ((score as f64 / width).floor() as usize).min(buckets - 1);
        counts[index] += count as usize;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, count)| (i as f64 * width, count))
        .collect()
}

/// `cronbach_alpha_indexed` from the running sums: under the exactness
/// gate every batch accumulator (per-item point sums, squared sums,
/// row totals) is an exact integer fold, and the uniform-rows gate
/// makes each row's canonical-item total equal its score — so dividing
/// the engine's i64 sums through the batch moment-form expressions
/// reproduces the batch result bit for bit in O(items), no row loop.
fn reliability(stream: &ExamStream, canonical_interns: &[u32], n: usize) -> Reliability {
    let k = canonical_interns.len();
    let nf = n as f64;
    let total_mean = stream.score_sum as f64 / nf;
    let score_variance = (stream.score_sq_sum as f64 / nf - total_mean * total_mean).max(0.0);

    if k < 2 || score_variance == 0.0 {
        return Reliability {
            alpha: None,
            items: k,
            score_variance,
            sem: None,
        };
    }

    let item_variance_sum: f64 = canonical_interns
        .iter()
        .map(|&intern| {
            let mean = stream.item_sums[intern as usize] as f64 / nf;
            stream.item_sq_sums[intern as usize] as f64 / nf - mean * mean
        })
        .sum();
    let kf = k as f64;
    let alpha = kf / (kf - 1.0) * (1.0 - item_variance_sum / score_variance);
    let sem = if (0.0..=1.0).contains(&alpha) {
        Some(score_variance.sqrt() * (1.0 - alpha).sqrt())
    } else {
        None
    };
    Reliability {
        alpha: Some(alpha),
        items: k,
        score_variance,
        sem,
    }
}
