//! Acceptance: the streaming report is byte-identical (serialized) to
//! the batch pipeline over the same rows, whatever order sittings
//! finish in, including resits; inputs the counters cannot reproduce
//! exactly refuse to stream instead of approximating.

use mine_analysis::{AnalysisConfig, BatchAnalyzer};
use mine_core::{ExamId, ExamRecord, OptionKey, StudentRecord};
use mine_itembank::{ChoiceOption, Exam, Problem};
use mine_simulator::{CohortSpec, Simulation};
use mine_streamstats::{alt_indices, ExamStream};
use proptest::prelude::*;

fn problems(questions: usize) -> Vec<Problem> {
    let mut problems: Vec<Problem> = (0..questions)
        .map(|i| {
            let id = format!("q{i}");
            let problem = if i % 3 == 2 {
                Problem::true_false(id, format!("Statement {i}"), i % 2 == 0).unwrap()
            } else {
                Problem::multiple_choice(
                    id,
                    format!("Question {i}"),
                    OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("{k}"))),
                    OptionKey::first(4).nth(i % 4).unwrap(),
                )
                .unwrap()
            };
            problem
                .with_subject(if i % 2 == 0 { "tcp" } else { "routing" })
                .with_cognition_level(if i % 4 == 0 {
                    mine_core::CognitionLevel::Knowledge
                } else {
                    mine_core::CognitionLevel::Comprehension
                })
        })
        .collect();
    problems.push(
        Problem::questionnaire(
            "survey",
            "rate the course",
            OptionKey::first(5).map(|k| ChoiceOption::new(k, format!("{k}"))),
        )
        .unwrap(),
    );
    problems
}

fn simulated(questions: usize, class: usize, seed: u64) -> (Vec<Problem>, ExamRecord) {
    let problems = problems(questions);
    let mut builder = Exam::builder("quiz").unwrap();
    for i in 0..questions {
        builder = builder.entry(format!("q{i}").parse().unwrap());
    }
    let exam = builder.entry("survey".parse().unwrap()).build().unwrap();
    let record = Simulation::new(exam, problems.clone())
        .cohort(CohortSpec::new(class).ability(0.0, 1.2).seed(seed))
        .run()
        .unwrap();
    (problems, record)
}

/// The batch answer over the final row set: last record per student,
/// rows in ascending student order (the finished store's ordering).
fn batch_json(applied: &[StudentRecord], problems: &[Problem]) -> String {
    let mut rows: std::collections::BTreeMap<String, StudentRecord> =
        std::collections::BTreeMap::new();
    for record in applied {
        rows.insert(record.student.to_string(), record.clone());
    }
    let class = ExamRecord::new(ExamId::new("quiz").unwrap(), rows.into_values().collect());
    let analyzer = BatchAnalyzer::new(AnalysisConfig::default());
    let report = analyzer
        .analyze_records(std::slice::from_ref(&class), problems)
        .expect("batch analysis succeeds on simulated data");
    serde_json::to_string(&report).unwrap()
}

fn stream_json(applied: &[StudentRecord], problems: &[Problem]) -> String {
    let mut stream = ExamStream::new(AnalysisConfig::default());
    for record in applied {
        stream.apply(record);
    }
    let report = stream.report(problems).expect("streamable input");
    serde_json::to_string(&report).unwrap()
}

#[test]
fn streaming_matches_batch_in_finish_order() {
    let (problems, record) = simulated(8, 44, 7);
    let stream = stream_json(&record.students, &problems);
    let batch = batch_json(&record.students, &problems);
    assert_eq!(stream, batch);
}

#[test]
fn streaming_matches_batch_in_reverse_order() {
    let (problems, record) = simulated(8, 44, 7);
    let reversed: Vec<StudentRecord> = record.students.iter().rev().cloned().collect();
    assert_eq!(
        stream_json(&reversed, &problems),
        batch_json(&record.students, &problems)
    );
}

#[test]
fn resits_replace_prior_rows() {
    let (problems, record) = simulated(6, 20, 3);
    let (problems2, retaken) = simulated(6, 20, 4);
    assert_eq!(problems, problems2);
    // Everyone finishes once, then half the class resits with the
    // seed-4 outcomes; the final row per student is their last finish.
    let mut applied = record.students.clone();
    applied.extend(retaken.students.iter().take(10).cloned());
    let mut finals: Vec<StudentRecord> = retaken.students[..10].to_vec();
    finals.extend(record.students[10..].iter().cloned());
    assert_eq!(
        stream_json(&applied, &problems),
        batch_json(&finals, &problems)
    );
}

#[test]
fn single_sitting_is_unstreamable_like_batch_errors() {
    let (problems, record) = simulated(4, 10, 5);
    let mut stream = ExamStream::new(AnalysisConfig::default());
    stream.apply(&record.students[0]);
    // Batch rejects a class of one (`ClassTooSmall`); streaming refuses
    // so the caller reaches that exact batch error.
    assert!(stream.report(&problems).is_err());
}

#[test]
fn mixed_problem_sets_are_unstreamable() {
    let (problems, record_a) = simulated(4, 10, 5);
    let (_, record_b) = simulated(6, 10, 5);
    let mut stream = ExamStream::new(AnalysisConfig::default());
    for record in record_a.students.iter().take(5) {
        stream.apply(record);
    }
    for record in record_b.students.iter().skip(5) {
        stream.apply(record);
    }
    assert!(stream.report(&problems).is_err());
}

#[test]
fn missing_problem_definition_is_unstreamable() {
    let (problems, record) = simulated(4, 10, 5);
    let mut stream = ExamStream::new(AnalysisConfig::default());
    for student in &record.students {
        stream.apply(student);
    }
    assert!(stream.report(&problems[..2]).is_err());
    assert!(stream.report(&problems).is_ok());
}

#[test]
fn alt_indices_are_identical_across_modes() {
    let (problems, record) = simulated(8, 44, 9);
    let mut stream = ExamStream::new(AnalysisConfig::default());
    for student in &record.students {
        stream.apply(student);
    }
    let streamed = stream.report(&problems).unwrap();
    let analyzer = BatchAnalyzer::new(AnalysisConfig::default());
    let batch = analyzer
        .analyze_records(std::slice::from_ref(&record), &problems)
        .unwrap();
    let a = serde_json::to_string(&alt_indices(&streamed.analyses[0])).unwrap();
    let b = serde_json::to_string(&alt_indices(&batch.analyses[0])).unwrap();
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random interleavings of finishes and resits over a simulated
    /// class: streaming output is byte-identical to batch over the
    /// final rows, and replaying the applied sequence from scratch (a
    /// WAL replay) reproduces the same bytes again.
    #[test]
    fn random_finish_orders_match_batch(
        seed in 0u64..500,
        order_keys in proptest::collection::vec(any::<u64>(), 24),
        resits in proptest::collection::vec(0usize..24, 0..8),
    ) {
        let (problems, first) = simulated(6, 24, seed);
        let (_, second) = simulated(6, 24, seed + 1000);

        // Shuffle the first-finish order with the random keys.
        let mut order: Vec<usize> = (0..24).collect();
        order.sort_by_key(|&i| (order_keys[i], i));
        let mut applied: Vec<StudentRecord> =
            order.iter().map(|&i| first.students[i].clone()).collect();
        // Then some students resit with their seed+1000 outcome.
        for &i in &resits {
            applied.push(second.students[i].clone());
        }

        // Final row per student: the last applied record.
        let mut finals: std::collections::BTreeMap<String, StudentRecord> =
            std::collections::BTreeMap::new();
        for record in &applied {
            finals.insert(record.student.to_string(), record.clone());
        }
        let finals: Vec<StudentRecord> = finals.into_values().collect();

        let streamed = stream_json(&applied, &problems);
        let batch = batch_json(&finals, &problems);
        prop_assert_eq!(&streamed, &batch);

        // Replay determinism: a fresh engine fed the same event
        // sequence (what WAL replay does) converges to the same bytes.
        let replayed = stream_json(&applied, &problems);
        prop_assert_eq!(&replayed, &batch);
    }
}
