//! The frozen pre-pool analysis pipeline, kept as the benchmark's
//! speedup baseline.
//!
//! [`analyze_naive`] reproduces `ExamAnalysis::analyze` exactly as it
//! worked before the work-stealing pool and the per-question hot-path
//! rework: one thread, and every lookup a linear scan — each question
//! resolved against the problem slice with `find`, each group member
//! located in the roster by string comparison, each response by
//! scanning the member's response list (that is what the reference
//! implementations [`QuestionIndices::compute`] and
//! [`OptionMatrix::from_record`] still do), and the score–difficulty
//! scatter re-searching the indices per correct response.
//!
//! The output is byte-identical to the optimized pipeline — pinned by
//! the oracle test below and measured by `benches/batch_analysis.rs`,
//! where this baseline is the `sequential` arm the `batch/Nt` numbers
//! are compared against.

use mine_analysis::{
    analyze_distractors, cronbach_alpha, AnalysisConfig, AnalysisError, ExamAnalysis,
    ExamStatistics, FigurePoint, Figures, OptionMatrix, QuestionAnalysis, QuestionIndices,
    ScoreGroups, StatusFlags, TwoWayTable,
};
use mine_analysis::{figures, rules};
use mine_core::{ExamRecord, ProblemId};
use mine_itembank::{Problem, ProblemBody};
use mine_metadata::QuestionStyle;

/// The naive §4 pipeline: sequential, scan-everything, one exam.
///
/// # Errors
///
/// The same errors as [`ExamAnalysis::analyze`], in the same order.
pub fn analyze_naive(
    record: &ExamRecord,
    problems: &[Problem],
    config: &AnalysisConfig,
) -> Result<ExamAnalysis, AnalysisError> {
    let groups = ScoreGroups::split(record, config.group_fraction)?;

    // Number the questions sequentially, resolving every problem id by
    // scanning the supplied slice (first match wins).
    let mut tasks: Vec<(usize, ProblemId, &Problem)> = Vec::new();
    let mut surveys = Vec::new();
    let mut number = 0usize;
    for id in record.problems() {
        let problem = problems.iter().find(|p| p.id() == &id).ok_or_else(|| {
            AnalysisError::UnknownProblem {
                problem: id.to_string(),
            }
        })?;
        if problem.style() == QuestionStyle::Questionnaire {
            surveys.push(id);
            continue;
        }
        number += 1;
        tasks.push((number, id, problem));
    }

    let questions = tasks
        .iter()
        .map(|(number, id, problem)| {
            analyze_question_naive(record, &groups, config, *number, id, problem)
        })
        .collect::<Result<Vec<_>, _>>()?;

    let statistics = statistics(record, config);
    let indices_only: Vec<QuestionIndices> = questions.iter().map(|q| q.indices.clone()).collect();
    // The figure/two-way problem list covers every exam position,
    // questionnaires included — resolved by the same linear scan.
    let exam_problems: Vec<Problem> = record
        .problems()
        .iter()
        .map(|id| {
            problems
                .iter()
                .find(|p| p.id() == id)
                .expect("every id resolved above")
                .clone()
        })
        .collect();
    let figures = Figures {
        time_answered: figures::time_answered_series(record, 20),
        score_difficulty: score_difficulty_scatter_naive(record, &indices_only),
        cognition_subject: figures::cognition_subject_matrix(&exam_problems),
        score_histogram: figures::score_histogram(record, 10),
    };
    let two_way = TwoWayTable::from_problems(&exam_problems);
    let reliability = cronbach_alpha(record)?;

    Ok(ExamAnalysis {
        groups,
        questions,
        statistics,
        figures,
        two_way,
        reliability,
        surveys,
    })
}

/// The per-question pipeline through the reference implementations:
/// [`QuestionIndices::compute`] and [`OptionMatrix::from_record`] each
/// rescan roster and response lists per group member.
fn analyze_question_naive(
    record: &ExamRecord,
    groups: &ScoreGroups,
    config: &AnalysisConfig,
    number: usize,
    id: &ProblemId,
    problem: &Problem,
) -> Result<QuestionAnalysis, AnalysisError> {
    let indices = QuestionIndices::compute(record, groups, number, id)?;
    let matrix = match problem.body() {
        ProblemBody::MultipleChoice {
            options, correct, ..
        } => Some(OptionMatrix::from_record(
            record,
            groups,
            id,
            options.len(),
            *correct,
        )?),
        _ => None,
    };
    let findings = matrix
        .as_ref()
        .map(|m| rules::evaluate_rules(m, config.flatness))
        .unwrap_or_default();
    let status = StatusFlags::from_rules(&findings);
    let distractors = matrix.as_ref().map(analyze_distractors).unwrap_or_default();
    let signal = config.signal.classify(indices.discrimination);
    let advice = config.signal.advice(indices.discrimination, &findings);
    Ok(QuestionAnalysis {
        indices,
        matrix,
        findings,
        status,
        distractors,
        signal,
        advice,
    })
}

/// The pre-optimization Figure 2 scatter: every correct response
/// re-searches the index list linearly.
fn score_difficulty_scatter_naive(
    record: &ExamRecord,
    indices: &[QuestionIndices],
) -> Vec<FigurePoint> {
    record
        .students
        .iter()
        .filter_map(|student| {
            let correct_ps: Vec<f64> = student
                .responses
                .iter()
                .filter(|r| r.is_correct)
                .filter_map(|r| {
                    indices
                        .iter()
                        .find(|i| i.problem == r.problem)
                        .map(|i| i.difficulty.value())
                })
                .collect();
            if correct_ps.is_empty() {
                return None;
            }
            Some(FigurePoint {
                x: student.score(),
                y: correct_ps.iter().sum::<f64>() / correct_ps.len() as f64,
            })
        })
        .collect()
}

/// Replicates `ExamAnalysis::statistics` (private in the crate) so the
/// assembled baseline report is complete.
fn statistics(record: &ExamRecord, config: &AnalysisConfig) -> ExamStatistics {
    use std::time::Duration;
    let n = record.students.len();
    let mut scores: Vec<f64> = record.students.iter().map(|s| s.score()).collect();
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = scores.iter().sum::<f64>() / n as f64;
    let median = if n % 2 == 1 {
        scores[n / 2]
    } else {
        (scores[n / 2 - 1] + scores[n / 2]) / 2.0
    };
    // Moment form, matching the live `ExamAnalysis::statistics`.
    let variance = (scores.iter().map(|s| s * s).sum::<f64>() / n as f64 - mean * mean).max(0.0);
    let max_score = record
        .students
        .first()
        .map(mine_core::StudentRecord::max_score)
        .unwrap_or(0.0);
    let pass_line = max_score * config.pass_mark;
    let pass_rate = scores.iter().filter(|&&s| s >= pass_line).count() as f64 / n as f64;
    let total_time: Duration = record.students.iter().map(|s| s.total_time).sum();
    let mean_attempted = record
        .students
        .iter()
        .map(|s| s.attempted_count())
        .sum::<usize>() as f64
        / n as f64;
    ExamStatistics {
        class_size: n,
        mean_score: mean,
        median_score: median,
        std_dev: variance.sqrt(),
        max_score,
        pass_rate,
        average_time: total_time / n as u32,
        mean_attempted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{standard_problems, standard_record};

    /// The oracle: the frozen baseline and the optimized pipeline agree
    /// byte for byte, so benchmarking one against the other measures
    /// speed, not semantic drift.
    #[test]
    fn baseline_matches_the_optimized_pipeline_byte_for_byte() {
        let problems = standard_problems(30);
        let config = AnalysisConfig::default();
        for seed in [1u64, 7, 42] {
            let record = standard_record(30, 60, seed);
            let naive = serde_json::to_string(&analyze_naive(&record, &problems, &config).unwrap())
                .unwrap();
            let optimized =
                serde_json::to_string(&ExamAnalysis::analyze(&record, &problems, &config).unwrap())
                    .unwrap();
            assert_eq!(naive, optimized, "seed {seed} diverged");
        }
    }

    /// Both report the first unknown problem in exam order.
    #[test]
    fn baseline_matches_error_behaviour() {
        let problems = standard_problems(10);
        let record = standard_record(10, 30, 5);
        let config = AnalysisConfig::default();
        let naive = analyze_naive(&record, &problems[..4], &config);
        let optimized = ExamAnalysis::analyze(&record, &problems[..4], &config);
        assert!(matches!(
            naive,
            Err(AnalysisError::UnknownProblem { ref problem }) if problem == "q004"
        ));
        assert!(matches!(
            optimized,
            Err(AnalysisError::UnknownProblem { ref problem }) if problem == "q004"
        ));
    }
}
