//! Shared workloads and configuration for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper (see
//! `DESIGN.md` §4 for the experiment index): it first *prints* the
//! artifact once, then measures the code path that produces it with
//! Criterion.

pub mod baseline;

use std::time::Duration;

use criterion::Criterion;

use mine_core::{CognitionLevel, ExamRecord, OptionKey};
use mine_itembank::{ChoiceOption, Exam, Problem};
use mine_simulator::{CohortSpec, ItemParams, Simulation};

/// Criterion tuned for a large suite: short warmup/measurement.
#[must_use]
pub fn criterion_config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(700))
        .sample_size(10)
        .configure_from_args()
}

/// A standard bank of `n` five-option choice problems across three
/// subjects and all six Bloom levels.
#[must_use]
pub fn standard_problems(n: usize) -> Vec<Problem> {
    (0..n)
        .map(|i| {
            Problem::multiple_choice(
                format!("q{i:03}"),
                format!("Question {i} text body for benchmarking"),
                OptionKey::first(5).map(|k| ChoiceOption::new(k, format!("option {k}"))),
                OptionKey::A,
            )
            .unwrap()
            .with_subject(["tcp", "routing", "dns"][i % 3])
            .with_cognition_level(CognitionLevel::ALL[i % 6])
        })
        .collect()
}

/// An exam over [`standard_problems`]`(n)`.
///
/// # Panics
///
/// Panics only on programmer error (identifiers are statically valid).
#[must_use]
pub fn standard_exam(n: usize) -> Exam {
    let mut builder = Exam::builder("bench-exam").unwrap().title("Bench exam");
    for i in 0..n {
        builder = builder.entry(format!("q{i:03}").parse().unwrap());
    }
    builder.build().unwrap()
}

/// A simulated sitting of the standard exam: `class` students, items
/// laddered in difficulty so the analysis has structure to find.
#[must_use]
pub fn standard_record(n_questions: usize, class: usize, seed: u64) -> ExamRecord {
    let mut simulation =
        Simulation::new(standard_exam(n_questions), standard_problems(n_questions))
            .cohort(CohortSpec::new(class).seed(seed));
    for i in 0..n_questions {
        let b = (i as f64 / n_questions.max(2) as f64) * 3.0 - 1.5;
        simulation = simulation.item_params(
            format!("q{i:03}").parse().unwrap(),
            ItemParams::multiple_choice(1.2, b, 5),
        );
    }
    simulation.run().expect("standard simulation runs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_workloads_are_consistent() {
        let problems = standard_problems(12);
        let exam = standard_exam(12);
        assert_eq!(problems.len(), exam.len());
        let record = standard_record(12, 20, 1);
        assert_eq!(record.class_size(), 20);
        record.validate().unwrap();
    }
}
