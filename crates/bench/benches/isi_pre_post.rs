//! Experiment ISI: the §3.4-III Instructional Sensitivity Index from
//! pre/post-instruction sittings of the same cohort.

use criterion::{criterion_group, criterion_main, Criterion};

use mine_analysis::isi::instructional_sensitivity;
use mine_bench::{criterion_config, standard_exam, standard_problems};
use mine_simulator::{CohortSpec, Simulation};

fn bench(c: &mut Criterion) {
    let simulation = Simulation::new(standard_exam(12), standard_problems(12));
    let (pre, post) = simulation
        .run_pre_post(CohortSpec::new(120).seed(42), 1.0)
        .unwrap();
    let isi = instructional_sensitivity(&pre, &post).unwrap();

    println!("=== Instructional Sensitivity Index (§3.4-III) ===");
    println!("question       P_pre  P_post  ISI");
    for q in &isi.per_question {
        println!(
            "{:<14} {:.2}   {:.2}    {:+.2}",
            q.problem.as_str(),
            q.p_pre,
            q.p_post,
            q.isi
        );
    }
    println!("exam-level ISI: {:+.3}", isi.exam_level);
    println!(
        "(instruction gain of +1.0 ability should yield a clearly positive index: {})",
        if isi.exam_level > 0.05 {
            "yes"
        } else {
            "NO — check the model"
        }
    );

    c.bench_function("isi/compute_120_students_12_questions", |b| {
        b.iter(|| instructional_sensitivity(&pre, &post).unwrap())
    });
    c.bench_function("isi/simulate_and_compute", |b| {
        b.iter(|| {
            let (pre, post) = simulation
                .run_pre_post(CohortSpec::new(40).seed(1), 1.0)
                .unwrap();
            instructional_sensitivity(&pre, &post).unwrap().exam_level
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
