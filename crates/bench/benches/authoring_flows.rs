//! Experiment F3–F5: throughput of the authoring flows behind the
//! paper's interface figures — problem authoring, search, exam assembly
//! with the group service, and SCORM export.

use criterion::{criterion_group, criterion_main, Criterion};

use mine_authoring::AuthoringSystem;
use mine_bench::{criterion_config, standard_exam, standard_problems};
use mine_itembank::Query;

fn loaded_system(n: usize) -> AuthoringSystem {
    let system = AuthoringSystem::new();
    for problem in standard_problems(n) {
        system.author_problem("bench", problem).unwrap();
    }
    system.author_exam("bench", standard_exam(20)).unwrap();
    system
}

fn bench(c: &mut Criterion) {
    let system = loaded_system(500);
    println!("=== Authoring flows (Figures 3-5) ===");
    println!(
        "bank: {} problems, {} exams",
        system.repository().problem_count(),
        system.repository().exam_count()
    );
    let hits = system.search_problems(&Query::builder().subject("tcp").build());
    println!("subject search 'tcp' hits: {}", hits.len());

    c.bench_function("authoring/author_problem", |b| {
        // Criterion re-enters the routine for warmup and sampling; a
        // process-wide counter keeps the ids unique across passes.
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        b.iter(|| {
            let i = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let problem = mine_itembank::Problem::true_false(
                format!("bench-new-{i}"),
                "fresh statement",
                true,
            )
            .unwrap();
            system.author_problem("bench", problem).unwrap();
        })
    });

    c.bench_function("authoring/search_text_500_bank", |b| {
        let query = Query::text("question text benchmarking");
        b.iter(|| system.search_problems(&query).len())
    });

    c.bench_function("authoring/similar_problems", |b| {
        let id = "q001".parse().unwrap();
        b.iter(|| system.similar_problems(&id, 10).len())
    });

    c.bench_function("authoring/export_scorm_20q_exam", |b| {
        let exam_id = "bench-exam".parse().unwrap();
        b.iter(|| system.export_scorm("bench", &exam_id).unwrap().total_size())
    });

    c.bench_function("authoring/export_qti_20q_exam", |b| {
        let exam_id = "bench-exam".parse().unwrap();
        b.iter(|| {
            system
                .export_qti("bench", &exam_id)
                .unwrap()
                .to_xml_string()
                .len()
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
