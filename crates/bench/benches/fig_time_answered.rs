//! Experiment F-time: regenerate §4.2.1 figure (1) — time (x) vs.
//! number of answered questions (y), which "shows the test time is
//! enough or not" — and measure series construction.

use criterion::{criterion_group, criterion_main, Criterion};

use mine_analysis::figures::{render_ascii, time_answered_series};
use mine_bench::{criterion_config, standard_exam, standard_problems};
use mine_simulator::{CohortSpec, PacingModel, Simulation};

fn bench(c: &mut Criterion) {
    // A generous sitting vs. a squeezed one: same class, half the limit.
    let relaxed = Simulation::new(standard_exam(15), standard_problems(15))
        .cohort(CohortSpec::new(44).seed(3))
        .pacing(PacingModel {
            base_seconds: 40.0,
            jitter: 0.3,
        })
        .run()
        .unwrap();
    let mut squeezed_exam = standard_exam(15);
    squeezed_exam.meta_mut().test_time = Some(std::time::Duration::from_secs(300));
    let squeezed = Simulation::new(squeezed_exam, standard_problems(15))
        .cohort(CohortSpec::new(44).seed(3))
        .pacing(PacingModel {
            base_seconds: 40.0,
            jitter: 0.3,
        })
        .run()
        .unwrap();

    println!("=== Figure: time vs. questions answered (§4.2.1-1) ===");
    println!("unlimited time (class finishes):");
    print!(
        "{}",
        render_ascii(&time_answered_series(&relaxed, 24), 60, 10)
    );
    println!("\n300-second limit (curve flattens early → time not enough):");
    print!(
        "{}",
        render_ascii(&time_answered_series(&squeezed, 24), 60, 10)
    );
    let final_relaxed = time_answered_series(&relaxed, 24).last().unwrap().y;
    let final_squeezed = time_answered_series(&squeezed, 24).last().unwrap().y;
    println!(
        "\nfinal mean answered: unlimited {final_relaxed:.1}/15 vs limited {final_squeezed:.1}/15"
    );

    c.bench_function("fig_time/series_44_students", |b| {
        b.iter(|| time_answered_series(&relaxed, 24))
    });
    let big = Simulation::new(standard_exam(15), standard_problems(15))
        .cohort(CohortSpec::new(500).seed(4))
        .run()
        .unwrap();
    c.bench_function("fig_time/series_500_students", |b| {
        b.iter(|| time_answered_series(&big, 24))
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
