//! Experiment F-score: regenerate §4.2.1 figure (2) — test score (x)
//! vs. degree of difficulty (y), "the distribution of score and
//! difficulty" — and measure scatter construction.

use criterion::{criterion_group, criterion_main, Criterion};

use mine_analysis::figures::{render_ascii, score_difficulty_scatter};
use mine_analysis::{AnalysisConfig, ExamAnalysis, QuestionIndices, ScoreGroups};
use mine_bench::{criterion_config, standard_problems, standard_record};
use mine_core::GroupFraction;

fn bench(c: &mut Criterion) {
    let record = standard_record(20, 120, 5);
    let problems = standard_problems(20);
    let analysis = ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default()).unwrap();

    println!("=== Figure: score vs. difficulty (§4.2.1-2) ===");
    println!("(x = student total score, y = mean P of their correct answers;");
    println!(" weak students survive only on easy items → downward slope)");
    print!(
        "{}",
        render_ascii(&analysis.figures.score_difficulty, 60, 12)
    );

    let groups = ScoreGroups::split(&record, GroupFraction::PAPER).unwrap();
    let indices = QuestionIndices::table(&record, &groups, &record.problems()).unwrap();
    c.bench_function("fig_score/scatter_120_students", |b| {
        b.iter(|| score_difficulty_scatter(&record, &indices))
    });

    let big_record = standard_record(20, 600, 6);
    let big_groups = ScoreGroups::split(&big_record, GroupFraction::PAPER).unwrap();
    let big_indices =
        QuestionIndices::table(&big_record, &big_groups, &big_record.problems()).unwrap();
    c.bench_function("fig_score/scatter_600_students", |b| {
        b.iter(|| score_difficulty_scatter(&big_record, &big_indices))
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
