//! Perf: the pooled batch analysis engine vs the frozen naive pipeline.
//!
//! Workload: many sittings of a 50-question exam by 200-student
//! cohorts, all through the full §4 pipeline. `sequential` runs
//! [`mine_bench::baseline::analyze_naive`] exam by exam on one thread —
//! the scan-everything pre-pool pipeline, frozen in this crate and
//! pinned byte-identical to the live analyzer by its oracle test, so
//! the comparison stays honest as the hot path keeps evolving.
//! `batch/Nt` runs the same jobs through `BatchAnalyzer` on the
//! work-stealing pool with an N-thread budget (cache disabled, so the
//! numbers measure computation, not memoization). A final pair
//! measures the warm-cache path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mine_analysis::{AnalysisConfig, BatchAnalyzer};
use mine_bench::baseline::analyze_naive;
use mine_bench::{criterion_config, standard_problems, standard_record};
use mine_core::ExamRecord;
use mine_itembank::Problem;

const QUESTIONS: usize = 50;
const CLASS: usize = 200;

fn workload(exams: usize) -> Vec<ExamRecord> {
    (0..exams)
        .map(|i| standard_record(QUESTIONS, CLASS, 1000 + i as u64))
        .collect()
}

/// The baseline: every exam and every question on a single thread,
/// through the frozen scan-everything pipeline the pool replaced.
fn sequential(records: &[ExamRecord], problems: &[Problem]) -> usize {
    let config = AnalysisConfig::default();
    records
        .iter()
        .map(|record| {
            analyze_naive(record, problems, &config)
                .unwrap()
                .questions
                .len()
        })
        .sum()
}

fn bench(c: &mut Criterion) {
    let problems = standard_problems(QUESTIONS);

    println!("=== Batch analysis: {QUESTIONS} questions x {CLASS} students per exam ===");
    let mut group = c.benchmark_group("batch_analysis");
    for exams in [10usize, 100, 1000] {
        let records = workload(exams);
        group.throughput(Throughput::Elements(exams as u64));
        group.bench_with_input(
            BenchmarkId::new("sequential", exams),
            &records,
            |b, records| b.iter(|| sequential(records, &problems)),
        );
        for threads in [1usize, 2, 4, 8] {
            let analyzer = BatchAnalyzer::new(AnalysisConfig::default())
                .with_threads(threads)
                .with_cache_capacity(0);
            group.bench_with_input(
                BenchmarkId::new(format!("batch/{threads}t"), exams),
                &records,
                |b, records| {
                    b.iter(|| {
                        analyzer
                            .analyze_records(records, &problems)
                            .unwrap()
                            .summary
                            .questions
                    });
                },
            );
        }
    }
    group.finish();

    // Memoization: the same 10 sittings analyzed again and again.
    let records = workload(10);
    let mut group = c.benchmark_group("batch_cache");
    let cold = BatchAnalyzer::new(AnalysisConfig::default()).with_cache_capacity(0);
    group.bench_function("cold", |b| {
        b.iter(|| {
            cold.analyze_records(&records, &problems)
                .unwrap()
                .summary
                .exams
        });
    });
    let warm = BatchAnalyzer::new(AnalysisConfig::default());
    warm.analyze_records(&records, &problems).unwrap();
    group.bench_function("warm", |b| {
        b.iter(|| {
            warm.analyze_records(&records, &problems)
                .unwrap()
                .summary
                .exams
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Single-thread iterations at 1000 exams run tens of seconds;
    // three samples keep the full sweep affordable.
    config = criterion_config().sample_size(3);
    targets = bench
}
criterion_main!(benches);
