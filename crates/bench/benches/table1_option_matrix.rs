//! Experiment T1 + R1–R4: regenerate Table 1 (the problem-attribute
//! matrix) and the four rule examples of §4.1.2, then measure matrix
//! extraction and rule evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mine_analysis::rules::evaluate_rules;
use mine_analysis::{OptionMatrix, ScoreGroups};
use mine_bench::{criterion_config, standard_record};
use mine_core::{GroupFraction, OptionKey};

fn print_paper_examples() {
    println!("=== Table 1 / Rules 1-4 (paper §4.1.2) ===");
    let examples: [(&str, OptionKey, [usize; 5], [usize; 5]); 4] = [
        (
            "Example 1 (Rule 1)",
            OptionKey::A,
            [12, 2, 0, 3, 3],
            [6, 4, 0, 5, 5],
        ),
        (
            "Example 2 (Rule 2)",
            OptionKey::C,
            [1, 2, 10, 0, 7],
            [2, 2, 13, 1, 2],
        ),
        (
            "Example 3 (Rule 3)",
            OptionKey::A,
            [15, 2, 2, 0, 1],
            [5, 4, 5, 4, 2],
        ),
        (
            "Example 4 (Rule 4)",
            OptionKey::A,
            [4, 4, 4, 2, 6],
            [5, 4, 5, 4, 2],
        ),
    ];
    for (name, correct, high, low) in examples {
        let matrix = OptionMatrix::from_counts(
            "example".parse().unwrap(),
            correct,
            high.to_vec(),
            low.to_vec(),
        );
        let findings = evaluate_rules(&matrix, 0.2);
        println!("{name}:");
        print!("{}", matrix.render());
        println!(
            "  rule1 (low allure): {:?} | rule2 (not well defined): {:?} | rule3: {} | rule4: {}",
            findings
                .low_allure
                .iter()
                .map(|k| k.letter())
                .collect::<Vec<_>>(),
            findings
                .not_well_defined
                .iter()
                .map(|f| f.option.letter())
                .collect::<Vec<_>>(),
            findings.low_group_lacks_concept,
            findings.both_groups_lack_concept,
        );
    }
}

fn bench(c: &mut Criterion) {
    print_paper_examples();

    let record = standard_record(20, 200, 1);
    let groups = ScoreGroups::split(&record, GroupFraction::PAPER).unwrap();
    let problems = record.problems();

    c.bench_function("table1/matrix_from_record_200_students", |b| {
        b.iter(|| {
            OptionMatrix::from_record(&record, &groups, &problems[0], 5, OptionKey::A).unwrap()
        })
    });

    let matrix =
        OptionMatrix::from_record(&record, &groups, &problems[0], 5, OptionKey::A).unwrap();
    c.bench_function("table1/evaluate_rules", |b| {
        b.iter_batched(
            || matrix.clone(),
            |m| evaluate_rules(&m, 0.2),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("table1/all_questions_20", |b| {
        b.iter(|| {
            problems
                .iter()
                .map(|p| {
                    let m =
                        OptionMatrix::from_record(&record, &groups, p, 5, OptionKey::A).unwrap();
                    evaluate_rules(&m, 0.2)
                })
                .count()
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
