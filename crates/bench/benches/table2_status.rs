//! Experiment T2: regenerate Table 2 (rule → status matrix) and measure
//! the status mapping.

use criterion::{criterion_group, criterion_main, Criterion};

use mine_analysis::rules::evaluate_rules;
use mine_analysis::status::render_rule_status_table;
use mine_analysis::{OptionMatrix, StatusFlags};
use mine_bench::criterion_config;
use mine_core::OptionKey;

fn bench(c: &mut Criterion) {
    println!("=== Table 2 (rule → status) ===");
    print!("{}", render_rule_status_table());

    let matrices: Vec<OptionMatrix> = [
        ([12usize, 2, 0, 3, 3], [6usize, 4, 0, 5, 5], OptionKey::A),
        ([1, 2, 10, 0, 7], [2, 2, 13, 1, 2], OptionKey::C),
        ([15, 2, 2, 0, 1], [5, 4, 5, 4, 2], OptionKey::A),
        ([4, 4, 4, 2, 6], [5, 4, 5, 4, 2], OptionKey::A),
    ]
    .into_iter()
    .map(|(high, low, correct)| {
        OptionMatrix::from_counts("m".parse().unwrap(), correct, high.to_vec(), low.to_vec())
    })
    .collect();

    println!("\nstatus labels per example:");
    for (i, matrix) in matrices.iter().enumerate() {
        let status = StatusFlags::from_rules(&evaluate_rules(matrix, 0.2));
        println!("  example {}: {:?}", i + 1, status.labels());
    }

    c.bench_function("table2/status_from_rules_x4", |b| {
        b.iter(|| {
            matrices
                .iter()
                .map(|m| StatusFlags::from_rules(&evaluate_rules(m, 0.2)))
                .filter(StatusFlags::any)
                .count()
        })
    });

    c.bench_function("table2/render_static_table", |b| {
        b.iter(render_rule_status_table)
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
