//! Perf: append throughput of the event-log store per fsync policy.
//!
//! Workload: batches of 256-byte records (the size of a typical
//! journaled session event) appended to a fresh log. The three
//! policies bracket the durability/throughput trade-off the `--fsync`
//! serve flag exposes: `always` pays one `fdatasync` per record,
//! `interval:100` amortizes it over the window, `never` measures the
//! pure framing + page-cache write path.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mine_bench::criterion_config;
use mine_store::{EventStore, StoreOptions, SyncPolicy};

const RECORD_BYTES: usize = 256;
const BATCH: usize = 64;

fn policies() -> Vec<(&'static str, SyncPolicy)> {
    vec![
        ("never", SyncPolicy::Never),
        (
            "interval_100ms",
            SyncPolicy::Interval(Duration::from_millis(100)),
        ),
        ("always", SyncPolicy::Always),
    ]
}

fn bench(c: &mut Criterion) {
    let payload = vec![0x5A_u8; RECORD_BYTES];
    println!("=== Store append: {BATCH} x {RECORD_BYTES}-byte records per iteration ===");
    let mut group = c.benchmark_group("store_append");
    group.throughput(Throughput::Elements(BATCH as u64));
    for (name, sync) in policies() {
        let dir =
            std::env::temp_dir().join(format!("mine-store-bench-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = StoreOptions {
            sync,
            ..StoreOptions::default()
        };
        let (store, _) = EventStore::open(&dir, options).expect("open store");
        group.bench_with_input(BenchmarkId::new("fsync", name), &store, |b, store| {
            b.iter(|| {
                for _ in 0..BATCH {
                    store.append(&payload).expect("append");
                }
                store.next_seq()
            })
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
