//! Experiment §4.1.1 number representation: regenerate the
//! `No | PH | PL | D | P` table and measure index computation end to
//! end, including the five-step procedure (sort, split, count, P, D).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mine_analysis::{QuestionIndices, ScoreGroups};
use mine_bench::{criterion_config, standard_record};
use mine_core::GroupFraction;

fn bench(c: &mut Criterion) {
    let record = standard_record(10, 44, 2004);
    let groups = ScoreGroups::split(&record, GroupFraction::PAPER).unwrap();
    let rows = QuestionIndices::table(&record, &groups, &record.problems()).unwrap();

    println!("=== §4.1.1 number representation table ===");
    print!("{}", QuestionIndices::render_table(&rows));

    let mut group = c.benchmark_group("number_table");
    for &(questions, class) in &[(10usize, 44usize), (30, 200), (50, 1000)] {
        let record = standard_record(questions, class, 3);
        group.bench_with_input(
            BenchmarkId::new("split_and_table", format!("{questions}q_{class}s")),
            &record,
            |b, record| {
                b.iter(|| {
                    let groups = ScoreGroups::split(record, GroupFraction::PAPER).unwrap();
                    QuestionIndices::table(record, &groups, &record.problems()).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
