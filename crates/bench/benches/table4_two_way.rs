//! Experiment T4: regenerate Table 4 (the two-way specification table)
//! with the §4.2.3 analyses (concept lost, cognition pyramid, paint
//! distribution) and measure table construction across bank sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mine_analysis::TwoWayTable;
use mine_bench::{criterion_config, standard_problems};

fn bench(c: &mut Criterion) {
    let problems = standard_problems(24);
    let table = TwoWayTable::from_problems(&problems);

    println!("=== Table 4 (two-way specification table) ===");
    print!("{}", table.render());
    println!("\npaint distribution (§4.2.3-3):");
    print!("{}", table.render_paint());
    println!(
        "concept lost check vs syllabus [tcp, routing, dns, qos]: {:?}",
        table.lost_concepts(&["tcp", "routing", "dns", "qos"]),
    );
    match table.cognition_pyramid_violation() {
        None => println!("cognition pyramid SUM(A) ≥ … ≥ SUM(F): holds"),
        Some((a, b)) => println!("cognition pyramid violated: SUM({a}) < SUM({b})"),
    }

    let mut group = c.benchmark_group("table4");
    for &n in &[10usize, 100, 1000] {
        let problems = standard_problems(n);
        group.bench_with_input(BenchmarkId::new("build", n), &problems, |b, problems| {
            b.iter(|| TwoWayTable::from_problems(problems))
        });
    }
    group.finish();

    c.bench_function("table4/analyses", |b| {
        b.iter(|| {
            let lost = table.lost_concepts(&["tcp", "routing", "dns", "qos"]).len();
            (lost, table.cognition_pyramid_ok(), table.total())
        })
    });
    c.bench_function("table4/render_paint", |b| b.iter(|| table.render_paint()));
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
