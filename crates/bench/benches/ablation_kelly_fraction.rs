//! Ablation A1: the paper fixes the score-group fraction at 25 %; Kelly
//! (1939) recommends 27 % with 25–33 % acceptable. Sweep the fraction on
//! a fixed cohort and report how the discrimination estimates and
//! signal mix move.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mine_analysis::{AnalysisConfig, ExamAnalysis, Signal};
use mine_bench::{criterion_config, standard_problems, standard_record};
use mine_core::GroupFraction;

fn bench(c: &mut Criterion) {
    let record = standard_record(15, 200, 11);
    let problems = standard_problems(15);

    println!("=== Ablation: group fraction 25% vs 27% vs 33% ===");
    println!("fraction  mean D   greens  yellows  reds");
    for fraction in [0.25, 0.27, 0.33] {
        let config =
            AnalysisConfig::default().with_group_fraction(GroupFraction::new(fraction).unwrap());
        let analysis = ExamAnalysis::analyze(&record, &problems, &config).unwrap();
        let mean_d: f64 = analysis
            .questions
            .iter()
            .map(|q| q.indices.discrimination.value())
            .sum::<f64>()
            / analysis.questions.len() as f64;
        let count = |signal: Signal| {
            analysis
                .questions
                .iter()
                .filter(|q| q.signal == signal)
                .count()
        };
        println!(
            "{:<9} {:+.3}   {:<7} {:<8} {}",
            format!("{:.0}%", fraction * 100.0),
            mean_d,
            count(Signal::Green),
            count(Signal::Yellow),
            count(Signal::Red),
        );
    }

    let mut group = c.benchmark_group("ablation_kelly");
    for &fraction in &[0.25f64, 0.27, 0.33] {
        let config =
            AnalysisConfig::default().with_group_fraction(GroupFraction::new(fraction).unwrap());
        group.bench_with_input(
            BenchmarkId::new("analyze", format!("{:.0}pct", fraction * 100.0)),
            &config,
            |b, config| b.iter(|| ExamAnalysis::analyze(&record, &problems, config).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
