//! Experiment T3: regenerate Table 3 (signal bands and advice) across a
//! D sweep and measure classification.

use criterion::{criterion_group, criterion_main, Criterion};

use mine_analysis::rules::RuleFindings;
use mine_analysis::SignalPolicy;
use mine_bench::criterion_config;
use mine_metadata::DiscriminationIndex;

fn bench(c: &mut Criterion) {
    let policy = SignalPolicy::default();

    println!("=== Table 3 (signal bands) ===");
    println!("Status            Light   D band");
    println!("Good              Green   D ≥ 0.30");
    println!("Fix               Yellow  0.20 ≤ D ≤ 0.29");
    println!("Eliminate or fix  Red     D ≤ 0.19");
    println!("\nD sweep:");
    for step in 0..=10 {
        let d = DiscriminationIndex::new(step as f64 / 10.0).unwrap();
        println!(
            "  D = {:.2} → {:<6} ({})",
            d.value(),
            policy.classify(d).to_string(),
            policy.advice(d, &RuleFindings::default()),
        );
    }

    let sweep: Vec<DiscriminationIndex> = (-100..=100)
        .map(|i| DiscriminationIndex::new(f64::from(i) / 100.0).unwrap())
        .collect();
    c.bench_function("table3/classify_sweep_201", |b| {
        b.iter(|| {
            sweep
                .iter()
                .map(|&d| policy.classify(d))
                .filter(|s| *s == mine_analysis::Signal::Green)
                .count()
        })
    });
    c.bench_function("table3/advice_generation", |b| {
        let d = DiscriminationIndex::new(0.25).unwrap();
        b.iter(|| policy.advice(d, &RuleFindings::default()))
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
