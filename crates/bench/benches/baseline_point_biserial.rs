//! Ablation A2: the paper's D = PH − PL vs. the point-biserial
//! correlation used by Moodle-style item analysis. Both should rank the
//! items nearly identically (high Spearman agreement).

use criterion::{criterion_group, criterion_main, Criterion};

use mine_analysis::baseline::spearman_rank;
use mine_analysis::{point_biserial, AnalysisConfig, ExamAnalysis};
use mine_bench::{criterion_config, standard_problems, standard_record};

fn bench(c: &mut Criterion) {
    let record = standard_record(20, 300, 13);
    let problems = standard_problems(20);
    let analysis = ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default()).unwrap();

    let d_values: Vec<f64> = analysis
        .questions
        .iter()
        .map(|q| q.indices.discrimination.value())
        .collect();
    let r_values: Vec<f64> = record
        .problems()
        .iter()
        .map(|p| point_biserial(&record, p).unwrap())
        .collect();

    println!("=== Baseline: D = PH−PL vs point-biserial r ===");
    println!("question   D       r_pb");
    for (i, (d, r)) in d_values.iter().zip(&r_values).enumerate() {
        println!("q{i:03}       {d:+.3}  {r:+.3}");
    }
    let rho = spearman_rank(&d_values, &r_values);
    println!("\nSpearman rank agreement: {rho:.3} (strongly positive expected: both indices rank items similarly)");

    c.bench_function("baseline/point_biserial_one_item", |b| {
        let problem = &record.problems()[0];
        b.iter(|| point_biserial(&record, problem).unwrap())
    });
    c.bench_function("baseline/point_biserial_all_20", |b| {
        b.iter(|| {
            record
                .problems()
                .iter()
                .map(|p| point_biserial(&record, p).unwrap())
                .sum::<f64>()
        })
    });
    c.bench_function("baseline/spearman_agreement", |b| {
        b.iter(|| spearman_rank(&d_values, &r_values))
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
