//! Experiment F-cog: regenerate §4.2.1 figure (3) — cognition level (x)
//! vs. learning-content subject (y) — and measure matrix construction.

use criterion::{criterion_group, criterion_main, Criterion};

use mine_analysis::figures::cognition_subject_matrix;
use mine_bench::{criterion_config, standard_problems};
use mine_core::CognitionLevel;

fn bench(c: &mut Criterion) {
    let problems = standard_problems(30);
    let matrix = cognition_subject_matrix(&problems);

    println!("=== Figure: cognition level vs. subject (§4.2.1-3) ===");
    print!("{:<12}", "subject");
    for level in CognitionLevel::ALL {
        print!("{:<4}", level.letter());
    }
    println!();
    for (subject, row) in &matrix {
        print!("{subject:<12}");
        for count in row {
            print!("{count:<4}");
        }
        println!();
    }

    c.bench_function("fig_cog/matrix_30_problems", |b| {
        b.iter(|| cognition_subject_matrix(&problems))
    });
    let big = standard_problems(1000);
    c.bench_function("fig_cog/matrix_1000_problems", |b| {
        b.iter(|| cognition_subject_matrix(&big))
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
