//! Experiment S1: the §5.5 SCORM format output service — package
//! build / serialize / re-parse across bank sizes, plus RTE API call
//! throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mine_bench::{criterion_config, standard_exam, standard_problems};
use mine_scorm::{ApiAdapter, ContentPackage};

fn bench(c: &mut Criterion) {
    let package = ContentPackage::builder("PKG-BENCH")
        .exam(standard_exam(10))
        .problems(standard_problems(10))
        .build()
        .unwrap();
    println!("=== SCORM package output (§5.5) ===");
    println!(
        "10-problem package: {} files, {} bytes",
        package.files.len(),
        package.total_size()
    );
    println!("manifest head:");
    for line in package.files["imsmanifest.xml"].lines().take(8) {
        println!("  {line}");
    }

    let mut group = c.benchmark_group("scorm_package");
    for &n in &[5usize, 25, 100] {
        let problems = standard_problems(n);
        let exam = standard_exam(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| {
                ContentPackage::builder("PKG")
                    .exam(exam.clone())
                    .problems(problems.clone())
                    .build()
                    .unwrap()
            })
        });
        let files = ContentPackage::builder("PKG")
            .exam(exam.clone())
            .problems(problems.clone())
            .build()
            .unwrap()
            .into_files();
        group.bench_with_input(BenchmarkId::new("parse", n), &n, |b, _| {
            b.iter(|| ContentPackage::from_files(files.clone()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("extract_problems", n), &n, |b, _| {
            let pkg = ContentPackage::from_files(files.clone()).unwrap();
            b.iter(|| pkg.extract_problems().unwrap())
        });
    }
    group.finish();

    c.bench_function("scorm_rte/full_session_protocol", |b| {
        b.iter(|| {
            let mut api = ApiAdapter::new();
            api.lms_initialize("");
            for i in 0..10 {
                api.lms_set_value(&format!("cmi.interactions.{i}.id"), "q")
                    .unwrap();
                api.lms_set_value(&format!("cmi.interactions.{i}.result"), "correct")
                    .unwrap();
            }
            api.lms_set_value("cmi.core.score.raw", "90").unwrap();
            api.lms_set_value("cmi.core.lesson_status", "passed")
                .unwrap();
            api.lms_commit("");
            api.lms_finish("");
            api.commit_count()
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
