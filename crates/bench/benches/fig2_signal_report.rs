//! Experiment F2: regenerate the Figure 2 whole-test signal interface
//! for a 44-student class (the paper's worked setting: groups of 11),
//! including the no. 2 / no. 6 style verdicts, and measure the full
//! analysis + report path.

use criterion::{criterion_group, criterion_main, Criterion};

use mine_analysis::{render_signal_report, AnalysisConfig, ExamAnalysis};
use mine_bench::{criterion_config, standard_problems, standard_record};
use mine_metadata::{DifficultyIndex, DiscriminationIndex};

fn bench(c: &mut Criterion) {
    // The paper's class: 44 students, groups of 11.
    let record = standard_record(10, 44, 2004);
    let problems = standard_problems(10);
    let analysis = ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default()).unwrap();

    println!("=== Figure 2 (whole-test signal interface) ===");
    print!("{}", render_signal_report(&analysis));

    println!("\npaper worked values for reference:");
    let ph = DifficultyIndex::from_counts(10, 11).unwrap();
    let pl = DifficultyIndex::from_counts(4, 11).unwrap();
    let d = DiscriminationIndex::from_groups(ph, pl);
    println!(
        "  no. 2: PH={:.2} PL={:.2} D={:.2} P={:.3} → green",
        ph.value(),
        pl.value(),
        d.value(),
        (ph.value() + pl.value()) / 2.0,
    );
    let ph6 = DifficultyIndex::from_counts(5, 11).unwrap();
    let d6 = DiscriminationIndex::from_groups(ph6, pl);
    println!(
        "  no. 6: PH={:.2} PL={:.2} D={:.2} → red, rule 1 on option A",
        ph6.value(),
        pl.value(),
        d6.value(),
    );

    c.bench_function("fig2/analyze_44_students_10_questions", |b| {
        b.iter(|| ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default()).unwrap())
    });
    c.bench_function("fig2/render_report", |b| {
        b.iter(|| render_signal_report(&analysis))
    });

    // Scaling: a big lecture course.
    let big_record = standard_record(30, 400, 7);
    let big_problems = standard_problems(30);
    c.bench_function("fig2/analyze_400_students_30_questions", |b| {
        b.iter(|| {
            ExamAnalysis::analyze(&big_record, &big_problems, &AnalysisConfig::default()).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
