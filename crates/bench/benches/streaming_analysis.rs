//! Perf: the streaming sufficient-statistics engine vs batch recompute.
//!
//! Workload: one exam of 50 questions sat by 10/100/1000/10000
//! students. Two costs matter:
//!
//! * **Finish-time update** — what each `POST /sessions/{id}/finish`
//!   pays to keep the engine current. Measured per `ExamStream::apply`
//!   call and reported as p50/p99/max, because the acceptance bar is a
//!   tail bound (sub-millisecond p99), not an average.
//! * **Analysis read** — assembling the §4 report. `streaming` folds
//!   the engine's counters; `batch_cold` recomputes from the raw rows
//!   with the cache disabled; `batch_warm` is the memoized re-read.
//!   Read arms report the minimum over the iterations (deterministic
//!   workload, so spread is pure interference). Serialization is
//!   excluded from all three arms (it is common to both HTTP paths);
//!   `streaming+serialize` is included so the end-to-end handler cost
//!   is still on record.
//!
//! This bench hand-rolls its measurement instead of going through the
//! criterion stand-in because the update arm needs percentiles over
//! thousands of individual calls, which the stand-in cannot report. It
//! honors the same contract: `--bench` (passed by `cargo bench`) means
//! measure, anything else (e.g. `cargo test` running this target) means
//! one-pass smoke, and `CRITERION_JSON=<path>` appends one JSON line
//! per measurement.

use std::io::Write as _;
use std::time::Instant;

use mine_analysis::{AnalysisConfig, BatchAnalyzer};
use mine_bench::{standard_problems, standard_record};
use mine_streamstats::ExamStream;

const QUESTIONS: usize = 50;

/// Sorted-latency percentile (nearest-rank).
fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    let rank = ((sorted_ns.len() as f64 * p).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1]
}

/// Minimum wall time of `iters` runs of `f`. The workload is fully
/// deterministic, so every run does identical work and the spread is
/// pure interference (scheduler, other tenants on a shared box); the
/// minimum is the standard least-noise estimator for that shape —
/// medians here measure machine load, not the code.
fn best_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .min()
        .unwrap_or(0)
}

fn export(line: &str) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| writeln!(file, "{line}"));
    if let Err(error) = result {
        eprintln!("CRITERION_JSON export to {path} failed: {error}");
    }
}

fn human(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn main() {
    let measure = std::env::args().any(|arg| arg == "--bench");
    let sittings: &[usize] = if measure {
        &[10, 100, 1000, 10_000]
    } else {
        &[10]
    };
    let problems = standard_problems(QUESTIONS);
    let config = AnalysisConfig::default();

    println!("=== Streaming analysis: {QUESTIONS} questions, one exam, growing class ===");
    for &n in sittings {
        let mut record = standard_record(QUESTIONS, n, 4242);
        // The server feeds both paths from the finished store's
        // `BTreeMap`, so rows arrive in `StudentId` order; mirror that
        // here or the scatter figure's row order diverges above 1000
        // sittings (the simulator pads ids to three digits).
        record.students.sort_by(|a, b| a.student.cmp(&b.student));

        // Finish-time updates: apply every sitting, timing each call.
        let mut stream = ExamStream::new(config);
        let mut update_ns: Vec<u64> = Vec::with_capacity(n);
        for student in &record.students {
            let start = Instant::now();
            stream.apply(student);
            update_ns.push(start.elapsed().as_nanos() as u64);
        }
        update_ns.sort_unstable();
        let (p50, p99, max) = (
            percentile(&update_ns, 0.50),
            percentile(&update_ns, 0.99),
            *update_ns.last().unwrap(),
        );
        println!(
            "streaming_update/{n}: p50 {} p99 {} max {}",
            human(p50),
            human(p99),
            human(max)
        );
        export(&format!(
            "{{\"id\":\"streaming_update/{n}\",\"p50_ns\":{p50},\"p99_ns\":{p99},\
             \"max_ns\":{max},\"elements\":{n}}}"
        ));

        let iters = if measure { 20 } else { 1 };

        // Read arms. The streaming report must agree with batch before
        // its timing means anything.
        let streaming_report = stream.report(&problems).expect("streamable workload");
        let batch = BatchAnalyzer::new(config).with_cache_capacity(0);
        let batch_report = batch
            .analyze_records(std::slice::from_ref(&record), &problems)
            .expect("batch analyzes");
        assert_eq!(
            serde_json::to_string(&streaming_report).unwrap(),
            serde_json::to_string(&batch_report).unwrap(),
            "streaming and batch must agree at {n} sittings"
        );

        let streaming = best_ns(iters, || {
            std::hint::black_box(stream.report(&problems).unwrap());
        });
        let serialized = best_ns(iters, || {
            let report = stream.report(&problems).unwrap();
            std::hint::black_box(serde_json::to_string(&report).unwrap());
        });
        let cold = best_ns(iters, || {
            std::hint::black_box(
                batch
                    .analyze_records(std::slice::from_ref(&record), &problems)
                    .unwrap()
                    .summary
                    .exams,
            );
        });
        let warm_analyzer = BatchAnalyzer::new(config);
        warm_analyzer
            .analyze_records(std::slice::from_ref(&record), &problems)
            .unwrap();
        let warm = best_ns(iters, || {
            std::hint::black_box(
                warm_analyzer
                    .analyze_records(std::slice::from_ref(&record), &problems)
                    .unwrap()
                    .summary
                    .exams,
            );
        });

        println!(
            "analysis_read/{n}: streaming {} (+serialize {}) batch_cold {} batch_warm {} \
             — streaming {:.0}x faster than cold",
            human(streaming),
            human(serialized),
            human(cold),
            human(warm),
            cold as f64 / streaming.max(1) as f64
        );
        for (arm, ns) in [
            ("streaming", streaming),
            ("streaming+serialize", serialized),
            ("batch_cold", cold),
            ("batch_warm", warm),
        ] {
            export(&format!(
                "{{\"id\":\"analysis_read/{arm}/{n}\",\"min_ns\":{ns},\"elements\":{n}}}"
            ));
        }
    }
}
