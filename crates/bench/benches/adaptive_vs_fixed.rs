//! Ablation A3 (the §6 extension): adaptive max-information testing vs.
//! random selection at the same item budget — measurement error and
//! runtime.

use criterion::{criterion_group, criterion_main, Criterion};

use mine_adaptive::{AdaptiveTest, ItemPool, SelectionStrategy, StopRule};
use mine_bench::criterion_config;
use mine_simulator::{CohortSpec, ItemParams};
use rand::Rng;
use rand::SeedableRng;

fn pool(n: usize) -> ItemPool {
    (0..n)
        .map(|i| {
            (
                format!("item{i:03}").parse().unwrap(),
                ItemParams::new(1.4, (i as f64 / (n - 1) as f64) * 6.0 - 3.0, 0.0),
            )
        })
        .collect()
}

fn rmse(strategy_for: impl Fn(usize) -> SelectionStrategy, budget: usize) -> f64 {
    let pool = pool(80);
    let cohort = CohortSpec::new(60).seed(17).generate();
    let rule = StopRule {
        min_items: budget,
        max_items: budget,
        se_target: 0.0,
    };
    let mut sum_sq = 0.0;
    for (i, student) in cohort.iter().enumerate() {
        let mut test = AdaptiveTest::with_strategy(pool.clone(), rule, strategy_for(i));
        let mut rng = rand::rngs::StdRng::seed_from_u64(9000 + i as u64);
        while let Some((item, params)) = test.next_item() {
            let correct = rng.gen_bool(params.p_correct(student.ability));
            test.record(item, correct).unwrap();
        }
        sum_sq += (test.estimate().theta - student.ability).powi(2);
    }
    (sum_sq / cohort.len() as f64).sqrt()
}

fn bench(c: &mut Criterion) {
    println!("=== Adaptive (max-information) vs randomesque vs random selection ===");
    println!("budget  max-info RMSE  randomesque(5) RMSE  random RMSE");
    for budget in [6usize, 12, 24] {
        let adaptive = rmse(|_| SelectionStrategy::MaxInformation, budget);
        let randomesque = rmse(
            |i| SelectionStrategy::Randomesque {
                top_k: 5,
                seed: i as u64,
            },
            budget,
        );
        let random = rmse(|i| SelectionStrategy::Random { seed: i as u64 }, budget);
        println!("{budget:<7} {adaptive:<14.3} {randomesque:<20.3} {random:.3}");
    }

    c.bench_function("adaptive/sitting_12_items_max_info", |b| {
        let pool = pool(80);
        b.iter(|| {
            let mut test = AdaptiveTest::new(
                pool.clone(),
                StopRule {
                    min_items: 12,
                    max_items: 12,
                    se_target: 0.0,
                },
            );
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            while let Some((item, params)) = test.next_item() {
                let correct = rng.gen_bool(params.p_correct(0.5));
                test.record(item, correct).unwrap();
            }
            test.estimate().theta
        })
    });
    c.bench_function("adaptive/sitting_12_items_random", |b| {
        let pool = pool(80);
        b.iter(|| {
            let mut test = AdaptiveTest::with_strategy(
                pool.clone(),
                StopRule {
                    min_items: 12,
                    max_items: 12,
                    se_target: 0.0,
                },
                SelectionStrategy::Random { seed: 2 },
            );
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            while let Some((item, params)) = test.next_item() {
                let correct = rng.gen_bool(params.p_correct(0.5));
                test.record(item, correct).unwrap();
            }
            test.estimate().theta
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
