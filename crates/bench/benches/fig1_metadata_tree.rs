//! Experiment F1: regenerate Figure 1 — the MINE SCORM Meta-data tree
//! with its ten sections — and measure metadata XML binding.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use mine_bench::criterion_config;
use mine_core::{Answer, CognitionLevel, OptionKey, Subject};
use mine_metadata::{
    CognitionMeta, Contributor, DifficultyIndex, DiscriminationIndex, DisplayOrder, ExamMeta,
    IndividualTestMeta, MineMetadata, QuestionStyle, QuestionnaireMeta,
};

fn full_metadata() -> MineMetadata {
    MineMetadata::builder("mine-q2")
        .title("Question no. 2")
        .description("The §4.1.2 worked example")
        .language("en")
        .keyword("tcp")
        .keyword("assessment")
        .contributor(Contributor::new("author", "Jason C. Hung"))
        .cognition(
            CognitionMeta::new(CognitionLevel::Comprehension)
                .with_objective("explain flow control"),
        )
        .style(QuestionStyle::MultipleChoice)
        .questionnaire(QuestionnaireMeta {
            resumable: true,
            display_type: DisplayOrder::Fixed,
        })
        .individual_test(IndividualTestMeta {
            answer: Some(Answer::Choice(OptionKey::C)),
            subject: Subject::new("networking"),
            difficulty: Some(DifficultyIndex::new(0.635).unwrap()),
            discrimination: Some(DiscriminationIndex::new(0.55).unwrap()),
            distraction: vec!["option B lures the low group".into()],
        })
        .exam(ExamMeta {
            average_time: Some(Duration::from_secs(40)),
            test_time: Some(Duration::from_secs(3600)),
            instructional_sensitivity: Some(0.22),
        })
        .build()
}

fn bench(c: &mut Criterion) {
    let meta = full_metadata();
    println!("=== Figure 1 (the MINE SCORM Meta-data tree, ten sections) ===");
    print!("{}", meta.render_tree());
    println!("\nXML binding sample:");
    println!("{}", meta.to_xml_element().to_xml_string());

    c.bench_function("fig1/render_tree", |b| b.iter(|| meta.render_tree()));
    c.bench_function("fig1/to_xml", |b| b.iter(|| meta.to_xml_element()));
    let text = meta.to_xml_element().to_xml_string();
    c.bench_function("fig1/xml_round_trip", |b| {
        b.iter(|| {
            let parsed = mine_xml::parse_document(&text).unwrap();
            MineMetadata::from_xml_element(&parsed.root).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
