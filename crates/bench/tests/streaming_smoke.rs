//! Perf gate for the streaming engine: at 1000 sittings a report read
//! assembled from the engine's counters must beat a cold batch
//! recompute by a wide margin, and the per-finish update must stay
//! well under a millisecond at the tail. Thresholds are set far below
//! the measured numbers (see `BENCH_streaming_analysis.json`) so the
//! gate catches structural regressions — an accidental O(n) scan on
//! the read path, a rebuild inside `apply` — without flaking on noisy
//! machines. Set `MINE_SKIP_PERF_SMOKE=1` to skip.

use std::time::Instant;

use mine_analysis::{AnalysisConfig, BatchAnalyzer};
use mine_bench::{standard_problems, standard_record};
use mine_streamstats::ExamStream;

#[test]
fn streaming_read_beats_cold_batch_at_1000_sittings() {
    if std::env::var("MINE_SKIP_PERF_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0") {
        eprintln!("perf smoke skipped via MINE_SKIP_PERF_SMOKE");
        return;
    }
    const QUESTIONS: usize = 50;
    const CLASS: usize = 1000;
    let problems = standard_problems(QUESTIONS);
    let mut record = standard_record(QUESTIONS, CLASS, 4242);
    // Rows in `StudentId` order, like the server's finished store.
    record.students.sort_by(|a, b| a.student.cmp(&b.student));
    let config = AnalysisConfig::default();

    // Feed the engine the way the finish handler does, one sitting at
    // a time, keeping each call's latency for the tail bound.
    let mut stream = ExamStream::new(config);
    let mut update_ns: Vec<u64> = Vec::with_capacity(CLASS);
    for student in &record.students {
        let start = Instant::now();
        stream.apply(student);
        update_ns.push(start.elapsed().as_nanos() as u64);
    }
    update_ns.sort_unstable();
    let p99 = update_ns[(CLASS * 99).div_ceil(100) - 1];
    assert!(
        p99 < 2_000_000,
        "per-finish update p99 must stay under 2 ms (measured sub-50us in the committed \
         baseline), got {} ns",
        p99
    );

    // Best of three per arm, minimum as the least noisy estimator.
    let batch = BatchAnalyzer::new(config).with_cache_capacity(0);
    let mut streaming_ns = u128::MAX;
    let mut cold_ns = u128::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        let report = stream.report(&problems).expect("streamable workload");
        streaming_ns = streaming_ns.min(start.elapsed().as_nanos());
        assert_eq!(report.summary.exams, 1);

        let start = Instant::now();
        let report = batch
            .analyze_records(std::slice::from_ref(&record), &problems)
            .expect("batch analyzes");
        cold_ns = cold_ns.min(start.elapsed().as_nanos());
        assert_eq!(report.summary.exams, 1);
    }

    let speedup = cold_ns as f64 / streaming_ns as f64;
    assert!(
        speedup >= 25.0,
        "streaming read must be >=25x a cold batch recompute at {CLASS} sittings \
         (the committed baseline shows >=100x), got {speedup:.1}x \
         (streaming {:.1} us, cold {:.1} us)",
        streaming_ns as f64 / 1e3,
        cold_ns as f64 / 1e3,
    );
}
