//! Perf gate: the pooled analyzer must beat the frozen naive baseline
//! by a healthy margin on a realistic batch, or the hot-path work has
//! regressed. Set `MINE_SKIP_PERF_SMOKE=1` to skip (e.g. on heavily
//! loaded or instrumented machines where wall time means nothing).

use std::time::Instant;

use mine_analysis::{AnalysisConfig, BatchAnalyzer};
use mine_bench::baseline::analyze_naive;
use mine_bench::{standard_problems, standard_record};

#[test]
fn pooled_4t_beats_the_naive_baseline() {
    if std::env::var("MINE_SKIP_PERF_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0") {
        eprintln!("perf smoke skipped via MINE_SKIP_PERF_SMOKE");
        return;
    }
    // 100 sittings, scaled down from the full bench workload so the
    // smoke stays in test-suite territory (~a second, not a minute).
    const QUESTIONS: usize = 30;
    const CLASS: usize = 100;
    let problems = standard_problems(QUESTIONS);
    let records: Vec<_> = (0..100)
        .map(|i| standard_record(QUESTIONS, CLASS, 1000 + i as u64))
        .collect();
    let config = AnalysisConfig::default();
    let analyzer = BatchAnalyzer::new(config)
        .with_threads(4)
        .with_cache_capacity(0);

    // Best of three per arm: the minimum is the least noisy estimator
    // of the true cost on a machine that might be doing other things.
    let mut naive_ns = u128::MAX;
    let mut pooled_ns = u128::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        let questions: usize = records
            .iter()
            .map(|r| {
                analyze_naive(r, &problems, &config)
                    .unwrap()
                    .questions
                    .len()
            })
            .sum();
        naive_ns = naive_ns.min(start.elapsed().as_nanos());
        assert_eq!(questions, 100 * QUESTIONS);

        let start = Instant::now();
        let report = analyzer.analyze_records(&records, &problems).unwrap();
        pooled_ns = pooled_ns.min(start.elapsed().as_nanos());
        assert_eq!(report.summary.exams, 100);
    }

    let speedup = naive_ns as f64 / pooled_ns as f64;
    assert!(
        speedup >= 1.5,
        "pooled 4-thread batch must be >=1.5x the frozen naive baseline on 100 sittings, \
         got {speedup:.2}x (naive {:.1} ms, pooled {:.1} ms)",
        naive_ns as f64 / 1e6,
        pooled_ns as f64 / 1e6,
    );
    eprintln!(
        "perf smoke: pooled 4t is {speedup:.2}x the naive baseline \
         (naive {:.1} ms, pooled {:.1} ms)",
        naive_ns as f64 / 1e6,
        pooled_ns as f64 / 1e6,
    );
}
