//! The three-parameter-logistic (3PL) item response model.
//!
//! `P(correct | θ) = c + (1 − c) / (1 + e^(−a (θ − b)))`
//!
//! * `a` — discrimination: how sharply the probability rises around `b`,
//! * `b` — difficulty: the ability at which an un-guessable item is
//!   answered correctly half the time,
//! * `c` — pseudo-guessing floor: for an N-option multiple-choice item
//!   a blind guess succeeds with probability `1/N`.
//!
//! The paper's Item Difficulty Index (`P = R/N`, §3.3) is an *observed*
//! proportion; `b` is the latent difficulty that generates it. Higher
//! `b` → harder item → lower observed `P`.

use serde::{Deserialize, Serialize};

/// Parameters of one item under the 3PL model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ItemParams {
    /// Discrimination `a > 0`.
    pub a: f64,
    /// Difficulty `b` (same scale as ability, typically −3…3).
    pub b: f64,
    /// Guessing floor `c ∈ [0, 1)`.
    pub c: f64,
}

impl Default for ItemParams {
    /// A well-behaved item: `a = 1`, `b = 0`, no guessing.
    fn default() -> Self {
        Self {
            a: 1.0,
            b: 0.0,
            c: 0.0,
        }
    }
}

impl ItemParams {
    /// Creates parameters, clamping to legal ranges (`a ≥ 0.05`,
    /// `0 ≤ c < 1`).
    #[must_use]
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        Self {
            a: a.max(0.05),
            b,
            c: c.clamp(0.0, 0.999),
        }
    }

    /// Parameters for an `options`-way multiple-choice item with the
    /// guessing floor set to `1 / options`.
    #[must_use]
    pub fn multiple_choice(a: f64, b: f64, options: usize) -> Self {
        Self::new(a, b, 1.0 / options.max(1) as f64)
    }

    /// Probability a student of ability `theta` answers correctly.
    #[must_use]
    pub fn p_correct(&self, theta: f64) -> f64 {
        let logistic = 1.0 / (1.0 + (-self.a * (theta - self.b)).exp());
        self.c + (1.0 - self.c) * logistic
    }

    /// Fisher information of the item at ability `theta` (used by the
    /// adaptive-testing extension for max-information selection).
    #[must_use]
    pub fn information(&self, theta: f64) -> f64 {
        let p = self.p_correct(theta);
        let q = 1.0 - p;
        if p <= self.c || p >= 1.0 {
            return 0.0;
        }
        // Standard 3PL information formula.
        let num = self.a * self.a * q * (p - self.c).powi(2);
        let den = p * (1.0 - self.c).powi(2);
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_is_monotonic_in_ability() {
        let item = ItemParams::new(1.2, 0.5, 0.2);
        let mut last = 0.0;
        for i in -30..=30 {
            let theta = i as f64 / 10.0;
            let p = item.p_correct(theta);
            assert!(p >= last, "p must not decrease");
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn guessing_floor_bounds_probability_below() {
        let item = ItemParams::multiple_choice(1.0, 0.0, 4);
        assert!(item.p_correct(-10.0) >= 0.25 - 1e-9);
        assert!(item.p_correct(10.0) > 0.99);
    }

    #[test]
    fn at_difficulty_probability_is_midpoint() {
        let item = ItemParams::new(2.0, 1.5, 0.0);
        assert!((item.p_correct(1.5) - 0.5).abs() < 1e-12);
        let guessy = ItemParams::new(2.0, 1.5, 0.2);
        assert!((guessy.p_correct(1.5) - 0.6).abs() < 1e-12, "c + (1-c)/2");
    }

    #[test]
    fn harder_items_are_less_likely_correct() {
        let easy = ItemParams::new(1.0, -1.0, 0.0);
        let hard = ItemParams::new(1.0, 1.0, 0.0);
        for theta in [-1.0, 0.0, 1.0] {
            assert!(easy.p_correct(theta) > hard.p_correct(theta));
        }
    }

    #[test]
    fn information_peaks_near_difficulty() {
        let item = ItemParams::new(1.5, 0.8, 0.0);
        let at_b = item.information(0.8);
        assert!(at_b > item.information(-2.0));
        assert!(at_b > item.information(3.5));
        assert!(at_b > 0.0);
    }

    #[test]
    fn higher_discrimination_gives_more_information_at_b() {
        let low = ItemParams::new(0.5, 0.0, 0.0);
        let high = ItemParams::new(2.0, 0.0, 0.0);
        assert!(high.information(0.0) > low.information(0.0));
    }

    #[test]
    fn new_clamps_degenerate_inputs() {
        let item = ItemParams::new(-3.0, 0.0, 1.5);
        assert!(item.a > 0.0);
        assert!(item.c < 1.0);
    }

    #[test]
    fn information_is_zero_in_degenerate_tails() {
        let item = ItemParams::new(1.0, 0.0, 0.3);
        assert!(item.information(-50.0).abs() < 1e-9);
    }
}
