//! Cohort generation: seeded populations of simulated students.

use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use mine_core::StudentId;

/// One simulated student.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStudent {
    /// Identifier (`s000`, `s001`, …).
    pub id: StudentId,
    /// Latent ability θ (standard-normal scale).
    pub ability: f64,
    /// Pacing multiplier (1.0 = average; higher = slower).
    pub pace: f64,
    /// Probability of a careless slip on an item the student knows.
    pub slip: f64,
}

/// Specification of a cohort to generate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CohortSpec {
    /// Number of students.
    pub size: usize,
    /// Mean of the ability distribution.
    pub ability_mean: f64,
    /// Standard deviation of the ability distribution.
    pub ability_sd: f64,
    /// Mean slip probability.
    pub slip_mean: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CohortSpec {
    /// A standard cohort: abilities ~ N(0, 1), 2 % slips.
    #[must_use]
    pub fn new(size: usize) -> Self {
        Self {
            size,
            ability_mean: 0.0,
            ability_sd: 1.0,
            slip_mean: 0.02,
            seed: 0,
        }
    }

    /// Builder-style seed setter.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style ability distribution setter.
    #[must_use]
    pub fn ability(mut self, mean: f64, sd: f64) -> Self {
        self.ability_mean = mean;
        self.ability_sd = sd.max(0.0);
        self
    }

    /// Generates the cohort deterministically from the seed.
    #[must_use]
    pub fn generate(&self) -> Vec<SimStudent> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        (0..self.size)
            .map(|i| {
                let ability = self.ability_mean + self.ability_sd * gaussian(&mut rng);
                SimStudent {
                    id: StudentId::new(format!("s{i:03}")).expect("generated id is valid"),
                    ability,
                    pace: (1.0 + 0.35 * gaussian(&mut rng)).clamp(0.4, 2.5),
                    slip: (self.slip_mean * (1.0 + 0.5 * gaussian(&mut rng))).clamp(0.0, 0.25),
                }
            })
            .collect()
    }

    /// Generates a cohort whose abilities were raised by `gain` — the
    /// "after teaching" population used for the Instructional
    /// Sensitivity Index (§3.4-III). Identities and idiosyncrasies
    /// (pace, slip) are preserved so the pre/post comparison isolates
    /// the instruction effect.
    #[must_use]
    pub fn generate_instructed(&self, gain: f64) -> Vec<SimStudent> {
        self.generate()
            .into_iter()
            .map(|mut student| {
                student.ability += gain;
                student
            })
            .collect()
    }
}

/// Box–Muller standard normal sample.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = CohortSpec::new(25).seed(99);
        assert_eq!(spec.generate(), spec.generate());
        assert_ne!(spec.generate(), CohortSpec::new(25).seed(100).generate());
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let cohort = CohortSpec::new(10).generate();
        assert_eq!(cohort.len(), 10);
        assert_eq!(cohort[0].id.as_str(), "s000");
        assert_eq!(cohort[9].id.as_str(), "s009");
    }

    #[test]
    fn ability_distribution_roughly_matches_spec() {
        let cohort = CohortSpec::new(4000).ability(0.5, 1.0).seed(1).generate();
        let mean: f64 = cohort.iter().map(|s| s.ability).sum::<f64>() / cohort.len() as f64;
        let var: f64 = cohort
            .iter()
            .map(|s| (s.ability - mean).powi(2))
            .sum::<f64>()
            / cohort.len() as f64;
        assert!((mean - 0.5).abs() < 0.08, "mean {mean}");
        assert!((var.sqrt() - 1.0).abs() < 0.08, "sd {}", var.sqrt());
    }

    #[test]
    fn pace_and_slip_are_clamped() {
        for student in CohortSpec::new(2000).seed(3).generate() {
            assert!((0.4..=2.5).contains(&student.pace));
            assert!((0.0..=0.25).contains(&student.slip));
        }
    }

    #[test]
    fn instructed_cohort_keeps_identities_and_raises_ability() {
        let spec = CohortSpec::new(30).seed(5);
        let before = spec.generate();
        let after = spec.generate_instructed(0.8);
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.id, a.id);
            assert_eq!(b.pace, a.pace);
            assert!((a.ability - b.ability - 0.8).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_size_cohort_is_empty() {
        assert!(CohortSpec::new(0).generate().is_empty());
    }
}
