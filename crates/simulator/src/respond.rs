//! Answer and timing generation for simulated students.

use std::time::Duration;

use rand::Rng;

use mine_core::{Answer, OptionKey};
use mine_itembank::{Problem, ProblemBody};

/// Relative attractiveness of each option when a student answers a
/// choice problem *incorrectly*.
///
/// Index `i` weights option `i`; the correct option's weight is ignored.
/// This is the knob that reproduces the paper's option-level phenomena:
/// a weight of zero gives Rule 1's "option's allure is low"; equal
/// weights across all options model Rule 3/4's "lack concept" flat
/// guessing.
#[derive(Debug, Clone, PartialEq)]
pub struct DistractorWeights(Vec<f64>);

impl DistractorWeights {
    /// Uniform attractiveness across `n` options.
    #[must_use]
    pub fn uniform(n: usize) -> Self {
        Self(vec![1.0; n])
    }

    /// Explicit weights (negative values are clamped to zero).
    #[must_use]
    pub fn new(weights: impl Into<Vec<f64>>) -> Self {
        let mut weights = weights.into();
        for w in &mut weights {
            if !w.is_finite() || *w < 0.0 {
                *w = 0.0;
            }
        }
        Self(weights)
    }

    /// The weight of option `index` (0 outside the configured range).
    #[must_use]
    pub fn weight(&self, index: usize) -> f64 {
        self.0.get(index).copied().unwrap_or(0.0)
    }

    /// Samples a wrong option, excluding `correct`. Falls back to the
    /// first non-correct option when all weights are zero.
    pub fn sample_wrong<R: Rng>(
        &self,
        rng: &mut R,
        option_count: usize,
        correct: OptionKey,
    ) -> OptionKey {
        let total: f64 = (0..option_count)
            .filter(|&i| i != correct.index())
            .map(|i| self.weight(i))
            .sum();
        if total <= 0.0 {
            let fallback = (0..option_count)
                .find(|&i| i != correct.index())
                .unwrap_or(0);
            return OptionKey::from_index(fallback).expect("option_count <= 26");
        }
        let mut draw = rng.gen_range(0.0..total);
        for i in (0..option_count).filter(|&i| i != correct.index()) {
            draw -= self.weight(i);
            if draw <= 0.0 {
                return OptionKey::from_index(i).expect("option_count <= 26");
            }
        }
        OptionKey::from_index(option_count - 1).expect("option_count <= 26")
    }
}

/// How long simulated students take per question.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacingModel {
    /// Mean seconds an average-paced student spends per question.
    pub base_seconds: f64,
    /// Multiplicative jitter half-width (0.3 → ±30 %).
    pub jitter: f64,
}

impl Default for PacingModel {
    /// 45 s per question ± 40 %.
    fn default() -> Self {
        Self {
            base_seconds: 45.0,
            jitter: 0.4,
        }
    }
}

impl PacingModel {
    /// Samples the time a student with pacing multiplier `pace` spends.
    pub fn sample<R: Rng>(&self, rng: &mut R, pace: f64) -> Duration {
        let factor = 1.0 + self.jitter * (rng.gen_range(-1.0..1.0));
        let secs = (self.base_seconds * pace * factor).max(1.0);
        Duration::from_secs_f64(secs)
    }
}

/// Generates an answer for `problem`: correct when `is_correct`, a
/// style-appropriate wrong answer otherwise.
pub fn generate_answer<R: Rng>(
    rng: &mut R,
    problem: &Problem,
    is_correct: bool,
    distractors: Option<&DistractorWeights>,
) -> Answer {
    match problem.body() {
        ProblemBody::MultipleChoice {
            options, correct, ..
        } => {
            if is_correct {
                Answer::Choice(*correct)
            } else {
                let uniform = DistractorWeights::uniform(options.len());
                let weights = distractors.unwrap_or(&uniform);
                Answer::Choice(weights.sample_wrong(rng, options.len(), *correct))
            }
        }
        ProblemBody::TrueFalse { correct, .. } => {
            Answer::TrueFalse(if is_correct { *correct } else { !correct })
        }
        ProblemBody::Completion { blanks, .. } => {
            if is_correct {
                Answer::Completion(blanks.clone())
            } else {
                // Botch a random subset of blanks (at least one).
                let mut filled = blanks.clone();
                let victim = rng.gen_range(0..filled.len());
                for (i, blank) in filled.iter_mut().enumerate() {
                    if i == victim || rng.gen_bool(0.3) {
                        *blank = format!("not-{blank}");
                    }
                }
                Answer::Completion(filled)
            }
        }
        ProblemBody::Match(pairs) => {
            if is_correct {
                Answer::Match(pairs.correct.clone())
            } else {
                // Swap two pairings (or point one somewhere wrong for
                // single-pair problems).
                let mut chosen = pairs.correct.clone();
                if chosen.len() >= 2 {
                    let i = rng.gen_range(0..chosen.len());
                    let mut j = rng.gen_range(0..chosen.len());
                    if i == j {
                        j = (j + 1) % chosen.len();
                    }
                    chosen.swap(i, j);
                } else if !chosen.is_empty() {
                    chosen[0] = (chosen[0] + 1) % pairs.right.len().max(1);
                }
                Answer::Match(chosen)
            }
        }
        ProblemBody::Essay { keywords, .. } => {
            if is_correct && !keywords.is_empty() {
                Answer::Text(format!("The key ideas are {}.", keywords.join(" and ")))
            } else if is_correct {
                Answer::Text("A thorough, correct discussion.".into())
            } else {
                Answer::Text("An off-topic ramble.".into())
            }
        }
        ProblemBody::Questionnaire { options, .. } => {
            let index = rng.gen_range(0..options.len());
            Answer::Choice(options[index].key)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_itembank::{ChoiceOption, MatchPairs};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    fn choice_problem() -> Problem {
        Problem::multiple_choice(
            "q",
            "?",
            OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("{k}"))),
            OptionKey::B,
        )
        .unwrap()
    }

    #[test]
    fn correct_answers_grade_correct_for_every_style() {
        let problems = vec![
            choice_problem(),
            Problem::true_false("t", "?", false).unwrap(),
            Problem::completion("c", "?", vec!["x".to_string(), "y".to_string()]).unwrap(),
            Problem::match_items(
                "m",
                MatchPairs {
                    left: vec!["a".into(), "b".into()],
                    right: vec!["1".into(), "2".into()],
                    correct: vec![1, 0],
                },
            )
            .unwrap(),
            Problem::new(
                "e",
                ProblemBody::Essay {
                    question: "?".into(),
                    hint: String::new(),
                    keywords: vec!["alpha".into()],
                },
            )
            .unwrap(),
        ];
        let mut rng = rng();
        for problem in &problems {
            let answer = generate_answer(&mut rng, problem, true, None);
            let grade = problem.grade(&answer).unwrap();
            assert!(grade.is_correct, "style {:?}", problem.style());
        }
    }

    #[test]
    fn wrong_answers_grade_incorrect_for_every_gradable_style() {
        let problems = vec![
            choice_problem(),
            Problem::true_false("t", "?", false).unwrap(),
            Problem::completion("c", "?", vec!["x".to_string()]).unwrap(),
        ];
        let mut rng = rng();
        for problem in &problems {
            for _ in 0..20 {
                let answer = generate_answer(&mut rng, problem, false, None);
                let grade = problem.grade(&answer).unwrap();
                assert!(!grade.is_correct, "style {:?}", problem.style());
            }
        }
    }

    #[test]
    fn wrong_match_answers_lose_points() {
        let problem = Problem::match_items(
            "m",
            MatchPairs {
                left: vec!["a".into(), "b".into(), "c".into()],
                right: vec!["1".into(), "2".into(), "3".into()],
                correct: vec![2, 0, 1],
            },
        )
        .unwrap();
        let mut rng = rng();
        for _ in 0..20 {
            let answer = generate_answer(&mut rng, &problem, false, None);
            let grade = problem.grade(&answer).unwrap();
            assert!(!grade.is_correct);
            assert!(grade.points_awarded < grade.points_possible);
        }
    }

    #[test]
    fn zero_weight_distractor_is_never_chosen() {
        let problem = choice_problem();
        // Option C (index 2) has zero allure — Rule 1's scenario.
        let weights = DistractorWeights::new(vec![1.0, 1.0, 0.0, 1.0]);
        let mut rng = rng();
        for _ in 0..200 {
            let answer = generate_answer(&mut rng, &problem, false, Some(&weights));
            assert_ne!(answer.chosen_option(), Some(OptionKey::C));
            assert_ne!(answer.chosen_option(), Some(OptionKey::B), "never correct");
        }
    }

    #[test]
    fn skewed_weights_shift_the_distribution() {
        let problem = choice_problem();
        let weights = DistractorWeights::new(vec![10.0, 0.0, 1.0, 1.0]);
        let mut rng = rng();
        let mut count_a = 0;
        const TRIALS: usize = 600;
        for _ in 0..TRIALS {
            if generate_answer(&mut rng, &problem, false, Some(&weights)).chosen_option()
                == Some(OptionKey::A)
            {
                count_a += 1;
            }
        }
        assert!(
            count_a > TRIALS / 2,
            "A should dominate with 10x weight, got {count_a}/{TRIALS}"
        );
    }

    #[test]
    fn all_zero_weights_fall_back_deterministically() {
        let weights = DistractorWeights::new(vec![0.0; 4]);
        let mut rng = rng();
        let key = weights.sample_wrong(&mut rng, 4, OptionKey::A);
        assert_eq!(key, OptionKey::B);
    }

    #[test]
    fn pacing_respects_pace_multiplier() {
        let pacing = PacingModel {
            base_seconds: 60.0,
            jitter: 0.0,
        };
        let mut rng = rng();
        assert_eq!(pacing.sample(&mut rng, 1.0), Duration::from_secs(60));
        assert_eq!(pacing.sample(&mut rng, 0.5), Duration::from_secs(30));
        assert_eq!(pacing.sample(&mut rng, 2.0), Duration::from_secs(120));
    }

    #[test]
    fn pacing_jitter_stays_in_band_and_above_one_second() {
        let pacing = PacingModel {
            base_seconds: 10.0,
            jitter: 0.5,
        };
        let mut rng = rng();
        for _ in 0..200 {
            let t = pacing.sample(&mut rng, 1.0).as_secs_f64();
            assert!((5.0..=15.0).contains(&t), "t = {t}");
        }
        let tiny = PacingModel {
            base_seconds: 0.1,
            jitter: 0.0,
        };
        assert_eq!(tiny.sample(&mut rng, 1.0), Duration::from_secs(1));
    }

    #[test]
    fn questionnaire_answers_are_valid_options() {
        let problem = Problem::questionnaire(
            "s",
            "rate",
            OptionKey::first(3).map(|k| ChoiceOption::new(k, format!("{k}"))),
        )
        .unwrap();
        let mut rng = rng();
        for _ in 0..50 {
            let answer = generate_answer(&mut rng, &problem, true, None);
            assert!(problem.grade(&answer).is_ok());
        }
    }
}
