//! Synthetic student cohorts — the evaluation substrate.
//!
//! The paper evaluates its analysis model on real classroom data (e.g.
//! the 44-student class of §4.1.2). That data is not available, so this
//! crate simulates it: seeded cohorts of students with latent abilities,
//! a three-parameter-logistic (IRT) correctness model, a per-distractor
//! attractiveness model (to reproduce the option-level phenomena Rules
//! 1–4 detect), and a pacing model for the time-based figures (§4.2.1).
//!
//! Crucially the simulator drives the *real* delivery path: every
//! simulated student runs an [`mine_delivery::ExamSession`], so the
//! records the analysis crate consumes went through the same grading,
//! ordering, and timing code a live deployment would use.
//!
//! # Examples
//!
//! ```
//! use mine_itembank::{Exam, Problem};
//! use mine_simulator::{CohortSpec, Simulation};
//!
//! let problems = vec![Problem::true_false("q1", "x", true)?];
//! let exam = Exam::builder("quiz")?.entry("q1".parse()?).build()?;
//! let record = Simulation::new(exam, problems)
//!     .cohort(CohortSpec::new(40).seed(7))
//!     .run()?;
//! assert_eq!(record.class_size(), 40);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cohort;
pub mod irt;
pub mod respond;
pub mod simulation;

pub use cohort::{CohortSpec, SimStudent};
pub use irt::ItemParams;
pub use respond::{DistractorWeights, PacingModel};
pub use simulation::{Simulation, SimulationError};
