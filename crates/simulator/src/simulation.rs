//! The simulation orchestrator: cohorts sit real delivery sessions.

use std::collections::BTreeMap;
use std::error::Error as StdError;
use std::fmt;

use rand::Rng;
use rand::SeedableRng;
use rayon::prelude::*;

use mine_core::{Answer, ExamRecord, OptionKey, ProblemId};
use mine_delivery::{DeliveryError, DeliveryOptions, ExamSession, MonitorHub, SnapshotPolicy};
use mine_itembank::{Exam, Problem, ProblemBody};

use crate::cohort::{CohortSpec, SimStudent};
use crate::irt::ItemParams;
use crate::respond::{generate_answer, DistractorWeights, PacingModel};

/// Errors raised while running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimulationError {
    /// The underlying delivery session failed.
    Delivery(DeliveryError),
    /// No students were configured.
    EmptyCohort,
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::Delivery(err) => write!(f, "delivery failed: {err}"),
            SimulationError::EmptyCohort => write!(f, "simulation has no students"),
        }
    }
}

impl StdError for SimulationError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            SimulationError::Delivery(err) => Some(err),
            SimulationError::EmptyCohort => None,
        }
    }
}

impl From<DeliveryError> for SimulationError {
    fn from(err: DeliveryError) -> Self {
        SimulationError::Delivery(err)
    }
}

/// A configurable classroom simulation (consuming builder).
#[derive(Debug, Clone)]
pub struct Simulation {
    exam: Exam,
    problems: Vec<Problem>,
    students: Vec<SimStudent>,
    item_params: BTreeMap<ProblemId, ItemParams>,
    distractors: BTreeMap<ProblemId, DistractorWeights>,
    /// Ambiguous wording: with the given probability a student who
    /// *knows* the answer still picks this option (miskeyed or unclear
    /// questions — the Rule 2 pathology).
    ambiguity: BTreeMap<ProblemId, (OptionKey, f64)>,
    pacing: PacingModel,
    skip_rate: f64,
    seed: u64,
}

impl Simulation {
    /// Creates a simulation of one exam; add students with
    /// [`Simulation::cohort`] or [`Simulation::students`].
    #[must_use]
    pub fn new(exam: Exam, problems: Vec<Problem>) -> Self {
        Self {
            exam,
            problems,
            students: Vec::new(),
            item_params: BTreeMap::new(),
            distractors: BTreeMap::new(),
            ambiguity: BTreeMap::new(),
            pacing: PacingModel::default(),
            skip_rate: 0.0,
            seed: 0,
        }
    }

    /// Generates students from a cohort spec.
    #[must_use]
    pub fn cohort(mut self, spec: CohortSpec) -> Self {
        self.students = spec.generate();
        self.seed = spec.seed;
        self
    }

    /// Uses an explicit student list.
    #[must_use]
    pub fn students(mut self, students: Vec<SimStudent>) -> Self {
        self.students = students;
        self
    }

    /// Overrides the IRT parameters of one item.
    #[must_use]
    pub fn item_params(mut self, problem: ProblemId, params: ItemParams) -> Self {
        self.item_params.insert(problem, params);
        self
    }

    /// Overrides the distractor weights of one choice item.
    #[must_use]
    pub fn distractors(mut self, problem: ProblemId, weights: DistractorWeights) -> Self {
        self.distractors.insert(problem, weights);
        self
    }

    /// Marks a choice problem as ambiguously worded: with probability
    /// `rate`, a student who knows the material picks `lure` instead of
    /// the correct option. This manufactures the §4.1.2 Rule 2
    /// pathology ("the option meaning is not clear") in simulation.
    #[must_use]
    pub fn ambiguous(mut self, problem: ProblemId, lure: OptionKey, rate: f64) -> Self {
        self.ambiguity.insert(problem, (lure, rate.clamp(0.0, 1.0)));
        self
    }

    /// Sets the pacing model.
    #[must_use]
    pub fn pacing(mut self, pacing: PacingModel) -> Self {
        self.pacing = pacing;
        self
    }

    /// Probability a student skips any given question.
    #[must_use]
    pub fn skip_rate(mut self, rate: f64) -> Self {
        self.skip_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the RNG seed (also used for per-student shuffles).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Default IRT parameters for a problem without an override: the
    /// metadata Item Difficulty Index (when present) fixes `b` via the
    /// logistic inverse at the population mean, and the guessing floor
    /// follows the style.
    fn default_params(problem: &Problem) -> ItemParams {
        let guessing = match problem.body() {
            ProblemBody::MultipleChoice { options, .. } => 1.0 / options.len().max(1) as f64,
            ProblemBody::TrueFalse { .. } => 0.5,
            _ => 0.0,
        };
        let b = problem
            .metadata()
            .individual_test
            .as_ref()
            .and_then(|t| t.difficulty)
            .map(|p| {
                // Invert P = c + (1-c) σ(-b) at θ = 0 → b = ln((1-p̃)/p̃)
                // with p̃ the de-guessed probability.
                let p = p.value().clamp(0.02, 0.98);
                let de_guessed = ((p - guessing) / (1.0 - guessing)).clamp(0.02, 0.98);
                ((1.0 - de_guessed) / de_guessed).ln()
            })
            .unwrap_or(0.0);
        ItemParams::new(1.0, b, guessing)
    }

    /// Precomputes the per-problem IRT parameters and lookup table every
    /// student sitting shares.
    fn tables(
        &self,
    ) -> (
        BTreeMap<ProblemId, ItemParams>,
        BTreeMap<ProblemId, &Problem>,
    ) {
        let params = self
            .problems
            .iter()
            .map(|p| {
                let id = p.id().clone();
                let params = self
                    .item_params
                    .get(&id)
                    .copied()
                    .unwrap_or_else(|| Self::default_params(p));
                (id, params)
            })
            .collect();
        let by_id = self.problems.iter().map(|p| (p.id().clone(), p)).collect();
        (params, by_id)
    }

    /// Sits one student through the exam. All randomness derives from
    /// the student's `index` (never from shared state), so sittings are
    /// independent and can run in any order — or concurrently — and
    /// still produce identical records.
    fn simulate_student(
        &self,
        index: usize,
        student: &SimStudent,
        params: &BTreeMap<ProblemId, ItemParams>,
        by_id: &BTreeMap<ProblemId, &Problem>,
        hub: Option<&MonitorHub>,
    ) -> Result<mine_core::StudentRecord, SimulationError> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            self.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let mut session = ExamSession::start(
            &self.exam,
            self.problems.clone(),
            student.id.clone(),
            DeliveryOptions {
                seed: self.seed.wrapping_add(index as u64),
                resumable: true,
                time_accommodation: 1.0,
            },
        )?;
        let mut monitor = hub.map(|h| {
            h.monitor(
                session.id().clone(),
                student.id.clone(),
                SnapshotPolicy::default(),
            )
        });
        let order: Vec<ProblemId> = session.order().to_vec();
        for problem_id in &order {
            let problem = by_id[problem_id];
            let time = self.pacing.sample(&mut rng, student.pace);
            if self.skip_rate > 0.0 && rng.gen_bool(self.skip_rate) {
                match session.skip(time) {
                    Ok(()) | Err(DeliveryError::TimeExpired) => {}
                    Err(err) => return Err(err.into()),
                }
                continue;
            }
            let p_know = params[problem_id].p_correct(student.ability);
            let p_effective = p_know * (1.0 - student.slip);
            let is_correct = rng.gen_bool(p_effective.clamp(0.0, 1.0));
            let mut answer = generate_answer(
                &mut rng,
                problem,
                is_correct,
                self.distractors.get(problem_id),
            );
            // Ambiguous wording lures even knowing students away.
            if let Some(&(lure, rate)) = self.ambiguity.get(problem_id) {
                if is_correct && rate > 0.0 && rng.gen_bool(rate) {
                    if let Answer::Choice(_) = answer {
                        answer = Answer::Choice(lure);
                    }
                }
            }
            match session.answer(answer, time) {
                Ok(()) => {
                    if let Some(monitor) = monitor.as_mut() {
                        monitor.on_answer(session.elapsed());
                    }
                }
                // Out of time: remaining questions stay unanswered.
                Err(DeliveryError::TimeExpired) => break,
                Err(err) => return Err(err.into()),
            }
        }
        let record = session.finish()?;
        if let Some(monitor) = monitor.as_ref() {
            monitor.on_finish(record.attempted_count(), record.total_time);
        }
        Ok(record)
    }

    fn run_inner(&self, hub: Option<&MonitorHub>) -> Result<ExamRecord, SimulationError> {
        if self.students.is_empty() {
            return Err(SimulationError::EmptyCohort);
        }
        let (params, by_id) = self.tables();
        let mut records = Vec::with_capacity(self.students.len());
        for (index, student) in self.students.iter().enumerate() {
            records.push(self.simulate_student(index, student, &params, &by_id, hub)?);
        }
        Ok(ExamRecord::new(self.exam.id().clone(), records))
    }

    /// Runs the simulation, producing the class's [`ExamRecord`].
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::EmptyCohort`] without students, or a
    /// wrapped delivery error.
    pub fn run(&self) -> Result<ExamRecord, SimulationError> {
        self.run_inner(None)
    }

    /// Runs the simulation with students sitting concurrently.
    ///
    /// Each student's randomness is derived from their cohort index, so
    /// the record is identical to [`Simulation::run`]'s — only
    /// wall-clock time changes. `threads` of `0` auto-detects.
    /// Monitoring is not available on this path; use
    /// [`Simulation::run_monitored`] when proctor events matter.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_parallel(&self, threads: usize) -> Result<ExamRecord, SimulationError> {
        if self.students.is_empty() {
            return Err(SimulationError::EmptyCohort);
        }
        let (params, by_id) = self.tables();
        let tasks: Vec<(usize, &SimStudent)> = self.students.iter().enumerate().collect();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let records = pool
            .install(|| {
                tasks
                    .par_iter()
                    .map(|&(index, student)| {
                        self.simulate_student(index, student, &params, &by_id, None)
                    })
                    .collect::<Vec<Result<mine_core::StudentRecord, SimulationError>>>()
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ExamRecord::new(self.exam.id().clone(), records))
    }

    /// Runs with every session attached to a [`MonitorHub`] so proctor
    /// events (snapshots, finishes) are observable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_monitored(&self, hub: &MonitorHub) -> Result<ExamRecord, SimulationError> {
        self.run_inner(Some(hub))
    }

    /// Runs the pre-instruction and post-instruction sittings used for
    /// the Instructional Sensitivity Index (§3.4-III): the same cohort
    /// sits the exam before teaching and again after its abilities rose
    /// by `gain`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_pre_post(
        &self,
        spec: CohortSpec,
        gain: f64,
    ) -> Result<(ExamRecord, ExamRecord), SimulationError> {
        let mut pre_sim = self.clone();
        pre_sim.students = spec.generate();
        let mut post_sim = self.clone();
        post_sim.students = spec.generate_instructed(gain);
        // Different response noise between the sittings.
        post_sim.seed = self.seed.wrapping_add(0x5eed);
        Ok((pre_sim.run()?, post_sim.run()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::OptionKey;
    use mine_delivery::MonitorEvent;
    use mine_itembank::ChoiceOption;

    fn problems() -> Vec<Problem> {
        (0..6)
            .map(|i| {
                Problem::multiple_choice(
                    format!("q{i}"),
                    format!("Question {i}"),
                    OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("{k}"))),
                    OptionKey::A,
                )
                .unwrap()
            })
            .collect()
    }

    fn exam() -> Exam {
        let mut builder = Exam::builder("sim-exam").unwrap().title("Sim");
        for i in 0..6 {
            builder = builder.entry(format!("q{i}").parse().unwrap());
        }
        builder.build().unwrap()
    }

    fn base() -> Simulation {
        Simulation::new(exam(), problems()).cohort(CohortSpec::new(44).seed(7))
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = base().run().unwrap();
        let b = base().run().unwrap();
        assert_eq!(a, b);
        let c = base().seed(8).run().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_run_matches_sequential_exactly() {
        let sequential = base().run().unwrap();
        for threads in [0usize, 1, 2, 4] {
            let parallel = base().run_parallel(threads).unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn record_is_consistent_and_covers_cohort() {
        let record = base().run().unwrap();
        assert_eq!(record.class_size(), 44);
        record.validate().unwrap();
        assert_eq!(record.problems().len(), 6);
    }

    #[test]
    fn empty_cohort_is_an_error() {
        let err = Simulation::new(exam(), problems()).run().unwrap_err();
        assert_eq!(err, SimulationError::EmptyCohort);
    }

    #[test]
    fn stronger_cohorts_score_higher() {
        let weak = base()
            .students(CohortSpec::new(60).ability(-1.0, 0.3).seed(1).generate())
            .run()
            .unwrap();
        let strong = base()
            .students(CohortSpec::new(60).ability(1.5, 0.3).seed(1).generate())
            .run()
            .unwrap();
        let mean = |r: &ExamRecord| {
            r.students.iter().map(|s| s.score()).sum::<f64>() / r.class_size() as f64
        };
        assert!(
            mean(&strong) > mean(&weak) + 0.5,
            "strong {} vs weak {}",
            mean(&strong),
            mean(&weak)
        );
    }

    #[test]
    fn harder_items_are_missed_more() {
        let easy_exam = base()
            .item_params(
                "q0".parse().unwrap(),
                ItemParams::multiple_choice(1.2, -2.0, 4),
            )
            .item_params(
                "q1".parse().unwrap(),
                ItemParams::multiple_choice(1.2, 2.0, 4),
            )
            .students(CohortSpec::new(300).seed(3).generate())
            .run()
            .unwrap();
        let rate = |pid: &str| {
            let id: ProblemId = pid.parse().unwrap();
            easy_exam
                .students
                .iter()
                .filter(|s| s.response_to(&id).is_some_and(|r| r.is_correct))
                .count() as f64
                / easy_exam.class_size() as f64
        };
        assert!(
            rate("q0") > rate("q1") + 0.2,
            "{} vs {}",
            rate("q0"),
            rate("q1")
        );
    }

    #[test]
    fn skip_rate_produces_skips() {
        let record = base().skip_rate(0.5).run().unwrap();
        let skipped: usize = record
            .students
            .iter()
            .map(|s| s.responses.len() - s.attempted_count())
            .sum();
        assert!(skipped > 0);
    }

    #[test]
    fn time_limit_truncates_slow_students() {
        let mut exam = exam();
        exam.meta_mut().test_time = Some(std::time::Duration::from_secs(60));
        let record = Simulation::new(exam, problems())
            .cohort(CohortSpec::new(30).seed(2))
            .run()
            .unwrap();
        // With 45s/question and a 60s limit, nobody finishes all 6.
        assert!(record.students.iter().all(|s| s.attempted_count() < 6));
        // But records still cover all problems (as skips).
        record.validate().unwrap();
    }

    #[test]
    fn monitored_run_emits_events() {
        let hub = MonitorHub::new();
        let record = base()
            .students(CohortSpec::new(5).seed(4).generate())
            .run_monitored(&hub)
            .unwrap();
        assert_eq!(record.class_size(), 5);
        let events = hub.drain();
        let starts = events
            .iter()
            .filter(|e| matches!(e, MonitorEvent::SessionStarted { .. }))
            .count();
        let finishes = events
            .iter()
            .filter(|e| matches!(e, MonitorEvent::SessionFinished { .. }))
            .count();
        let snapshots = events
            .iter()
            .filter(|e| matches!(e, MonitorEvent::Snapshot { .. }))
            .count();
        assert_eq!(starts, 5);
        assert_eq!(finishes, 5);
        assert!(snapshots > 0, "default policy captures every 3 answers");
    }

    #[test]
    fn pre_post_shows_instruction_gain() {
        let (pre, post) = base()
            .run_pre_post(CohortSpec::new(80).seed(11), 1.2)
            .unwrap();
        let mean = |r: &ExamRecord| {
            r.students.iter().map(|s| s.score()).sum::<f64>() / r.class_size() as f64
        };
        assert!(
            mean(&post) > mean(&pre),
            "post {} should beat pre {}",
            mean(&post),
            mean(&pre)
        );
    }

    #[test]
    fn ambiguous_items_lure_knowing_students() {
        // q0 is easy (everyone knows it) but half the knowers are lured
        // to option C. The wrong answers should pile up on C, and even
        // strong students get it wrong — the Rule 2 signature.
        let record = base()
            .students(CohortSpec::new(300).ability(2.0, 0.2).seed(6).generate())
            .item_params(
                "q0".parse().unwrap(),
                ItemParams::multiple_choice(1.5, -3.0, 4),
            )
            .ambiguous("q0".parse().unwrap(), OptionKey::C, 0.5)
            .run()
            .unwrap();
        let q0: ProblemId = "q0".parse().unwrap();
        let mut c_count = 0usize;
        let mut wrong = 0usize;
        for student in &record.students {
            let response = student.response_to(&q0).unwrap();
            if !response.is_correct {
                wrong += 1;
                if response.answer.chosen_option() == Some(OptionKey::C) {
                    c_count += 1;
                }
            }
        }
        assert!(wrong > 100, "about half should be lured: {wrong}");
        // Nearly all wrong answers are the lure (strong cohort rarely
        // errs organically).
        assert!(
            c_count * 10 >= wrong * 9,
            "lure dominates wrong answers: {c_count}/{wrong}"
        );
    }

    #[test]
    fn ambiguity_triggers_rule_2_downstream() {
        // End-to-end: the lured item should be flagged by Rule 2 when
        // analyzed (wrong option C attracts the high group).
        // An easy item with a strong lure inside a LONG exam: the exam
        // must be long enough that being lured on this one item does not
        // knock a strong student out of the top quartile (otherwise the
        // lured-but-strong students vanish from the high group and the
        // signal inverts).
        let mut problems = problems();
        for i in 6..24 {
            problems.push(
                Problem::multiple_choice(
                    format!("q{i}"),
                    format!("Filler {i}"),
                    OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("{k}"))),
                    OptionKey::A,
                )
                .unwrap(),
            );
        }
        // The probe item is piloted UNSCORED (points 0) — standard
        // psychometric practice — so group membership is independent of
        // it and the option-preference comparison is unconfounded.
        let mut builder = Exam::builder("long").unwrap();
        for i in 0..24 {
            let entry = mine_itembank::ExamEntry::new(format!("q{i}").parse().unwrap());
            builder = builder.entry_with(if i == 1 { entry.worth(0.0) } else { entry });
        }
        let record = Simulation::new(builder.build().unwrap(), problems)
            .students(CohortSpec::new(400).ability(0.0, 1.5).seed(9).generate())
            // b sits near the low group's ability so the knowledge gap
            // (and hence the lure-exposure gap) between groups is widest.
            .item_params(
                "q1".parse().unwrap(),
                ItemParams::multiple_choice(1.5, -1.5, 4),
            )
            .ambiguous("q1".parse().unwrap(), OptionKey::C, 0.7)
            .run()
            .unwrap();
        // Count high-vs-low preference for option C manually using the
        // top/bottom quartiles by score.
        let mut ranked: Vec<&mine_core::StudentRecord> = record.students.iter().collect();
        ranked.sort_by(|a, b| b.score().partial_cmp(&a.score()).unwrap());
        let q1: ProblemId = "q1".parse().unwrap();
        let count_c = |group: &[&mine_core::StudentRecord]| {
            group
                .iter()
                .filter(|s| {
                    s.response_to(&q1).and_then(|r| r.answer.chosen_option()) == Some(OptionKey::C)
                })
                .count()
        };
        let high_c = count_c(&ranked[..100]);
        let low_c = count_c(&ranked[300..]);
        assert!(
            high_c > low_c,
            "ambiguity lures the high group more: {high_c} vs {low_c}"
        );
    }

    #[test]
    fn difficulty_metadata_drives_default_params() {
        let mut hard = problems();
        {
            use mine_metadata::{DifficultyIndex, IndividualTestMeta};
            let test = hard[0]
                .metadata_mut()
                .individual_test
                .get_or_insert_with(IndividualTestMeta::default);
            test.difficulty = Some(DifficultyIndex::new(0.3).unwrap());
        }
        let params = Simulation::default_params(&hard[0]);
        assert!(
            params.b > 0.0,
            "P=0.3 is hard → positive b, got {}",
            params.b
        );
        let easy_params = Simulation::default_params(&problems()[0]);
        assert_eq!(easy_params.b, 0.0);
    }
}
