//! Presentation templates with positioned content (§5.3).
//!
//! "We can put a picture in a problem, it is allowed to set the picture's
//! position (x axis; y axis). Besides, we can set the question
//! description and question selection items … we set the presentation
//! style by moving each item." Templates are reusable: an instructor can
//! "add a new template in the exam" or "delete an existed template".

use serde::{Deserialize, Serialize};

use mine_core::TemplateId;

/// Reference from a problem to the template that lays it out.
pub type TemplateRef = TemplateId;

/// A 2-D position on the presentation canvas, in layout units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Position {
    /// Horizontal coordinate.
    pub x: u32,
    /// Vertical coordinate.
    pub y: u32,
}

impl Position {
    /// Creates a position.
    #[must_use]
    pub fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }
}

/// What a layout slot displays.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotContent {
    /// The question description text.
    QuestionText,
    /// The list of selection items (options).
    OptionList,
    /// An embedded picture, referenced by resource path.
    Picture {
        /// Package-relative path of the image resource.
        resource: String,
    },
    /// Free caption text.
    Caption(String),
}

/// One positioned slot of a template.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutSlot {
    /// What the slot shows.
    pub content: SlotContent,
    /// Where the slot sits.
    pub position: Position,
    /// Optional fixed width.
    pub width: Option<u32>,
    /// Optional fixed height.
    pub height: Option<u32>,
}

impl LayoutSlot {
    /// Creates an auto-sized slot.
    #[must_use]
    pub fn new(content: SlotContent, position: Position) -> Self {
        Self {
            content,
            position,
            width: None,
            height: None,
        }
    }
}

/// A reusable presentation template.
///
/// # Examples
///
/// ```
/// use mine_itembank::{LayoutSlot, Position, Template};
/// use mine_itembank::template::SlotContent;
///
/// let mut t = Template::new("two-col".parse()?, "Two columns");
/// t.add_slot(LayoutSlot::new(SlotContent::QuestionText, Position::new(0, 0)));
/// t.add_slot(LayoutSlot::new(SlotContent::OptionList, Position::new(40, 0)));
/// assert_eq!(t.slots().len(), 2);
/// # Ok::<(), mine_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    id: TemplateId,
    name: String,
    slots: Vec<LayoutSlot>,
}

impl Template {
    /// Creates an empty template.
    #[must_use]
    pub fn new(id: TemplateId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
            slots: Vec::new(),
        }
    }

    /// The template identifier.
    #[must_use]
    pub fn id(&self) -> &TemplateId {
        &self.id
    }

    /// The display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The slots in z-order.
    #[must_use]
    pub fn slots(&self) -> &[LayoutSlot] {
        &self.slots
    }

    /// Appends a slot, returning its index.
    pub fn add_slot(&mut self, slot: LayoutSlot) -> usize {
        self.slots.push(slot);
        self.slots.len() - 1
    }

    /// Removes a slot by index.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn remove_slot(&mut self, index: usize) -> LayoutSlot {
        self.slots.remove(index)
    }

    /// Moves a slot to a new position — the Figure 4 interaction
    /// ("we set the presentation style by moving each item").
    ///
    /// Returns `false` when `index` is out of bounds.
    pub fn move_slot(&mut self, index: usize, to: Position) -> bool {
        match self.slots.get_mut(index) {
            Some(slot) => {
                slot.position = to;
                true
            }
            None => false,
        }
    }

    /// Duplicates this template under a new identity — "he wanted to copy
    /// the problem structure for reuse".
    #[must_use]
    pub fn duplicate(&self, id: TemplateId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
            slots: self.slots.clone(),
        }
    }

    /// Renders a coarse text preview of the layout: slots sorted by
    /// `(y, x)`, one line each.
    #[must_use]
    pub fn render_preview(&self) -> String {
        let mut ordered: Vec<&LayoutSlot> = self.slots.iter().collect();
        ordered.sort_by_key(|s| (s.position.y, s.position.x));
        let mut out = format!("template {} ({})\n", self.name, self.id);
        for slot in ordered {
            let label = match &slot.content {
                SlotContent::QuestionText => "question".to_string(),
                SlotContent::OptionList => "options".to_string(),
                SlotContent::Picture { resource } => format!("picture:{resource}"),
                SlotContent::Caption(text) => format!("caption:{text}"),
            };
            out.push_str(&format!(
                "  ({:>4},{:>4}) {label}\n",
                slot.position.x, slot.position.y
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(s: &str) -> TemplateId {
        s.parse().unwrap()
    }

    fn sample() -> Template {
        let mut t = Template::new(tid("t1"), "Picture left");
        t.add_slot(LayoutSlot::new(
            SlotContent::Picture {
                resource: "images/diagram.png".into(),
            },
            Position::new(0, 10),
        ));
        t.add_slot(LayoutSlot::new(
            SlotContent::QuestionText,
            Position::new(50, 0),
        ));
        t.add_slot(LayoutSlot::new(
            SlotContent::OptionList,
            Position::new(50, 30),
        ));
        t
    }

    #[test]
    fn add_and_remove_slots() {
        let mut t = sample();
        assert_eq!(t.slots().len(), 3);
        let removed = t.remove_slot(0);
        assert!(matches!(removed.content, SlotContent::Picture { .. }));
        assert_eq!(t.slots().len(), 2);
    }

    #[test]
    fn move_slot_updates_position() {
        let mut t = sample();
        assert!(t.move_slot(1, Position::new(5, 5)));
        assert_eq!(t.slots()[1].position, Position::new(5, 5));
        assert!(!t.move_slot(9, Position::new(0, 0)));
    }

    #[test]
    fn duplicate_copies_structure_under_new_id() {
        let t = sample();
        let copy = t.duplicate(tid("t2"), "Copy of picture left");
        assert_eq!(copy.id().as_str(), "t2");
        assert_eq!(copy.slots(), t.slots());
        assert_ne!(copy.id(), t.id());
    }

    #[test]
    fn preview_sorts_by_reading_order() {
        let preview = sample().render_preview();
        let q = preview.find("question").unwrap();
        let p = preview.find("picture").unwrap();
        let o = preview.find("options").unwrap();
        // question at y=0 comes before picture at y=10 before options y=30
        assert!(q < p && p < o, "{preview}");
    }

    #[test]
    fn serde_round_trip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: Template = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
