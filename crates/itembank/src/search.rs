//! Problem search (§5): "they can search similar or specific subject or
//! related problems from problem & exam database".
//!
//! [`SearchIndex`] keeps an inverted index over problem text (stem,
//! title, keywords, subject) plus attribute postings for subject,
//! cognition level, and question style. [`Query`] combines free-text
//! terms with attribute filters; hits are ranked by matched-term count.

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use mine_core::{CognitionLevel, ProblemId, Subject};
use mine_metadata::QuestionStyle;

use crate::problem::Problem;

/// Splits text into lowercase alphanumeric tokens.
fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
}

/// A ranked search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// The matching problem.
    pub problem: ProblemId,
    /// Number of query terms the problem matched (≥ 1).
    pub score: usize,
}

/// A compiled search query.
///
/// Build with [`Query::builder`]. An empty query matches everything.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    terms: Vec<String>,
    subject: Option<Subject>,
    cognition: Option<CognitionLevel>,
    style: Option<QuestionStyle>,
}

impl Query {
    /// Starts building a query.
    #[must_use]
    pub fn builder() -> QueryBuilder {
        QueryBuilder {
            query: Query::default(),
        }
    }

    /// Convenience: a pure free-text query.
    #[must_use]
    pub fn text(text: &str) -> Self {
        Query {
            terms: tokenize(text).collect(),
            ..Query::default()
        }
    }
}

/// Builder for [`Query`].
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    query: Query,
}

impl QueryBuilder {
    /// Adds free-text terms (tokenized).
    #[must_use]
    pub fn text(mut self, text: &str) -> Self {
        self.query.terms.extend(tokenize(text));
        self
    }

    /// Filters to a subject (exact, case-insensitive).
    #[must_use]
    pub fn subject(mut self, subject: impl Into<Subject>) -> Self {
        self.query.subject = Some(subject.into());
        self
    }

    /// Filters to a cognition level.
    #[must_use]
    pub fn cognition(mut self, level: CognitionLevel) -> Self {
        self.query.cognition = Some(level);
        self
    }

    /// Filters to a question style.
    #[must_use]
    pub fn style(mut self, style: QuestionStyle) -> Self {
        self.query.style = Some(style);
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> Query {
        self.query
    }
}

/// Per-problem attribute record kept alongside the inverted index.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Attributes {
    subject: String,
    cognition: Option<CognitionLevel>,
    style: QuestionStyle,
}

/// The search index over a set of problems.
///
/// The index is rebuildable from the repository at any time; it is kept
/// incrementally by [`crate::Repository`].
///
/// # Examples
///
/// ```
/// use mine_core::OptionKey;
/// use mine_itembank::{ChoiceOption, Problem, Query, SearchIndex};
///
/// let mut index = SearchIndex::new();
/// let q = Problem::true_false("q1", "TCP uses three-way handshake.", true)?
///     .with_subject("tcp");
/// index.insert(&q);
/// let hits = index.search(&Query::text("handshake"));
/// assert_eq!(hits.len(), 1);
/// # Ok::<(), mine_itembank::BankError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SearchIndex {
    /// term → set of problems containing it.
    postings: HashMap<String, HashSet<ProblemId>>,
    /// problem → attributes for filtering.
    attributes: BTreeMap<ProblemId, Attributes>,
    /// problem → its indexed terms (for removal).
    terms_of: HashMap<ProblemId, Vec<String>>,
}

impl SearchIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed problems.
    #[must_use]
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Indexes (or re-indexes) a problem.
    pub fn insert(&mut self, problem: &Problem) {
        self.remove(problem.id());
        let id = problem.id().clone();
        let mut text = String::new();
        text.push_str(problem.body().stem());
        text.push(' ');
        text.push_str(&problem.metadata().general.title);
        text.push(' ');
        text.push_str(&problem.metadata().general.description);
        for keyword in &problem.metadata().general.keywords {
            text.push(' ');
            text.push_str(keyword);
        }
        text.push(' ');
        text.push_str(problem.subject().as_str());
        for option in problem.body().options() {
            text.push(' ');
            text.push_str(&option.text);
        }

        let mut terms: Vec<String> = tokenize(&text).collect();
        terms.sort();
        terms.dedup();
        for term in &terms {
            self.postings
                .entry(term.clone())
                .or_default()
                .insert(id.clone());
        }
        self.terms_of.insert(id.clone(), terms);
        self.attributes.insert(
            id,
            Attributes {
                subject: problem.subject().as_str().to_lowercase(),
                cognition: problem.cognition_level(),
                style: problem.style(),
            },
        );
    }

    /// Removes a problem from the index; returns whether it was present.
    pub fn remove(&mut self, id: &ProblemId) -> bool {
        let Some(terms) = self.terms_of.remove(id) else {
            return false;
        };
        for term in terms {
            if let Some(set) = self.postings.get_mut(&term) {
                set.remove(id);
                if set.is_empty() {
                    self.postings.remove(&term);
                }
            }
        }
        self.attributes.remove(id);
        true
    }

    /// Runs a query, returning hits ranked by score (descending), ties
    /// broken by problem id for determinism.
    #[must_use]
    pub fn search(&self, query: &Query) -> Vec<SearchHit> {
        let mut scores: BTreeMap<&ProblemId, usize> = BTreeMap::new();
        if query.terms.is_empty() {
            for id in self.attributes.keys() {
                scores.insert(id, 1);
            }
        } else {
            for term in &query.terms {
                if let Some(ids) = self.postings.get(term) {
                    for id in ids {
                        *scores.entry(id).or_insert(0) += 1;
                    }
                }
            }
        }

        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .filter(|(id, _)| {
                let Some(attrs) = self.attributes.get(*id) else {
                    return false;
                };
                if let Some(subject) = &query.subject {
                    if attrs.subject != subject.as_str().to_lowercase() {
                        return false;
                    }
                }
                if let Some(level) = query.cognition {
                    if attrs.cognition != Some(level) {
                        return false;
                    }
                }
                if let Some(style) = query.style {
                    if attrs.style != style {
                        return false;
                    }
                }
                true
            })
            .map(|(id, score)| SearchHit {
                problem: id.clone(),
                score,
            })
            .collect();
        hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.problem.cmp(&b.problem)));
        hits
    }

    /// "Search similar problems" (§5): find problems sharing terms with a
    /// given one, excluding itself.
    #[must_use]
    pub fn similar_to(&self, id: &ProblemId, limit: usize) -> Vec<SearchHit> {
        let Some(terms) = self.terms_of.get(id) else {
            return Vec::new();
        };
        let query = Query {
            terms: terms.clone(),
            ..Query::default()
        };
        self.search(&query)
            .into_iter()
            .filter(|hit| &hit.problem != id)
            .take(limit)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ChoiceOption;
    use mine_core::OptionKey;

    fn problems() -> Vec<Problem> {
        vec![
            Problem::true_false("q1", "TCP uses a three-way handshake.", true)
                .unwrap()
                .with_subject("tcp")
                .with_cognition_level(CognitionLevel::Knowledge),
            Problem::multiple_choice(
                "q2",
                "Which TCP state follows SYN-SENT?",
                [
                    ChoiceOption::new(OptionKey::A, "ESTABLISHED"),
                    ChoiceOption::new(OptionKey::B, "SYN-RECEIVED"),
                ],
                OptionKey::A,
            )
            .unwrap()
            .with_subject("tcp")
            .with_cognition_level(CognitionLevel::Comprehension),
            Problem::essay("q3", "Discuss routing convergence in OSPF.")
                .unwrap()
                .with_subject("routing")
                .with_cognition_level(CognitionLevel::Evaluation),
        ]
    }

    fn index() -> SearchIndex {
        let mut idx = SearchIndex::new();
        for p in problems() {
            idx.insert(&p);
        }
        idx
    }

    #[test]
    fn free_text_search_ranks_by_term_hits() {
        let idx = index();
        let hits = idx.search(&Query::text("tcp handshake"));
        assert_eq!(hits.len(), 2);
        // q1 matches both terms, q2 only "tcp".
        assert_eq!(hits[0].problem.as_str(), "q1");
        assert_eq!(hits[0].score, 2);
        assert_eq!(hits[1].problem.as_str(), "q2");
    }

    #[test]
    fn empty_query_matches_everything() {
        let idx = index();
        assert_eq!(idx.search(&Query::default()).len(), 3);
    }

    #[test]
    fn subject_filter() {
        let idx = index();
        let hits = idx.search(&Query::builder().subject("routing").build());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].problem.as_str(), "q3");
        // Filter is case-insensitive.
        let hits = idx.search(&Query::builder().subject("TCP").build());
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn cognition_and_style_filters() {
        let idx = index();
        let hits = idx.search(
            &Query::builder()
                .cognition(CognitionLevel::Comprehension)
                .build(),
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].problem.as_str(), "q2");
        let hits = idx.search(&Query::builder().style(QuestionStyle::Essay).build());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].problem.as_str(), "q3");
    }

    #[test]
    fn combined_filters_and_text() {
        let idx = index();
        let hits = idx.search(
            &Query::builder()
                .text("tcp")
                .cognition(CognitionLevel::Knowledge)
                .build(),
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].problem.as_str(), "q1");
    }

    #[test]
    fn option_text_is_indexed() {
        let idx = index();
        let hits = idx.search(&Query::text("established"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].problem.as_str(), "q2");
    }

    #[test]
    fn remove_unindexes() {
        let mut idx = index();
        assert!(idx.remove(&"q1".parse().unwrap()));
        assert!(!idx.remove(&"q1".parse().unwrap()));
        assert_eq!(idx.len(), 2);
        assert!(idx.search(&Query::text("handshake")).is_empty());
    }

    #[test]
    fn reinsert_replaces_old_terms() {
        let mut idx = index();
        let updated = Problem::true_false("q1", "UDP is connectionless.", true)
            .unwrap()
            .with_subject("udp");
        idx.insert(&updated);
        assert!(idx.search(&Query::text("handshake")).is_empty());
        assert_eq!(idx.search(&Query::text("connectionless")).len(), 1);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn similar_to_excludes_self() {
        let idx = index();
        let similar = idx.similar_to(&"q1".parse().unwrap(), 5);
        assert!(!similar.is_empty());
        assert!(similar.iter().all(|h| h.problem.as_str() != "q1"));
        // q2 shares the "tcp" term.
        assert_eq!(similar[0].problem.as_str(), "q2");
        assert!(idx.similar_to(&"ghost".parse().unwrap(), 5).is_empty());
    }
}
