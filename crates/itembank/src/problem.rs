//! Problems: typed question content plus metadata and grading (§5.1).
//!
//! "Problem authoring provides several problem types, and there are
//! choice problem, fill-in blank problem and true-false choice problem"
//! (§5.1); the metadata model additionally names essay, match, and
//! questionnaire styles (§3.2). Each problem carries its MINE metadata
//! (§5.2: "problem in our system has two sections, one is metadata
//! information, and another one is problem content").

use serde::{Deserialize, Serialize};

use mine_core::{Answer, CognitionLevel, OptionKey, ProblemId, Subject};
use mine_metadata::{CognitionMeta, IndividualTestMeta, MineMetadata, QuestionStyle};

use crate::error::BankError;
use crate::template::TemplateRef;

/// One option of a choice or questionnaire problem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChoiceOption {
    /// The option key shown to the learner (`A`, `B`, …).
    pub key: OptionKey,
    /// The option text.
    pub text: String,
}

impl ChoiceOption {
    /// Creates an option.
    #[must_use]
    pub fn new(key: OptionKey, text: impl Into<String>) -> Self {
        Self {
            key,
            text: text.into(),
        }
    }
}

/// The left/right columns of a match problem and the correct pairing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchPairs {
    /// Prompts (left column).
    pub left: Vec<String>,
    /// Candidate matches (right column); may exceed `left` as distractors.
    pub right: Vec<String>,
    /// `correct[i]` is the right-column index matching `left[i]`.
    pub correct: Vec<usize>,
}

/// Typed content of a problem (§3.2 styles).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProblemBody {
    /// Multiple choice with exactly one correct option.
    MultipleChoice {
        /// Question stem.
        stem: String,
        /// The candidate options.
        options: Vec<ChoiceOption>,
        /// The key of the correct option.
        correct: OptionKey,
    },
    /// True/false judgement ("two elements are Question and Hint").
    TrueFalse {
        /// Question stem.
        stem: String,
        /// Optional hint shown to the learner.
        hint: String,
        /// The correct judgement.
        correct: bool,
    },
    /// Open-ended essay ("defines the text of an open-ended essay
    /// question … two elements are Question and Hint").
    Essay {
        /// Question text.
        question: String,
        /// Optional hint.
        hint: String,
        /// Marker keywords: when non-empty, an answer containing at least
        /// half of them (case-insensitive) is auto-marked correct;
        /// otherwise essays need manual marking.
        keywords: Vec<String>,
    },
    /// Fill-in-blank / cloze ("design a question like fill-in blank or
    /// cloze"); `blanks[i]` is the accepted text for blank `i`.
    Completion {
        /// Stem with blank placeholders.
        stem: String,
        /// Accepted answer per blank (compared case-insensitively,
        /// trimmed).
        blanks: Vec<String>,
    },
    /// Match problem ("define a question with proper matched choice").
    Match(MatchPairs),
    /// A questionnaire prompt — opinion gathering, no correct answer.
    Questionnaire {
        /// The prompt text.
        prompt: String,
        /// Response options.
        options: Vec<ChoiceOption>,
    },
}

impl ProblemBody {
    /// The metadata question style for this body.
    #[must_use]
    pub fn style(&self) -> QuestionStyle {
        match self {
            ProblemBody::MultipleChoice { .. } => QuestionStyle::MultipleChoice,
            ProblemBody::TrueFalse { .. } => QuestionStyle::TrueFalse,
            ProblemBody::Essay { .. } => QuestionStyle::Essay,
            ProblemBody::Completion { .. } => QuestionStyle::Completion,
            ProblemBody::Match(_) => QuestionStyle::Match,
            ProblemBody::Questionnaire { .. } => QuestionStyle::Questionnaire,
        }
    }

    /// The text a learner reads first (stem/question/prompt).
    #[must_use]
    pub fn stem(&self) -> &str {
        match self {
            ProblemBody::MultipleChoice { stem, .. }
            | ProblemBody::TrueFalse { stem, .. }
            | ProblemBody::Completion { stem, .. } => stem,
            ProblemBody::Essay { question, .. } => question,
            ProblemBody::Match(pairs) => pairs.left.first().map_or("", String::as_str),
            ProblemBody::Questionnaire { prompt, .. } => prompt,
        }
    }

    /// The canonical correct answer, when one exists.
    #[must_use]
    pub fn correct_answer(&self) -> Option<Answer> {
        match self {
            ProblemBody::MultipleChoice { correct, .. } => Some(Answer::Choice(*correct)),
            ProblemBody::TrueFalse { correct, .. } => Some(Answer::TrueFalse(*correct)),
            ProblemBody::Completion { blanks, .. } => Some(Answer::Completion(blanks.clone())),
            ProblemBody::Match(pairs) => Some(Answer::Match(pairs.correct.clone())),
            ProblemBody::Essay { .. } | ProblemBody::Questionnaire { .. } => None,
        }
    }

    /// Options shown for choice-like bodies.
    #[must_use]
    pub fn options(&self) -> &[ChoiceOption] {
        match self {
            ProblemBody::MultipleChoice { options, .. }
            | ProblemBody::Questionnaire { options, .. } => options,
            _ => &[],
        }
    }
}

/// The outcome of grading one answer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grade {
    /// Whether the answer counts as correct for index computation.
    pub is_correct: bool,
    /// Points awarded (may be partial for completion/match).
    pub points_awarded: f64,
    /// Points the problem was worth.
    pub points_possible: f64,
    /// Whether a human marker still needs to look at the answer.
    pub needs_manual: bool,
}

impl Grade {
    fn correct(points: f64) -> Self {
        Self {
            is_correct: true,
            points_awarded: points,
            points_possible: points,
            needs_manual: false,
        }
    }

    fn incorrect(points_possible: f64) -> Self {
        Self {
            is_correct: false,
            points_awarded: 0.0,
            points_possible,
            needs_manual: false,
        }
    }

    fn partial(fraction: f64, points_possible: f64) -> Self {
        Self {
            is_correct: fraction >= 1.0,
            points_awarded: fraction * points_possible,
            points_possible,
            needs_manual: false,
        }
    }

    fn manual(points_possible: f64) -> Self {
        Self {
            is_correct: false,
            points_awarded: 0.0,
            points_possible,
            needs_manual: true,
        }
    }
}

/// Calibrated 3PL item-response-theory parameters for a problem.
///
/// Stored as plain numbers so the item bank stays independent of the
/// estimation crates; consumers clamp/validate when converting into
/// their own parameter types. `None` on a problem means the item has
/// never been calibrated and cannot be served adaptively.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Discrimination (slope) parameter `a`.
    pub discrimination: f64,
    /// Difficulty (location) parameter `b`.
    pub difficulty: f64,
    /// Pseudo-guessing (lower asymptote) parameter `c`.
    pub guessing: f64,
}

impl Calibration {
    /// Creates a calibration triple.
    #[must_use]
    pub fn new(discrimination: f64, difficulty: f64, guessing: f64) -> Self {
        Self {
            discrimination,
            difficulty,
            guessing,
        }
    }

    /// Whether every parameter is finite and the triple is usable for
    /// 3PL estimation (`a > 0`, `c` in `[0, 1)`).
    #[must_use]
    pub fn is_usable(&self) -> bool {
        self.discrimination.is_finite()
            && self.discrimination > 0.0
            && self.difficulty.is_finite()
            && self.guessing.is_finite()
            && (0.0..1.0).contains(&self.guessing)
    }
}

/// A problem: identifier, typed body, MINE metadata, and point value.
///
/// # Examples
///
/// ```
/// use mine_core::{Answer, OptionKey};
/// use mine_itembank::{ChoiceOption, Problem};
///
/// let q = Problem::multiple_choice(
///     "q1",
///     "2 + 2 = ?",
///     [
///         ChoiceOption::new(OptionKey::A, "4"),
///         ChoiceOption::new(OptionKey::B, "5"),
///     ],
///     OptionKey::A,
/// )?;
/// let grade = q.grade(&Answer::Choice(OptionKey::A))?;
/// assert!(grade.is_correct);
/// # Ok::<(), mine_itembank::BankError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    id: ProblemId,
    body: ProblemBody,
    metadata: MineMetadata,
    points: f64,
    template: Option<TemplateRef>,
    calibration: Option<Calibration>,
}

impl Problem {
    /// Default point value for newly authored problems.
    pub const DEFAULT_POINTS: f64 = 1.0;

    /// Creates a problem from parts, validating the body.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::InvalidProblem`] when the body fails
    /// validation (see [`Problem::validate`]) and [`BankError::Core`] for
    /// a bad identifier.
    pub fn new(id: impl Into<String>, body: ProblemBody) -> Result<Self, BankError> {
        let id = ProblemId::new(id.into())?;
        let style = body.style();
        let mut metadata = MineMetadata::builder(id.as_str()).style(style).build();
        metadata.individual_test = Some(IndividualTestMeta {
            answer: body.correct_answer(),
            ..IndividualTestMeta::default()
        });
        let problem = Self {
            id,
            body,
            metadata,
            points: Self::DEFAULT_POINTS,
            template: None,
            calibration: None,
        };
        problem.validate()?;
        Ok(problem)
    }

    /// Convenience constructor for a multiple-choice problem.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::InvalidProblem`] for fewer than two options,
    /// duplicate option keys, or a `correct` key not among the options.
    pub fn multiple_choice(
        id: impl Into<String>,
        stem: impl Into<String>,
        options: impl IntoIterator<Item = ChoiceOption>,
        correct: OptionKey,
    ) -> Result<Self, BankError> {
        Self::new(
            id,
            ProblemBody::MultipleChoice {
                stem: stem.into(),
                options: options.into_iter().collect(),
                correct,
            },
        )
    }

    /// Convenience constructor for a true/false problem.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::Core`] for a bad identifier.
    pub fn true_false(
        id: impl Into<String>,
        stem: impl Into<String>,
        correct: bool,
    ) -> Result<Self, BankError> {
        Self::new(
            id,
            ProblemBody::TrueFalse {
                stem: stem.into(),
                hint: String::new(),
                correct,
            },
        )
    }

    /// Convenience constructor for an essay problem.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::Core`] for a bad identifier.
    pub fn essay(id: impl Into<String>, question: impl Into<String>) -> Result<Self, BankError> {
        Self::new(
            id,
            ProblemBody::Essay {
                question: question.into(),
                hint: String::new(),
                keywords: Vec::new(),
            },
        )
    }

    /// Convenience constructor for a completion (fill-in) problem.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::InvalidProblem`] when `blanks` is empty.
    pub fn completion(
        id: impl Into<String>,
        stem: impl Into<String>,
        blanks: impl IntoIterator<Item = String>,
    ) -> Result<Self, BankError> {
        Self::new(
            id,
            ProblemBody::Completion {
                stem: stem.into(),
                blanks: blanks.into_iter().collect(),
            },
        )
    }

    /// Convenience constructor for a match problem.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::InvalidProblem`] for inconsistent pairings.
    pub fn match_items(id: impl Into<String>, pairs: MatchPairs) -> Result<Self, BankError> {
        Self::new(id, ProblemBody::Match(pairs))
    }

    /// Convenience constructor for a questionnaire prompt.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::InvalidProblem`] when no options are given.
    pub fn questionnaire(
        id: impl Into<String>,
        prompt: impl Into<String>,
        options: impl IntoIterator<Item = ChoiceOption>,
    ) -> Result<Self, BankError> {
        Self::new(
            id,
            ProblemBody::Questionnaire {
                prompt: prompt.into(),
                options: options.into_iter().collect(),
            },
        )
    }

    /// The problem identifier.
    #[must_use]
    pub fn id(&self) -> &ProblemId {
        &self.id
    }

    /// The typed content.
    #[must_use]
    pub fn body(&self) -> &ProblemBody {
        &self.body
    }

    /// Replaces the body, revalidating.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::InvalidProblem`] when the new body fails
    /// validation; the problem is left unchanged in that case.
    pub fn set_body(&mut self, body: ProblemBody) -> Result<(), BankError> {
        let previous = std::mem::replace(&mut self.body, body);
        if let Err(err) = self.validate() {
            self.body = previous;
            return Err(err);
        }
        let answer = self.body.correct_answer();
        let style = self.body.style();
        self.metadata.style = Some(style);
        self.metadata
            .individual_test
            .get_or_insert_with(IndividualTestMeta::default)
            .answer = answer;
        Ok(())
    }

    /// The attached MINE metadata.
    #[must_use]
    pub fn metadata(&self) -> &MineMetadata {
        &self.metadata
    }

    /// Mutable access to the metadata.
    pub fn metadata_mut(&mut self) -> &mut MineMetadata {
        &mut self.metadata
    }

    /// Point value of the problem.
    #[must_use]
    pub fn points(&self) -> f64 {
        self.points
    }

    /// Sets the point value.
    ///
    /// # Panics
    ///
    /// Panics when `points` is negative or non-finite.
    pub fn set_points(&mut self, points: f64) {
        assert!(
            points.is_finite() && points >= 0.0,
            "points must be a non-negative finite number"
        );
        self.points = points;
    }

    /// Builder-style point setter.
    #[must_use]
    pub fn with_points(mut self, points: f64) -> Self {
        self.set_points(points);
        self
    }

    /// The question style.
    #[must_use]
    pub fn style(&self) -> QuestionStyle {
        self.body.style()
    }

    /// The subject recorded in metadata.
    #[must_use]
    pub fn subject(&self) -> Subject {
        self.metadata
            .individual_test
            .as_ref()
            .map(|t| t.subject.clone())
            .unwrap_or_default()
    }

    /// Sets the subject.
    pub fn set_subject(&mut self, subject: impl Into<Subject>) {
        self.metadata
            .individual_test
            .get_or_insert_with(IndividualTestMeta::default)
            .subject = subject.into();
    }

    /// Builder-style subject setter.
    #[must_use]
    pub fn with_subject(mut self, subject: impl Into<Subject>) -> Self {
        self.set_subject(subject);
        self
    }

    /// The cognition level recorded in metadata, if any.
    #[must_use]
    pub fn cognition_level(&self) -> Option<CognitionLevel> {
        self.metadata.cognition.as_ref().map(|c| c.level)
    }

    /// Sets the cognition level.
    pub fn set_cognition_level(&mut self, level: CognitionLevel) {
        match &mut self.metadata.cognition {
            Some(cognition) => cognition.level = level,
            None => self.metadata.cognition = Some(CognitionMeta::new(level)),
        }
    }

    /// Builder-style cognition level setter.
    #[must_use]
    pub fn with_cognition_level(mut self, level: CognitionLevel) -> Self {
        self.set_cognition_level(level);
        self
    }

    /// The presentation template reference, if one is attached (§5.3).
    #[must_use]
    pub fn template(&self) -> Option<&TemplateRef> {
        self.template.as_ref()
    }

    /// Attaches a presentation template reference.
    pub fn set_template(&mut self, template: Option<TemplateRef>) {
        self.template = template;
    }

    /// The calibrated 3PL parameters, if the item has been calibrated.
    #[must_use]
    pub fn calibration(&self) -> Option<Calibration> {
        self.calibration
    }

    /// Sets (or clears) the calibrated 3PL parameters.
    pub fn set_calibration(&mut self, calibration: Option<Calibration>) {
        self.calibration = calibration;
    }

    /// Builder-style calibration setter.
    #[must_use]
    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = Some(calibration);
        self
    }

    /// Validates the body invariants.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::InvalidProblem`] describing the first
    /// violation.
    pub fn validate(&self) -> Result<(), BankError> {
        let fail = |reason: &str| {
            Err(BankError::InvalidProblem {
                id: self.id.to_string(),
                reason: reason.to_string(),
            })
        };
        match &self.body {
            ProblemBody::MultipleChoice {
                options, correct, ..
            } => {
                if options.len() < 2 {
                    return fail("multiple choice needs at least two options");
                }
                let mut keys: Vec<_> = options.iter().map(|o| o.key).collect();
                keys.sort_unstable();
                let len_before = keys.len();
                keys.dedup();
                if keys.len() != len_before {
                    return fail("duplicate option keys");
                }
                if !options.iter().any(|o| o.key == *correct) {
                    return fail("correct key is not among the options");
                }
            }
            ProblemBody::Completion { blanks, .. } => {
                if blanks.is_empty() {
                    return fail("completion needs at least one blank");
                }
                if blanks.iter().any(|b| b.trim().is_empty()) {
                    return fail("completion blanks must have accepted text");
                }
            }
            ProblemBody::Match(pairs) => {
                if pairs.left.is_empty() || pairs.right.is_empty() {
                    return fail("match needs non-empty columns");
                }
                if pairs.correct.len() != pairs.left.len() {
                    return fail("match needs one correct pairing per left entry");
                }
                if pairs.correct.iter().any(|&r| r >= pairs.right.len()) {
                    return fail("match pairing points past the right column");
                }
            }
            ProblemBody::Questionnaire { options, .. } => {
                if options.is_empty() {
                    return fail("questionnaire needs response options");
                }
            }
            ProblemBody::TrueFalse { .. } | ProblemBody::Essay { .. } => {}
        }
        Ok(())
    }

    /// Grades an answer against this problem.
    ///
    /// Skipped answers grade as incorrect with zero points for any style.
    /// Essays auto-grade only when marker keywords are configured;
    /// otherwise they return a `needs_manual` grade. Questionnaires have
    /// no correct answer and grade as zero-point, non-manual.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::AnswerMismatch`] when the answer kind does
    /// not fit the problem style (e.g. a true/false answer to a choice
    /// problem).
    pub fn grade(&self, answer: &Answer) -> Result<Grade, BankError> {
        if matches!(answer, Answer::Skipped) {
            return Ok(Grade::incorrect(self.points));
        }
        let mismatch = |expected: &'static str| BankError::AnswerMismatch {
            problem: self.id.to_string(),
            expected,
        };
        match (&self.body, answer) {
            (
                ProblemBody::MultipleChoice {
                    correct, options, ..
                },
                Answer::Choice(key),
            ) => {
                if !options.iter().any(|o| o.key == *key) {
                    return Err(mismatch("an offered option key"));
                }
                Ok(if key == correct {
                    Grade::correct(self.points)
                } else {
                    Grade::incorrect(self.points)
                })
            }
            (ProblemBody::MultipleChoice { .. }, _) => Err(mismatch("choice")),
            (ProblemBody::TrueFalse { correct, .. }, Answer::TrueFalse(value)) => {
                Ok(if value == correct {
                    Grade::correct(self.points)
                } else {
                    Grade::incorrect(self.points)
                })
            }
            (ProblemBody::TrueFalse { .. }, _) => Err(mismatch("true-false")),
            (ProblemBody::Completion { blanks, .. }, Answer::Completion(filled)) => {
                if filled.len() != blanks.len() {
                    return Ok(Grade::partial(0.0, self.points));
                }
                let hits = blanks
                    .iter()
                    .zip(filled)
                    .filter(|(expect, got)| expect.trim().eq_ignore_ascii_case(got.trim()))
                    .count();
                Ok(Grade::partial(
                    hits as f64 / blanks.len() as f64,
                    self.points,
                ))
            }
            (ProblemBody::Completion { .. }, _) => Err(mismatch("completion")),
            (ProblemBody::Match(pairs), Answer::Match(chosen)) => {
                if chosen.len() != pairs.correct.len() {
                    return Ok(Grade::partial(0.0, self.points));
                }
                let hits = pairs
                    .correct
                    .iter()
                    .zip(chosen)
                    .filter(|(expect, got)| expect == got)
                    .count();
                Ok(Grade::partial(
                    hits as f64 / pairs.correct.len() as f64,
                    self.points,
                ))
            }
            (ProblemBody::Match(_), _) => Err(mismatch("match")),
            (ProblemBody::Essay { keywords, .. }, Answer::Text(text)) => {
                if keywords.is_empty() {
                    return Ok(Grade::manual(self.points));
                }
                let lower = text.to_lowercase();
                let hits = keywords
                    .iter()
                    .filter(|k| lower.contains(&k.to_lowercase()))
                    .count();
                Ok(if hits * 2 >= keywords.len() {
                    Grade::correct(self.points)
                } else {
                    Grade::incorrect(self.points)
                })
            }
            (ProblemBody::Essay { .. }, _) => Err(mismatch("text")),
            (ProblemBody::Questionnaire { options, .. }, Answer::Choice(key)) => {
                if !options.iter().any(|o| o.key == *key) {
                    return Err(mismatch("an offered option key"));
                }
                Ok(Grade {
                    is_correct: false,
                    points_awarded: 0.0,
                    points_possible: 0.0,
                    needs_manual: false,
                })
            }
            (ProblemBody::Questionnaire { .. }, _) => Err(mismatch("choice")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn choice() -> Problem {
        Problem::multiple_choice(
            "q1",
            "Which option is right?",
            OptionKey::first(4)
                .enumerate()
                .map(|(i, key)| ChoiceOption::new(key, format!("option {i}"))),
            OptionKey::C,
        )
        .unwrap()
    }

    #[test]
    fn constructors_set_style_and_answer_metadata() {
        let q = choice();
        assert_eq!(q.style(), QuestionStyle::MultipleChoice);
        assert_eq!(
            q.metadata().individual_test.as_ref().unwrap().answer,
            Some(Answer::Choice(OptionKey::C))
        );
        let tf = Problem::true_false("q2", "The sky is green.", false).unwrap();
        assert_eq!(tf.style(), QuestionStyle::TrueFalse);
        let essay = Problem::essay("q3", "Discuss.").unwrap();
        assert_eq!(essay.style(), QuestionStyle::Essay);
        assert_eq!(
            essay.metadata().individual_test.as_ref().unwrap().answer,
            None
        );
    }

    #[test]
    fn choice_validation() {
        assert!(Problem::multiple_choice(
            "bad",
            "?",
            [ChoiceOption::new(OptionKey::A, "only one")],
            OptionKey::A,
        )
        .is_err());
        assert!(Problem::multiple_choice(
            "bad",
            "?",
            [
                ChoiceOption::new(OptionKey::A, "x"),
                ChoiceOption::new(OptionKey::A, "dup"),
            ],
            OptionKey::A,
        )
        .is_err());
        assert!(Problem::multiple_choice(
            "bad",
            "?",
            [
                ChoiceOption::new(OptionKey::A, "x"),
                ChoiceOption::new(OptionKey::B, "y"),
            ],
            OptionKey::E,
        )
        .is_err());
    }

    #[test]
    fn grading_choice() {
        let q = choice();
        assert!(q.grade(&Answer::Choice(OptionKey::C)).unwrap().is_correct);
        let wrong = q.grade(&Answer::Choice(OptionKey::A)).unwrap();
        assert!(!wrong.is_correct);
        assert_eq!(wrong.points_awarded, 0.0);
        assert!(
            q.grade(&Answer::Choice(OptionKey::E)).is_err(),
            "key not offered"
        );
        assert!(q.grade(&Answer::TrueFalse(true)).is_err());
        let skipped = q.grade(&Answer::Skipped).unwrap();
        assert!(!skipped.is_correct);
        assert!(!skipped.needs_manual);
    }

    #[test]
    fn grading_true_false() {
        let q = Problem::true_false("q", "1+1=2", true)
            .unwrap()
            .with_points(2.0);
        let g = q.grade(&Answer::TrueFalse(true)).unwrap();
        assert!(g.is_correct);
        assert_eq!(g.points_awarded, 2.0);
        assert!(!q.grade(&Answer::TrueFalse(false)).unwrap().is_correct);
    }

    #[test]
    fn grading_completion_partial_credit() {
        let q = Problem::completion(
            "q",
            "The ___ layer sits atop the ___ layer.",
            vec!["transport".to_string(), "network".to_string()],
        )
        .unwrap()
        .with_points(4.0);
        let perfect = q
            .grade(&Answer::Completion(vec![
                " Transport ".into(),
                "NETWORK".into(),
            ]))
            .unwrap();
        assert!(perfect.is_correct);
        assert_eq!(perfect.points_awarded, 4.0);
        let half = q
            .grade(&Answer::Completion(vec![
                "transport".into(),
                "physical".into(),
            ]))
            .unwrap();
        assert!(!half.is_correct);
        assert_eq!(half.points_awarded, 2.0);
        let wrong_len = q
            .grade(&Answer::Completion(vec!["transport".into()]))
            .unwrap();
        assert_eq!(wrong_len.points_awarded, 0.0);
    }

    #[test]
    fn grading_match_partial_credit() {
        let q = Problem::match_items(
            "q",
            MatchPairs {
                left: vec!["TCP".into(), "IP".into()],
                right: vec!["network".into(), "transport".into(), "link".into()],
                correct: vec![1, 0],
            },
        )
        .unwrap()
        .with_points(2.0);
        assert!(q.grade(&Answer::Match(vec![1, 0])).unwrap().is_correct);
        let half = q.grade(&Answer::Match(vec![1, 2])).unwrap();
        assert!(!half.is_correct);
        assert_eq!(half.points_awarded, 1.0);
    }

    #[test]
    fn match_validation() {
        assert!(Problem::match_items(
            "bad",
            MatchPairs {
                left: vec!["a".into()],
                right: vec!["x".into()],
                correct: vec![3],
            },
        )
        .is_err());
        assert!(Problem::match_items(
            "bad",
            MatchPairs {
                left: vec!["a".into(), "b".into()],
                right: vec!["x".into()],
                correct: vec![0],
            },
        )
        .is_err());
    }

    #[test]
    fn essay_without_keywords_needs_manual() {
        let q = Problem::essay("q", "Explain congestion control.").unwrap();
        let g = q
            .grade(&Answer::Text("AIMD and slow start".into()))
            .unwrap();
        assert!(g.needs_manual);
        assert!(!g.is_correct);
    }

    #[test]
    fn essay_with_keywords_auto_grades() {
        let q = Problem::new(
            "q",
            ProblemBody::Essay {
                question: "Explain congestion control.".into(),
                hint: String::new(),
                keywords: vec!["AIMD".into(), "slow start".into()],
            },
        )
        .unwrap();
        assert!(
            q.grade(&Answer::Text("aimd halves cwnd; slow start doubles".into()))
                .unwrap()
                .is_correct
        );
        assert!(!q.grade(&Answer::Text("no idea".into())).unwrap().is_correct);
        // Half the keywords suffice.
        assert!(
            q.grade(&Answer::Text("AIMD only".into()))
                .unwrap()
                .is_correct
        );
    }

    #[test]
    fn questionnaire_has_no_correct_answer() {
        let q = Problem::questionnaire(
            "s1",
            "How hard was the course?",
            OptionKey::first(5).map(|k| ChoiceOption::new(k, format!("level {k}"))),
        )
        .unwrap();
        let g = q.grade(&Answer::Choice(OptionKey::B)).unwrap();
        assert!(!g.is_correct);
        assert_eq!(g.points_possible, 0.0);
        assert!(!g.needs_manual);
    }

    #[test]
    fn set_body_revalidates_and_rolls_back() {
        let mut q = choice();
        let bad = ProblemBody::MultipleChoice {
            stem: "?".into(),
            options: vec![ChoiceOption::new(OptionKey::A, "only")],
            correct: OptionKey::A,
        };
        assert!(q.set_body(bad).is_err());
        // Original body retained.
        assert_eq!(q.body().options().len(), 4);
        let good = ProblemBody::TrueFalse {
            stem: "?".into(),
            hint: String::new(),
            correct: true,
        };
        q.set_body(good).unwrap();
        assert_eq!(q.style(), QuestionStyle::TrueFalse);
        assert_eq!(
            q.metadata().individual_test.as_ref().unwrap().answer,
            Some(Answer::TrueFalse(true))
        );
    }

    #[test]
    fn subject_and_cognition_setters() {
        let q = choice()
            .with_subject("networking")
            .with_cognition_level(CognitionLevel::Application);
        assert_eq!(q.subject().as_str(), "networking");
        assert_eq!(q.cognition_level(), Some(CognitionLevel::Application));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_points_panic() {
        let _ = choice().with_points(-1.0);
    }

    #[test]
    fn serde_round_trip() {
        let q = choice()
            .with_subject("s")
            .with_cognition_level(CognitionLevel::Analysis);
        let json = serde_json::to_string(&q).unwrap();
        let back: Problem = serde_json::from_str(&json).unwrap();
        assert_eq!(back, q);
    }
}
