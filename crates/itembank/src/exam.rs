//! Exams and the presentation-style group service (§5.4).
//!
//! "There are various kinds of exam presentation style. It is hard to
//! design all possible exam presentation styles. In order to solve the
//! problem, instructors can use group service to make all possible
//! presentation style." An [`Exam`] is an ordered list of
//! [`ExamEntry`]s, each optionally assigned to a [`PresentationGroup`]
//! that controls how its questions render and shuffle.

use std::collections::HashSet;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use mine_core::{ExamId, GroupId, ProblemId};
use mine_metadata::{DisplayOrder, ExamMeta};

use crate::error::BankError;

/// Rendering/shuffling style of a presentation group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupStyle {
    /// Columns used when rendering the group's questions.
    pub columns: u8,
    /// Shuffle question order *within* the group on delivery.
    pub shuffle_within: bool,
    /// Start the group on a fresh page/screen.
    pub page_break: bool,
    /// Heading shown above the group.
    pub heading: String,
}

impl Default for GroupStyle {
    fn default() -> Self {
        Self {
            columns: 1,
            shuffle_within: false,
            page_break: false,
            heading: String::new(),
        }
    }
}

/// A named presentation group (§5.4 group service).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PresentationGroup {
    /// Group identifier, referenced by entries.
    pub id: GroupId,
    /// Rendering style.
    pub style: GroupStyle,
}

impl PresentationGroup {
    /// Creates a group with the default style.
    #[must_use]
    pub fn new(id: GroupId) -> Self {
        Self {
            id,
            style: GroupStyle::default(),
        }
    }

    /// Builder-style style setter.
    #[must_use]
    pub fn with_style(mut self, style: GroupStyle) -> Self {
        self.style = style;
        self
    }
}

/// One slot of an exam: a problem plus exam-local overrides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExamEntry {
    /// The referenced problem.
    pub problem: ProblemId,
    /// Points this problem is worth *in this exam* (overrides the
    /// problem's own default when set).
    pub points: Option<f64>,
    /// The presentation group the entry belongs to, if any.
    pub group: Option<GroupId>,
}

impl ExamEntry {
    /// Creates an ungrouped entry with default points.
    #[must_use]
    pub fn new(problem: ProblemId) -> Self {
        Self {
            problem,
            points: None,
            group: None,
        }
    }

    /// Builder-style group assignment.
    #[must_use]
    pub fn in_group(mut self, group: GroupId) -> Self {
        self.group = Some(group);
        self
    }

    /// Builder-style point override.
    #[must_use]
    pub fn worth(mut self, points: f64) -> Self {
        self.points = Some(points);
        self
    }
}

/// An exam: ordered entries, presentation groups, display order, and
/// exam-level metadata (§3.4).
///
/// # Examples
///
/// ```
/// use mine_itembank::Exam;
///
/// let exam = Exam::builder("midterm")?
///     .title("Midterm 2004")
///     .entry("q1".parse()?)
///     .entry("q2".parse()?)
///     .build()?;
/// assert_eq!(exam.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exam {
    id: ExamId,
    title: String,
    entries: Vec<ExamEntry>,
    groups: Vec<PresentationGroup>,
    display_order: DisplayOrder,
    meta: ExamMeta,
}

impl Exam {
    /// Starts building an exam.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::Core`] for an invalid identifier.
    pub fn builder(id: impl Into<String>) -> Result<ExamBuilder, BankError> {
        Ok(ExamBuilder {
            exam: Exam {
                id: ExamId::new(id.into())?,
                title: String::new(),
                entries: Vec::new(),
                groups: Vec::new(),
                display_order: DisplayOrder::Fixed,
                meta: ExamMeta::default(),
            },
        })
    }

    /// The exam identifier.
    #[must_use]
    pub fn id(&self) -> &ExamId {
        &self.id
    }

    /// The exam title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The ordered entries.
    #[must_use]
    pub fn entries(&self) -> &[ExamEntry] {
        &self.entries
    }

    /// The presentation groups.
    #[must_use]
    pub fn groups(&self) -> &[PresentationGroup] {
        &self.groups
    }

    /// Looks up a group by id.
    #[must_use]
    pub fn group(&self, id: &GroupId) -> Option<&PresentationGroup> {
        self.groups.iter().find(|g| &g.id == id)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the exam has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fixed or random overall display order (§3.2-VI-C).
    #[must_use]
    pub fn display_order(&self) -> DisplayOrder {
        self.display_order
    }

    /// Exam-level metadata (test time, average time, ISI).
    #[must_use]
    pub fn meta(&self) -> &ExamMeta {
        &self.meta
    }

    /// Mutable exam-level metadata.
    pub fn meta_mut(&mut self) -> &mut ExamMeta {
        &mut self.meta
    }

    /// The problems in entry order.
    #[must_use]
    pub fn problem_ids(&self) -> Vec<ProblemId> {
        self.entries.iter().map(|e| e.problem.clone()).collect()
    }

    /// Entries of one group, in exam order.
    pub fn entries_in_group<'a>(
        &'a self,
        group: &'a GroupId,
    ) -> impl Iterator<Item = &'a ExamEntry> + 'a {
        self.entries
            .iter()
            .filter(move |e| e.group.as_ref() == Some(group))
    }

    /// Appends an entry after construction (authoring edit).
    ///
    /// # Errors
    ///
    /// Returns [`BankError::Duplicate`] if the problem is already on the
    /// exam and [`BankError::InvalidExam`] for an unknown group.
    pub fn push_entry(&mut self, entry: ExamEntry) -> Result<(), BankError> {
        if self.entries.iter().any(|e| e.problem == entry.problem) {
            return Err(BankError::Duplicate {
                kind: "exam entry",
                id: entry.problem.to_string(),
            });
        }
        if let Some(group) = &entry.group {
            if self.group(group).is_none() {
                return Err(BankError::InvalidExam {
                    id: self.id.to_string(),
                    reason: format!("entry references unknown group {group}"),
                });
            }
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Removes the entry for a problem, returning whether it existed.
    pub fn remove_entry(&mut self, problem: &ProblemId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| &e.problem != problem);
        self.entries.len() != before
    }

    /// Adds a presentation group (authoring edit).
    ///
    /// # Errors
    ///
    /// Returns [`BankError::Duplicate`] for a group id already in use.
    pub fn add_group(&mut self, group: PresentationGroup) -> Result<(), BankError> {
        if self.group(&group.id).is_some() {
            return Err(BankError::Duplicate {
                kind: "group",
                id: group.id.to_string(),
            });
        }
        self.groups.push(group);
        Ok(())
    }

    /// Removes a group; entries that referenced it become ungrouped.
    pub fn remove_group(&mut self, id: &GroupId) -> bool {
        let before = self.groups.len();
        self.groups.retain(|g| &g.id != id);
        if self.groups.len() == before {
            return false;
        }
        for entry in &mut self.entries {
            if entry.group.as_ref() == Some(id) {
                entry.group = None;
            }
        }
        true
    }

    /// Validates entry and group consistency.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::InvalidExam`] for duplicate problems,
    /// duplicate group ids, or entries referencing unknown groups.
    pub fn validate(&self) -> Result<(), BankError> {
        let fail = |reason: String| {
            Err(BankError::InvalidExam {
                id: self.id.to_string(),
                reason,
            })
        };
        let mut seen = HashSet::new();
        for entry in &self.entries {
            if !seen.insert(&entry.problem) {
                return fail(format!("problem {} appears twice", entry.problem));
            }
            if let Some(points) = entry.points {
                if !points.is_finite() || points < 0.0 {
                    return fail(format!("bad points override on {}", entry.problem));
                }
            }
        }
        let mut group_ids = HashSet::new();
        for group in &self.groups {
            if !group_ids.insert(&group.id) {
                return fail(format!("group {} defined twice", group.id));
            }
            if group.style.columns == 0 {
                return fail(format!("group {} has zero columns", group.id));
            }
        }
        for entry in &self.entries {
            if let Some(group) = &entry.group {
                if !group_ids.contains(group) {
                    return fail(format!(
                        "entry {} references unknown group {group}",
                        entry.problem
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`Exam`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct ExamBuilder {
    exam: Exam,
}

impl ExamBuilder {
    /// Sets the title.
    #[must_use]
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.exam.title = title.into();
        self
    }

    /// Sets fixed/random display order.
    #[must_use]
    pub fn display_order(mut self, order: DisplayOrder) -> Self {
        self.exam.display_order = order;
        self
    }

    /// Sets the test time limit.
    #[must_use]
    pub fn test_time(mut self, limit: Duration) -> Self {
        self.exam.meta.test_time = Some(limit);
        self
    }

    /// Adds a presentation group.
    #[must_use]
    pub fn group(mut self, group: PresentationGroup) -> Self {
        self.exam.groups.push(group);
        self
    }

    /// Adds an ungrouped entry with default points.
    #[must_use]
    pub fn entry(mut self, problem: ProblemId) -> Self {
        self.exam.entries.push(ExamEntry::new(problem));
        self
    }

    /// Adds a fully specified entry.
    #[must_use]
    pub fn entry_with(mut self, entry: ExamEntry) -> Self {
        self.exam.entries.push(entry);
        self
    }

    /// Finishes the build, validating consistency.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::InvalidExam`] when validation fails.
    pub fn build(self) -> Result<Exam, BankError> {
        self.exam.validate()?;
        Ok(self.exam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(s: &str) -> ProblemId {
        s.parse().unwrap()
    }

    fn gid(s: &str) -> GroupId {
        s.parse().unwrap()
    }

    fn sample() -> Exam {
        Exam::builder("midterm")
            .unwrap()
            .title("Midterm")
            .group(PresentationGroup::new(gid("g1")).with_style(GroupStyle {
                columns: 2,
                shuffle_within: true,
                page_break: true,
                heading: "Part I".into(),
            }))
            .entry_with(ExamEntry::new(pid("q1")).in_group(gid("g1")))
            .entry_with(ExamEntry::new(pid("q2")).in_group(gid("g1")).worth(5.0))
            .entry(pid("q3"))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_consistent_exam() {
        let exam = sample();
        assert_eq!(exam.len(), 3);
        assert_eq!(exam.title(), "Midterm");
        assert_eq!(exam.entries_in_group(&gid("g1")).count(), 2);
        assert_eq!(exam.display_order(), DisplayOrder::Fixed);
        assert_eq!(exam.problem_ids(), vec![pid("q1"), pid("q2"), pid("q3")]);
    }

    #[test]
    fn duplicate_problem_rejected() {
        let result = Exam::builder("e")
            .unwrap()
            .entry(pid("q1"))
            .entry(pid("q1"))
            .build();
        assert!(matches!(result, Err(BankError::InvalidExam { .. })));
    }

    #[test]
    fn unknown_group_rejected() {
        let result = Exam::builder("e")
            .unwrap()
            .entry_with(ExamEntry::new(pid("q1")).in_group(gid("ghost")))
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn zero_column_group_rejected() {
        let result = Exam::builder("e")
            .unwrap()
            .group(PresentationGroup::new(gid("g")).with_style(GroupStyle {
                columns: 0,
                ..GroupStyle::default()
            }))
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn negative_points_override_rejected() {
        let result = Exam::builder("e")
            .unwrap()
            .entry_with(ExamEntry::new(pid("q1")).worth(-2.0))
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn push_entry_checks_duplicates_and_groups() {
        let mut exam = sample();
        assert!(exam.push_entry(ExamEntry::new(pid("q1"))).is_err());
        assert!(exam
            .push_entry(ExamEntry::new(pid("q4")).in_group(gid("ghost")))
            .is_err());
        assert!(exam.push_entry(ExamEntry::new(pid("q4"))).is_ok());
        assert_eq!(exam.len(), 4);
    }

    #[test]
    fn remove_entry_and_group() {
        let mut exam = sample();
        assert!(exam.remove_entry(&pid("q3")));
        assert!(!exam.remove_entry(&pid("q3")));
        assert!(exam.remove_group(&gid("g1")));
        // Entries previously in g1 become ungrouped.
        assert!(exam.entries().iter().all(|e| e.group.is_none()));
        assert!(!exam.remove_group(&gid("g1")));
    }

    #[test]
    fn test_time_builder() {
        let exam = Exam::builder("e")
            .unwrap()
            .test_time(Duration::from_secs(600))
            .build()
            .unwrap();
        assert_eq!(exam.meta().test_time, Some(Duration::from_secs(600)));
        assert!(exam.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let exam = sample();
        let json = serde_json::to_string(&exam).unwrap();
        let back: Exam = serde_json::from_str(&json).unwrap();
        assert_eq!(back, exam);
    }
}
