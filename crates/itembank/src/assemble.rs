//! Exam assembly from the bank: blueprints and parallel forms.
//!
//! The paper's whole-test analysis exists so that "with the cognition
//! level analysis, teachers can avoid missing items in teaching" (§1) —
//! the two-way specification table says what an exam *should* cover.
//! [`Blueprint`] turns that around: specify the target table (concept ×
//! Bloom level → question count) and assemble an exam from the bank that
//! satisfies it.
//!
//! [`assemble_parallel_forms`] builds equivalent exam forms (A/B/…) by
//! dealing difficulty-sorted items round-robin, so every form sees the
//! same difficulty spread — the classical balanced-forms construction.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mine_core::{CognitionLevel, ProblemId};

use crate::problem::Problem;

/// A target two-way specification: how many questions each
/// (concept, level) cell must contribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Blueprint {
    targets: BTreeMap<(String, CognitionLevel), usize>,
}

impl Blueprint {
    /// Creates an empty blueprint.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style cell requirement: `count` questions about
    /// `concept` at `level`.
    #[must_use]
    pub fn require(
        mut self,
        concept: impl Into<String>,
        level: CognitionLevel,
        count: usize,
    ) -> Self {
        if count > 0 {
            *self.targets.entry((concept.into(), level)).or_insert(0) += count;
        }
        self
    }

    /// Total questions the blueprint demands.
    #[must_use]
    pub fn total(&self) -> usize {
        self.targets.values().sum()
    }

    /// The demanded cells.
    pub fn cells(&self) -> impl Iterator<Item = (&str, CognitionLevel, usize)> {
        self.targets
            .iter()
            .map(|((concept, level), count)| (concept.as_str(), *level, *count))
    }
}

/// A cell the bank could not fill.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shortfall {
    /// The concept (subject).
    pub concept: String,
    /// The Bloom level.
    pub level: CognitionLevel,
    /// Questions demanded.
    pub wanted: usize,
    /// Questions available in the bank.
    pub available: usize,
}

/// Error of [`assemble_from_blueprint`]: the bank cannot satisfy the
/// blueprint; every deficient cell is listed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlueprintUnsatisfied {
    /// The deficient cells.
    pub shortfalls: Vec<Shortfall>,
}

impl std::fmt::Display for BlueprintUnsatisfied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "blueprint unsatisfied in {} cell(s):",
            self.shortfalls.len()
        )?;
        for s in &self.shortfalls {
            write!(
                f,
                " [{} × {}: want {}, have {}]",
                s.concept,
                s.level.letter(),
                s.wanted,
                s.available
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for BlueprintUnsatisfied {}

/// Picks problems from `bank` to satisfy `blueprint`, preferring (within
/// each cell) problems whose recorded difficulty is closest to moderate
/// (`P = 0.5`); problems without a recorded difficulty come last, in id
/// order.
///
/// Returns the chosen problem ids grouped per demand cell order.
///
/// # Errors
///
/// Returns [`BlueprintUnsatisfied`] listing every cell the bank cannot
/// fill; nothing is partially assembled.
pub fn assemble_from_blueprint(
    bank: &[Problem],
    blueprint: &Blueprint,
) -> Result<Vec<ProblemId>, BlueprintUnsatisfied> {
    let mut chosen = Vec::with_capacity(blueprint.total());
    let mut shortfalls = Vec::new();
    for (concept, level, wanted) in blueprint.cells() {
        let mut candidates: Vec<&Problem> = bank
            .iter()
            .filter(|p| p.cognition_level() == Some(level) && p.subject().as_str() == concept)
            .collect();
        candidates.sort_by(|a, b| {
            let moderation = |p: &Problem| {
                p.metadata()
                    .individual_test
                    .as_ref()
                    .and_then(|t| t.difficulty)
                    .map(|d| (d.value() - 0.5).abs())
            };
            match (moderation(a), moderation(b)) {
                (Some(x), Some(y)) => x
                    .partial_cmp(&y)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.id().cmp(b.id())),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => a.id().cmp(b.id()),
            }
        });
        if candidates.len() < wanted {
            shortfalls.push(Shortfall {
                concept: concept.to_string(),
                level,
                wanted,
                available: candidates.len(),
            });
            continue;
        }
        chosen.extend(candidates[..wanted].iter().map(|p| p.id().clone()));
    }
    if shortfalls.is_empty() {
        Ok(chosen)
    } else {
        Err(BlueprintUnsatisfied { shortfalls })
    }
}

/// Deals `bank` into `forms` difficulty-balanced parallel forms of
/// `per_form` problems each.
///
/// Problems are ordered by recorded difficulty (unrecorded ones sort to
/// the middle at `P = 0.5`) and dealt boustrophedon (A-B-B-A) so each
/// form receives the same spread. Returns `forms` id lists.
///
/// # Errors
///
/// Returns the number of problems missing when the bank is too small.
pub fn assemble_parallel_forms(
    bank: &[Problem],
    forms: usize,
    per_form: usize,
) -> Result<Vec<Vec<ProblemId>>, usize> {
    let needed = forms * per_form;
    if bank.len() < needed {
        return Err(needed - bank.len());
    }
    if forms == 0 {
        return Ok(Vec::new());
    }
    let mut ordered: Vec<&Problem> = bank.iter().collect();
    ordered.sort_by(|a, b| {
        let difficulty = |p: &Problem| {
            p.metadata()
                .individual_test
                .as_ref()
                .and_then(|t| t.difficulty)
                .map_or(0.5, |d| d.value())
        };
        difficulty(a)
            .partial_cmp(&difficulty(b))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id().cmp(b.id()))
    });
    let mut out = vec![Vec::with_capacity(per_form); forms];
    for (i, problem) in ordered[..needed].iter().enumerate() {
        // Boustrophedon dealing: 0,1,…,f-1,f-1,…,1,0,0,1,…
        let round = i / forms;
        let position = i % forms;
        let form = if round.is_multiple_of(2) {
            position
        } else {
            forms - 1 - position
        };
        out[form].push(problem.id().clone());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_metadata::{DifficultyIndex, IndividualTestMeta};

    fn problem(id: &str, subject: &str, level: CognitionLevel, p: Option<f64>) -> Problem {
        let mut problem = Problem::true_false(id, "stem", true)
            .unwrap()
            .with_subject(subject)
            .with_cognition_level(level);
        if let Some(p) = p {
            problem
                .metadata_mut()
                .individual_test
                .get_or_insert_with(IndividualTestMeta::default)
                .difficulty = Some(DifficultyIndex::new(p).unwrap());
        }
        problem
    }

    fn bank() -> Vec<Problem> {
        vec![
            problem("k1", "tcp", CognitionLevel::Knowledge, Some(0.9)),
            problem("k2", "tcp", CognitionLevel::Knowledge, Some(0.55)),
            problem("k3", "tcp", CognitionLevel::Knowledge, None),
            problem("c1", "tcp", CognitionLevel::Comprehension, Some(0.4)),
            problem("r1", "routing", CognitionLevel::Knowledge, Some(0.5)),
            problem("r2", "routing", CognitionLevel::Application, Some(0.2)),
        ]
    }

    #[test]
    fn blueprint_assembles_and_prefers_moderate_difficulty() {
        let blueprint = Blueprint::new()
            .require("tcp", CognitionLevel::Knowledge, 2)
            .require("routing", CognitionLevel::Application, 1);
        let chosen = assemble_from_blueprint(&bank(), &blueprint).unwrap();
        assert_eq!(chosen.len(), 3);
        // tcp/Knowledge: k2 (P=0.55, closest to 0.5) before k1 (0.9);
        // k3 (no record) is last and not taken.
        assert!(chosen.contains(&"k2".parse().unwrap()));
        assert!(chosen.contains(&"k1".parse().unwrap()));
        assert!(!chosen.contains(&"k3".parse().unwrap()));
        assert!(chosen.contains(&"r2".parse().unwrap()));
    }

    #[test]
    fn blueprint_reports_every_shortfall() {
        let blueprint = Blueprint::new()
            .require("tcp", CognitionLevel::Knowledge, 5)
            .require("dns", CognitionLevel::Evaluation, 2)
            .require("routing", CognitionLevel::Knowledge, 1);
        let err = assemble_from_blueprint(&bank(), &blueprint).unwrap_err();
        assert_eq!(err.shortfalls.len(), 2);
        let text = err.to_string();
        assert!(text.contains("tcp × A: want 5, have 3"), "{text}");
        assert!(text.contains("dns × F: want 2, have 0"), "{text}");
    }

    #[test]
    fn blueprint_requires_nothing_yields_nothing() {
        let chosen = assemble_from_blueprint(&bank(), &Blueprint::new()).unwrap();
        assert!(chosen.is_empty());
        assert_eq!(Blueprint::new().total(), 0);
    }

    #[test]
    fn repeated_require_accumulates() {
        let blueprint = Blueprint::new()
            .require("tcp", CognitionLevel::Knowledge, 1)
            .require("tcp", CognitionLevel::Knowledge, 2);
        assert_eq!(blueprint.total(), 3);
    }

    #[test]
    fn parallel_forms_are_disjoint_and_balanced() {
        // 12 problems with difficulties 0.05 … 0.60.
        let bank: Vec<Problem> = (0..12)
            .map(|i| {
                problem(
                    &format!("p{i:02}"),
                    "s",
                    CognitionLevel::Knowledge,
                    Some(0.05 * (i + 1) as f64),
                )
            })
            .collect();
        let forms = assemble_parallel_forms(&bank, 2, 6).unwrap();
        assert_eq!(forms.len(), 2);
        assert_eq!(forms[0].len(), 6);
        // Disjoint.
        let all: std::collections::HashSet<_> = forms.iter().flatten().collect();
        assert_eq!(all.len(), 12);
        // Balanced: mean difficulty per form within 0.03 of each other.
        let mean = |ids: &Vec<ProblemId>| {
            ids.iter()
                .map(|id| {
                    bank.iter()
                        .find(|p| p.id() == id)
                        .unwrap()
                        .metadata()
                        .individual_test
                        .as_ref()
                        .unwrap()
                        .difficulty
                        .unwrap()
                        .value()
                })
                .sum::<f64>()
                / ids.len() as f64
        };
        assert!(
            (mean(&forms[0]) - mean(&forms[1])).abs() < 0.03,
            "form means {} vs {}",
            mean(&forms[0]),
            mean(&forms[1])
        );
    }

    #[test]
    fn parallel_forms_insufficient_bank_reports_missing_count() {
        let err = assemble_parallel_forms(&bank(), 3, 4).unwrap_err();
        assert_eq!(err, 6, "need 12, have 6");
        assert!(assemble_parallel_forms(&bank(), 0, 4).unwrap().is_empty());
    }

    #[test]
    fn three_forms_stay_balanced() {
        let bank: Vec<Problem> = (0..18)
            .map(|i| {
                problem(
                    &format!("p{i:02}"),
                    "s",
                    CognitionLevel::Knowledge,
                    Some(0.05 + 0.05 * i as f64),
                )
            })
            .collect();
        let forms = assemble_parallel_forms(&bank, 3, 6).unwrap();
        let means: Vec<f64> = forms
            .iter()
            .map(|ids| {
                ids.iter()
                    .map(|id| {
                        bank.iter()
                            .find(|p| p.id() == id)
                            .unwrap()
                            .metadata()
                            .individual_test
                            .as_ref()
                            .unwrap()
                            .difficulty
                            .unwrap()
                            .value()
                    })
                    .sum::<f64>()
                    / ids.len() as f64
            })
            .collect();
        let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.05, "means {means:?}");
    }
}
