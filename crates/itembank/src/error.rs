//! Error type of the item bank.

use std::error::Error as StdError;
use std::fmt;

use mine_core::CoreError;

/// Errors raised by problem construction, grading, and the repository.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BankError {
    /// No entity with the given identifier exists.
    NotFound {
        /// Entity kind ("problem", "exam", "template", …).
        kind: &'static str,
        /// The identifier looked up.
        id: String,
    },
    /// An entity with the same identifier already exists.
    Duplicate {
        /// Entity kind.
        kind: &'static str,
        /// The colliding identifier.
        id: String,
    },
    /// A problem definition failed validation.
    InvalidProblem {
        /// Which problem.
        id: String,
        /// Why it is invalid.
        reason: String,
    },
    /// An exam definition failed validation.
    InvalidExam {
        /// Which exam.
        id: String,
        /// Why it is invalid.
        reason: String,
    },
    /// An answer could not be graded against the problem type.
    AnswerMismatch {
        /// The problem being graded.
        problem: String,
        /// What kind of answer the problem expects.
        expected: &'static str,
    },
    /// A core vocabulary error surfaced.
    Core(CoreError),
}

impl fmt::Display for BankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BankError::NotFound { kind, id } => write!(f, "{kind} {id:?} not found"),
            BankError::Duplicate { kind, id } => write!(f, "{kind} {id:?} already exists"),
            BankError::InvalidProblem { id, reason } => {
                write!(f, "invalid problem {id:?}: {reason}")
            }
            BankError::InvalidExam { id, reason } => write!(f, "invalid exam {id:?}: {reason}"),
            BankError::AnswerMismatch { problem, expected } => {
                write!(
                    f,
                    "answer to {problem:?} does not match the expected {expected} form"
                )
            }
            BankError::Core(err) => write!(f, "core error: {err}"),
        }
    }
}

impl StdError for BankError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            BankError::Core(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoreError> for BankError {
    fn from(err: CoreError) -> Self {
        BankError::Core(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let err = BankError::NotFound {
            kind: "problem",
            id: "q9".into(),
        };
        assert_eq!(err.to_string(), "problem \"q9\" not found");
        let err = BankError::AnswerMismatch {
            problem: "q1".into(),
            expected: "choice",
        };
        assert!(err.to_string().contains("choice"));
    }

    #[test]
    fn wraps_core_errors() {
        let err: BankError = CoreError::InvalidOptionKey("9".into()).into();
        assert!(err.source().is_some());
    }
}
