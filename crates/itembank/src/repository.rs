//! The concurrent problem & exam repository.
//!
//! The paper's architecture has authors, instructors, and tutors all
//! working against the same *problem & exam database* while an
//! administrator controls it (§5). [`Repository`] is that database:
//! cheaply cloneable (shared state behind an `Arc`), reader-writer
//! locked, with an incrementally maintained [`SearchIndex`] and per-entity
//! version counters so concurrent editors can detect lost updates.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use mine_core::{ExamId, ProblemId, TemplateId};

use crate::error::BankError;
use crate::exam::Exam;
use crate::problem::Problem;
use crate::search::{Query, SearchHit, SearchIndex};
use crate::template::Template;

#[derive(Debug, Default)]
struct Inner {
    problems: BTreeMap<ProblemId, (Problem, u64)>,
    exams: BTreeMap<ExamId, (Exam, u64)>,
    templates: BTreeMap<TemplateId, Template>,
    index: SearchIndex,
}

/// The shared in-memory problem & exam database.
///
/// Cloning a `Repository` yields another handle to the *same* store.
///
/// # Examples
///
/// ```
/// use mine_itembank::{Problem, Query, Repository};
///
/// let repo = Repository::new();
/// repo.insert_problem(Problem::true_false("q1", "The earth is flat.", false)?)?;
/// let hits = repo.search(&Query::text("earth"));
/// assert_eq!(hits.len(), 1);
/// # Ok::<(), mine_itembank::BankError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Repository {
    inner: Arc<RwLock<Inner>>,
}

impl Repository {
    /// Creates an empty repository.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    // ----- problems -------------------------------------------------

    /// Inserts a new problem.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::Duplicate`] when the id is taken.
    pub fn insert_problem(&self, problem: Problem) -> Result<(), BankError> {
        let mut inner = self.inner.write();
        if inner.problems.contains_key(problem.id()) {
            return Err(BankError::Duplicate {
                kind: "problem",
                id: problem.id().to_string(),
            });
        }
        inner.index.insert(&problem);
        inner.problems.insert(problem.id().clone(), (problem, 1));
        Ok(())
    }

    /// Fetches a snapshot of a problem.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::NotFound`] when absent.
    pub fn problem(&self, id: &ProblemId) -> Result<Problem, BankError> {
        self.inner
            .read()
            .problems
            .get(id)
            .map(|(p, _)| p.clone())
            .ok_or_else(|| BankError::NotFound {
                kind: "problem",
                id: id.to_string(),
            })
    }

    /// The stored version of a problem (starts at 1, bumps on update).
    ///
    /// # Errors
    ///
    /// Returns [`BankError::NotFound`] when absent.
    pub fn problem_version(&self, id: &ProblemId) -> Result<u64, BankError> {
        self.inner
            .read()
            .problems
            .get(id)
            .map(|(_, v)| *v)
            .ok_or_else(|| BankError::NotFound {
                kind: "problem",
                id: id.to_string(),
            })
    }

    /// Edits a problem in place under the write lock.
    ///
    /// The closure may fail; the problem is revalidated afterwards and
    /// the version bumped on success.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::NotFound`] when absent, or any error from the
    /// closure / revalidation (in which case the stored problem is left
    /// unchanged).
    pub fn update_problem<F>(&self, id: &ProblemId, edit: F) -> Result<u64, BankError>
    where
        F: FnOnce(&mut Problem) -> Result<(), BankError>,
    {
        let mut inner = self.inner.write();
        let (stored, version) =
            inner
                .problems
                .get(id)
                .cloned()
                .ok_or_else(|| BankError::NotFound {
                    kind: "problem",
                    id: id.to_string(),
                })?;
        let mut edited = stored;
        edit(&mut edited)?;
        edited.validate()?;
        let new_version = version + 1;
        inner.index.insert(&edited);
        inner.problems.insert(id.clone(), (edited, new_version));
        Ok(new_version)
    }

    /// Removes a problem.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::NotFound`] when absent.
    pub fn remove_problem(&self, id: &ProblemId) -> Result<Problem, BankError> {
        let mut inner = self.inner.write();
        match inner.problems.remove(id) {
            Some((problem, _)) => {
                inner.index.remove(id);
                Ok(problem)
            }
            None => Err(BankError::NotFound {
                kind: "problem",
                id: id.to_string(),
            }),
        }
    }

    /// Number of stored problems.
    #[must_use]
    pub fn problem_count(&self) -> usize {
        self.inner.read().problems.len()
    }

    /// Snapshot of all problem ids, ordered.
    #[must_use]
    pub fn problem_ids(&self) -> Vec<ProblemId> {
        self.inner.read().problems.keys().cloned().collect()
    }

    /// Runs a search query against the index.
    #[must_use]
    pub fn search(&self, query: &Query) -> Vec<SearchHit> {
        self.inner.read().index.search(query)
    }

    /// Finds problems similar to the given one (§5 problem search).
    #[must_use]
    pub fn similar_to(&self, id: &ProblemId, limit: usize) -> Vec<SearchHit> {
        self.inner.read().index.similar_to(id, limit)
    }

    // ----- exams ----------------------------------------------------

    /// Inserts a new exam, verifying every referenced problem exists.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::Duplicate`] for a taken id and
    /// [`BankError::NotFound`] for a dangling problem reference.
    pub fn insert_exam(&self, exam: Exam) -> Result<(), BankError> {
        let mut inner = self.inner.write();
        if inner.exams.contains_key(exam.id()) {
            return Err(BankError::Duplicate {
                kind: "exam",
                id: exam.id().to_string(),
            });
        }
        for problem in exam.problem_ids() {
            if !inner.problems.contains_key(&problem) {
                return Err(BankError::NotFound {
                    kind: "problem",
                    id: problem.to_string(),
                });
            }
        }
        inner.exams.insert(exam.id().clone(), (exam, 1));
        Ok(())
    }

    /// Fetches a snapshot of an exam.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::NotFound`] when absent.
    pub fn exam(&self, id: &ExamId) -> Result<Exam, BankError> {
        self.inner
            .read()
            .exams
            .get(id)
            .map(|(e, _)| e.clone())
            .ok_or_else(|| BankError::NotFound {
                kind: "exam",
                id: id.to_string(),
            })
    }

    /// Edits an exam in place under the write lock (revalidated; version
    /// bumped).
    ///
    /// # Errors
    ///
    /// Returns [`BankError::NotFound`] when absent, or any error from the
    /// closure / revalidation.
    pub fn update_exam<F>(&self, id: &ExamId, edit: F) -> Result<u64, BankError>
    where
        F: FnOnce(&mut Exam) -> Result<(), BankError>,
    {
        let mut inner = self.inner.write();
        let (stored, version) =
            inner
                .exams
                .get(id)
                .cloned()
                .ok_or_else(|| BankError::NotFound {
                    kind: "exam",
                    id: id.to_string(),
                })?;
        let mut edited = stored;
        edit(&mut edited)?;
        edited.validate()?;
        for problem in edited.problem_ids() {
            if !inner.problems.contains_key(&problem) {
                return Err(BankError::NotFound {
                    kind: "problem",
                    id: problem.to_string(),
                });
            }
        }
        let new_version = version + 1;
        inner.exams.insert(id.clone(), (edited, new_version));
        Ok(new_version)
    }

    /// Removes an exam.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::NotFound`] when absent.
    pub fn remove_exam(&self, id: &ExamId) -> Result<Exam, BankError> {
        self.inner
            .write()
            .exams
            .remove(id)
            .map(|(e, _)| e)
            .ok_or_else(|| BankError::NotFound {
                kind: "exam",
                id: id.to_string(),
            })
    }

    /// Number of stored exams.
    #[must_use]
    pub fn exam_count(&self) -> usize {
        self.inner.read().exams.len()
    }

    /// Snapshot of all exam ids, ordered.
    #[must_use]
    pub fn exam_ids(&self) -> Vec<ExamId> {
        self.inner.read().exams.keys().cloned().collect()
    }

    /// Resolves an exam to its problems, in entry order.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::NotFound`] for a missing exam or a dangling
    /// problem reference.
    pub fn resolve_exam(&self, id: &ExamId) -> Result<(Exam, Vec<Problem>), BankError> {
        let inner = self.inner.read();
        let (exam, _) = inner.exams.get(id).ok_or_else(|| BankError::NotFound {
            kind: "exam",
            id: id.to_string(),
        })?;
        let mut problems = Vec::with_capacity(exam.len());
        for pid in exam.problem_ids() {
            let (problem, _) = inner
                .problems
                .get(&pid)
                .ok_or_else(|| BankError::NotFound {
                    kind: "problem",
                    id: pid.to_string(),
                })?;
            problems.push(problem.clone());
        }
        Ok((exam.clone(), problems))
    }

    // ----- templates ------------------------------------------------

    /// Inserts a template.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::Duplicate`] when the id is taken.
    pub fn insert_template(&self, template: Template) -> Result<(), BankError> {
        let mut inner = self.inner.write();
        if inner.templates.contains_key(template.id()) {
            return Err(BankError::Duplicate {
                kind: "template",
                id: template.id().to_string(),
            });
        }
        inner.templates.insert(template.id().clone(), template);
        Ok(())
    }

    /// Fetches a snapshot of a template.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::NotFound`] when absent.
    pub fn template(&self, id: &TemplateId) -> Result<Template, BankError> {
        self.inner
            .read()
            .templates
            .get(id)
            .cloned()
            .ok_or_else(|| BankError::NotFound {
                kind: "template",
                id: id.to_string(),
            })
    }

    /// Removes a template ("he can delete an existed template", §5.3).
    ///
    /// # Errors
    ///
    /// Returns [`BankError::NotFound`] when absent.
    pub fn remove_template(&self, id: &TemplateId) -> Result<Template, BankError> {
        self.inner
            .write()
            .templates
            .remove(id)
            .ok_or_else(|| BankError::NotFound {
                kind: "template",
                id: id.to_string(),
            })
    }

    /// Number of stored templates.
    #[must_use]
    pub fn template_count(&self) -> usize {
        self.inner.read().templates.len()
    }

    /// Snapshot of all templates, ordered by id (persistence helper).
    #[must_use]
    pub fn template_snapshot(&self) -> Vec<Template> {
        self.inner.read().templates.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exam::ExamEntry;
    use crate::problem::ChoiceOption;
    use mine_core::OptionKey;

    fn repo_with_problems(n: usize) -> Repository {
        let repo = Repository::new();
        for i in 0..n {
            repo.insert_problem(
                Problem::true_false(
                    format!("q{i}"),
                    format!("Statement {i} is true."),
                    i % 2 == 0,
                )
                .unwrap()
                .with_subject("general"),
            )
            .unwrap();
        }
        repo
    }

    #[test]
    fn insert_get_remove_problem() {
        let repo = repo_with_problems(3);
        assert_eq!(repo.problem_count(), 3);
        let p = repo.problem(&"q1".parse().unwrap()).unwrap();
        assert_eq!(p.id().as_str(), "q1");
        assert!(repo.remove_problem(&"q1".parse().unwrap()).is_ok());
        assert!(repo.problem(&"q1".parse().unwrap()).is_err());
        assert_eq!(repo.problem_count(), 2);
    }

    #[test]
    fn duplicate_problem_rejected() {
        let repo = repo_with_problems(1);
        let dup = Problem::true_false("q0", "again", true).unwrap();
        assert!(matches!(
            repo.insert_problem(dup),
            Err(BankError::Duplicate { .. })
        ));
    }

    #[test]
    fn update_bumps_version_and_reindexes() {
        let repo = repo_with_problems(1);
        let id: ProblemId = "q0".parse().unwrap();
        assert_eq!(repo.problem_version(&id).unwrap(), 1);
        let v = repo
            .update_problem(&id, |p| {
                p.set_subject("updated-subject");
                Ok(())
            })
            .unwrap();
        assert_eq!(v, 2);
        assert_eq!(repo.problem_version(&id).unwrap(), 2);
        let hits = repo.search(&Query::builder().subject("updated-subject").build());
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn failed_update_leaves_problem_unchanged() {
        let repo = repo_with_problems(1);
        let id: ProblemId = "q0".parse().unwrap();
        let result = repo.update_problem(&id, |p| {
            p.set_subject("poisoned");
            Err(BankError::InvalidProblem {
                id: id.to_string(),
                reason: "synthetic failure".into(),
            })
        });
        assert!(result.is_err());
        assert_eq!(repo.problem(&id).unwrap().subject().as_str(), "general");
        assert_eq!(repo.problem_version(&id).unwrap(), 1);
    }

    #[test]
    fn exam_requires_existing_problems() {
        let repo = repo_with_problems(2);
        let dangling = Exam::builder("e1")
            .unwrap()
            .entry("ghost".parse().unwrap())
            .build()
            .unwrap();
        assert!(matches!(
            repo.insert_exam(dangling),
            Err(BankError::NotFound { .. })
        ));
        let good = Exam::builder("e1")
            .unwrap()
            .entry("q0".parse().unwrap())
            .entry("q1".parse().unwrap())
            .build()
            .unwrap();
        repo.insert_exam(good).unwrap();
        assert_eq!(repo.exam_count(), 1);
    }

    #[test]
    fn resolve_exam_returns_problems_in_order() {
        let repo = repo_with_problems(3);
        let exam = Exam::builder("e")
            .unwrap()
            .entry("q2".parse().unwrap())
            .entry("q0".parse().unwrap())
            .build()
            .unwrap();
        repo.insert_exam(exam).unwrap();
        let (exam, problems) = repo.resolve_exam(&"e".parse().unwrap()).unwrap();
        assert_eq!(exam.len(), 2);
        let ids: Vec<_> = problems
            .iter()
            .map(|p| p.id().as_str().to_string())
            .collect();
        assert_eq!(ids, vec!["q2", "q0"]);
    }

    #[test]
    fn update_exam_validates_problem_refs() {
        let repo = repo_with_problems(2);
        let exam = Exam::builder("e")
            .unwrap()
            .entry("q0".parse().unwrap())
            .build()
            .unwrap();
        repo.insert_exam(exam).unwrap();
        let id: ExamId = "e".parse().unwrap();
        let err = repo.update_exam(&id, |e| {
            e.push_entry(ExamEntry::new("ghost".parse().unwrap()))
        });
        assert!(err.is_err());
        // Unchanged.
        assert_eq!(repo.exam(&id).unwrap().len(), 1);
        let v = repo
            .update_exam(&id, |e| e.push_entry(ExamEntry::new("q1".parse().unwrap())))
            .unwrap();
        assert_eq!(v, 2);
        assert_eq!(repo.exam(&id).unwrap().len(), 2);
    }

    #[test]
    fn templates_crud() {
        let repo = Repository::new();
        let t = Template::new("t1".parse().unwrap(), "layout");
        repo.insert_template(t.clone()).unwrap();
        assert!(matches!(
            repo.insert_template(t.clone()),
            Err(BankError::Duplicate { .. })
        ));
        assert_eq!(repo.template_count(), 1);
        assert_eq!(
            repo.template(&"t1".parse().unwrap()).unwrap().name(),
            "layout"
        );
        repo.remove_template(&"t1".parse().unwrap()).unwrap();
        assert!(repo.template(&"t1".parse().unwrap()).is_err());
    }

    #[test]
    fn clones_share_state() {
        let repo = repo_with_problems(1);
        let other = repo.clone();
        other
            .insert_problem(Problem::true_false("shared", "s", true).unwrap())
            .unwrap();
        assert_eq!(repo.problem_count(), 2);
    }

    #[test]
    fn concurrent_inserts_from_threads() {
        let repo = Repository::new();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let repo = repo.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        repo.insert_problem(
                            Problem::true_false(format!("t{t}-q{i}"), "x", true).unwrap(),
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(repo.problem_count(), 400);
        let mc = Problem::multiple_choice(
            "probe",
            "probe?",
            [
                ChoiceOption::new(OptionKey::A, "a"),
                ChoiceOption::new(OptionKey::B, "b"),
            ],
            OptionKey::A,
        )
        .unwrap();
        repo.insert_problem(mc).unwrap();
        assert_eq!(repo.problem_count(), 401);
    }

    #[test]
    fn search_is_kept_in_sync() {
        let repo = repo_with_problems(2);
        assert_eq!(repo.search(&Query::text("statement")).len(), 2);
        repo.remove_problem(&"q0".parse().unwrap()).unwrap();
        assert_eq!(repo.search(&Query::text("statement")).len(), 1);
    }
}
