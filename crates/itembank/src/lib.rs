//! The problem & exam database of the authoring system (§5.1–§5.4).
//!
//! The paper's architecture (§5) centres on an *internal problem and exam
//! database* that authors, instructors and tutors search and edit. This
//! crate provides that database:
//!
//! * [`Problem`] — one question with typed content ([`ProblemBody`]),
//!   MINE metadata, points, and mechanical grading for objective styles
//!   (§5.1: choice, fill-in-blank, true-false; plus the §3.2 styles),
//! * [`Template`] — reusable presentation layouts with positioned media
//!   (§5.3),
//! * [`Exam`] — an ordered set of problems with presentation-style
//!   groups (§5.4's *group service*),
//! * [`SearchIndex`]/[`Query`] — "search similar or specific subject or
//!   related problems" (§5),
//! * [`Repository`] — a concurrent in-memory store with versioning.
//!
//! # Examples
//!
//! ```
//! use mine_core::OptionKey;
//! use mine_itembank::{ChoiceOption, Problem, Repository};
//!
//! let repo = Repository::new();
//! let problem = Problem::multiple_choice(
//!     "q1",
//!     "Which layer does TCP live in?",
//!     [
//!         ChoiceOption::new(OptionKey::A, "Transport"),
//!         ChoiceOption::new(OptionKey::B, "Network"),
//!     ],
//!     OptionKey::A,
//! )?;
//! repo.insert_problem(problem)?;
//! assert_eq!(repo.problem_count(), 1);
//! # Ok::<(), mine_itembank::BankError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assemble;
pub mod error;
pub mod exam;
pub mod persist;
pub mod problem;
pub mod repository;
pub mod search;
pub mod template;

pub use assemble::{assemble_from_blueprint, assemble_parallel_forms, Blueprint};
pub use error::BankError;
pub use exam::{Exam, ExamBuilder, ExamEntry, GroupStyle, PresentationGroup};
pub use persist::RepositorySnapshot;
pub use problem::{Calibration, ChoiceOption, Grade, MatchPairs, Problem, ProblemBody};
pub use repository::Repository;
pub use search::{Query, QueryBuilder, SearchHit, SearchIndex};
pub use template::{LayoutSlot, Position, Template};
