//! Repository persistence: snapshot the whole database to JSON and
//! restore it.
//!
//! The paper's system keeps its problems and exams in a database behind
//! the authoring tools (§5); this module gives the in-memory
//! [`Repository`] a durable form — a [`RepositorySnapshot`] that
//! serializes with serde and round-trips through a file.

use std::io::{Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::error::BankError;
use crate::exam::Exam;
use crate::problem::Problem;
use crate::repository::Repository;
use crate::template::Template;

/// A point-in-time copy of everything in a repository.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RepositorySnapshot {
    /// Schema version of the snapshot format.
    pub format_version: u32,
    /// All problems.
    pub problems: Vec<Problem>,
    /// All exams.
    pub exams: Vec<Exam>,
    /// All templates.
    pub templates: Vec<Template>,
}

/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

impl RepositorySnapshot {
    /// Takes a snapshot of a repository.
    #[must_use]
    pub fn capture(repository: &Repository) -> Self {
        let problems = repository
            .problem_ids()
            .into_iter()
            .filter_map(|id| repository.problem(&id).ok())
            .collect();
        let exams = repository
            .exam_ids()
            .into_iter()
            .filter_map(|id| repository.exam(&id).ok())
            .collect();
        let templates = repository.template_snapshot();
        Self {
            format_version: FORMAT_VERSION,
            problems,
            exams,
            templates,
        }
    }

    /// Restores a snapshot into a fresh repository.
    ///
    /// # Errors
    ///
    /// Returns [`BankError`] when the snapshot's contents fail
    /// validation (e.g. duplicate ids, dangling exam references).
    pub fn restore(&self) -> Result<Repository, BankError> {
        let repository = Repository::new();
        for problem in &self.problems {
            repository.insert_problem(problem.clone())?;
        }
        for template in &self.templates {
            repository.insert_template(template.clone())?;
        }
        for exam in &self.exams {
            repository.insert_exam(exam.clone())?;
        }
        Ok(repository)
    }

    /// Serializes the snapshot as pretty JSON to a writer.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on write or encoding failure.
    pub fn write_json<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err))?;
        writer.write_all(json.as_bytes())
    }

    /// Parses a snapshot from a JSON reader.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on read or decoding failure (including
    /// an unsupported `format_version`).
    pub fn read_json<R: Read>(mut reader: R) -> std::io::Result<Self> {
        let mut text = String::new();
        reader.read_to_string(&mut text)?;
        let snapshot: Self = serde_json::from_str(&text)
            .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err))?;
        if snapshot.format_version > FORMAT_VERSION {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "snapshot format {} is newer than supported {}",
                    snapshot.format_version, FORMAT_VERSION
                ),
            ));
        }
        Ok(snapshot)
    }

    /// Saves the snapshot to a file atomically.
    ///
    /// The snapshot is written to a temporary sibling file, fsynced, and
    /// then renamed over the target, so a crash mid-save can never leave
    /// a torn repository file: readers see either the old complete
    /// snapshot or the new complete snapshot, never a prefix.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on filesystem failure. On error the
    /// temporary file is removed and the target is left untouched.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let mut json = Vec::new();
        self.write_json(&mut json)?;
        atomic_write(path, &json)
    }

    /// Loads a snapshot from a file.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on filesystem or decoding failure.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        Self::read_json(std::io::BufReader::new(file))
    }
}

/// Sequence number distinguishing concurrent saves within one process.
static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: temp sibling + fsync + rename.
///
/// The temp file lives in the target's directory so the rename never
/// crosses filesystems (cross-device renames are not atomic).
fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let directory = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("snapshot path {} has no file name", path.display()),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp_name = format!(".{file_name}.tmp.{}.{seq}", std::process::id());
    let tmp_path = match directory {
        Some(dir) => dir.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };

    let result = (|| {
        let mut file = std::fs::File::create(&tmp_path)?;
        file.write_all(bytes)?;
        // Flush file contents to stable storage before the rename makes
        // the new snapshot visible; otherwise a power loss could expose
        // a renamed-but-empty file.
        file.sync_all()?;
        std::fs::rename(&tmp_path, path)
    })();
    if result.is_err() {
        // Best-effort cleanup; the original error is what matters.
        let _ = std::fs::remove_file(&tmp_path);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exam::ExamEntry;
    use mine_core::OptionKey;

    fn loaded_repository() -> Repository {
        let repo = Repository::new();
        for i in 0..6 {
            repo.insert_problem(
                Problem::multiple_choice(
                    format!("q{i}"),
                    format!("Question {i}"),
                    OptionKey::first(4)
                        .map(|k| crate::problem::ChoiceOption::new(k, format!("{k}"))),
                    OptionKey::A,
                )
                .unwrap()
                .with_subject("persist"),
            )
            .unwrap();
        }
        repo.insert_template(Template::new("t1".parse().unwrap(), "layout"))
            .unwrap();
        let exam = Exam::builder("persisted-exam")
            .unwrap()
            .entry_with(ExamEntry::new("q0".parse().unwrap()).worth(2.0))
            .entry("q1".parse().unwrap())
            .build()
            .unwrap();
        repo.insert_exam(exam).unwrap();
        repo
    }

    #[test]
    fn capture_restore_round_trip() {
        let repo = loaded_repository();
        let snapshot = RepositorySnapshot::capture(&repo);
        assert_eq!(snapshot.problems.len(), 6);
        assert_eq!(snapshot.exams.len(), 1);
        assert_eq!(snapshot.templates.len(), 1);

        let restored = snapshot.restore().unwrap();
        assert_eq!(restored.problem_count(), 6);
        assert_eq!(restored.exam_count(), 1);
        assert_eq!(restored.template_count(), 1);
        assert_eq!(
            restored.problem(&"q3".parse().unwrap()).unwrap(),
            repo.problem(&"q3".parse().unwrap()).unwrap()
        );
        // Search works after restore.
        assert_eq!(
            restored
                .search(&crate::search::Query::text("persist"))
                .len(),
            6
        );
    }

    #[test]
    fn json_round_trip_through_memory() {
        let snapshot = RepositorySnapshot::capture(&loaded_repository());
        let mut buffer = Vec::new();
        snapshot.write_json(&mut buffer).unwrap();
        let back = RepositorySnapshot::read_json(buffer.as_slice()).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn file_round_trip() {
        let snapshot = RepositorySnapshot::capture(&loaded_repository());
        let dir = std::env::temp_dir().join(format!("mine-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bank.json");
        snapshot.save(&path).unwrap();
        let back = RepositorySnapshot::load(&path).unwrap();
        assert_eq!(back, snapshot);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_of_a_zero_byte_file_is_a_clean_error() {
        let dir = std::env::temp_dir().join(format!("mine-persist-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bank.json");
        std::fs::write(&path, b"").unwrap();
        let err = RepositorySnapshot::load(&path).expect_err("empty file must not parse");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A crash mid-copy (or a non-atomic writer) leaves a JSON prefix;
    /// `load` must report it as a decode error at every cut point, never
    /// panic or return a half-parsed repository.
    #[test]
    fn load_of_a_mid_json_truncated_file_is_a_clean_error() {
        let dir = std::env::temp_dir().join(format!("mine-persist-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bank.json");
        RepositorySnapshot::capture(&loaded_repository())
            .save(&path)
            .unwrap();
        let whole = std::fs::read(&path).unwrap();
        assert!(
            whole.len() > 100,
            "fixture too small to truncate meaningfully"
        );
        for keep in [1, whole.len() / 4, whole.len() / 2, whole.len() - 1] {
            let cut = dir.join("cut.json");
            std::fs::write(&cut, &whole[..keep]).unwrap();
            let err =
                RepositorySnapshot::load(&cut).expect_err("truncated snapshot must not parse");
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::InvalidData,
                "{keep} byte(s): {err}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let snapshot = RepositorySnapshot::capture(&loaded_repository());
        let dir = std::env::temp_dir().join(format!("mine-persist-tmp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bank.json");
        snapshot.save(&path).unwrap();
        snapshot.save(&path).unwrap(); // overwrite path too
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec!["bank.json".to_string()],
            "stray files: {names:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_save_leaves_existing_target_untouched() {
        let dir = std::env::temp_dir().join(format!("mine-persist-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bank.json");
        let original = RepositorySnapshot::capture(&loaded_repository());
        original.save(&path).unwrap();
        // Saving over a path whose file name is a directory fails at the
        // rename step — after the temp file was fully written.
        let blocked = dir.join("blocked");
        std::fs::create_dir_all(&blocked).unwrap();
        assert!(RepositorySnapshot::default().save(&blocked).is_err());
        // The target of the earlier save is intact and no temp remains.
        assert_eq!(RepositorySnapshot::load(&path).unwrap(), original);
        let strays: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "stray temp files: {strays:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Concurrent readers racing a writer must only ever observe a
    /// complete snapshot — the atomicity guarantee `save` documents.
    /// With a non-atomic `File::create` + write, a reader opening the
    /// file mid-write would see a prefix and fail to parse.
    #[test]
    fn concurrent_loads_never_see_a_torn_snapshot() {
        let dir = std::env::temp_dir().join(format!("mine-persist-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bank.json");

        let small = RepositorySnapshot::capture(&loaded_repository());
        let big = {
            let repo = loaded_repository();
            for i in 6..120 {
                repo.insert_problem(
                    Problem::true_false(format!("q{i}"), format!("Filler statement {i}."), true)
                        .unwrap(),
                )
                .unwrap();
            }
            RepositorySnapshot::capture(&repo)
        };
        small.save(&path).unwrap();

        let writer = {
            let (path, small, big) = (path.clone(), small.clone(), big.clone());
            std::thread::spawn(move || {
                for i in 0..60 {
                    let snapshot = if i % 2 == 0 { &big } else { &small };
                    snapshot.save(&path).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let (path, small, big) = (path.clone(), small.clone(), big.clone());
                std::thread::spawn(move || {
                    for _ in 0..60 {
                        let loaded = RepositorySnapshot::load(&path)
                            .expect("a load raced a save and saw a torn file");
                        assert!(
                            loaded == small || loaded == big,
                            "loaded snapshot is neither saved variant"
                        );
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for reader in readers {
            reader.join().unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(RepositorySnapshot::read_json("not json".as_bytes()).is_err());
        assert!(RepositorySnapshot::read_json("{\"truncated\":".as_bytes()).is_err());
    }

    #[test]
    fn future_format_version_is_rejected() {
        let mut snapshot = RepositorySnapshot::capture(&loaded_repository());
        snapshot.format_version = FORMAT_VERSION + 1;
        let mut buffer = Vec::new();
        snapshot.write_json(&mut buffer).unwrap();
        assert!(RepositorySnapshot::read_json(buffer.as_slice()).is_err());
    }

    #[test]
    fn snapshot_with_dangling_exam_fails_restore() {
        let mut snapshot = RepositorySnapshot::capture(&loaded_repository());
        snapshot.problems.clear();
        assert!(snapshot.restore().is_err());
    }

    #[test]
    fn empty_snapshot_restores_empty_repository() {
        let restored = RepositorySnapshot::default().restore().unwrap();
        assert_eq!(restored.problem_count(), 0);
    }
}
