//! Repository persistence: snapshot the whole database to JSON and
//! restore it.
//!
//! The paper's system keeps its problems and exams in a database behind
//! the authoring tools (§5); this module gives the in-memory
//! [`Repository`] a durable form — a [`RepositorySnapshot`] that
//! serializes with serde and round-trips through a file.

use std::io::{Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::error::BankError;
use crate::exam::Exam;
use crate::problem::Problem;
use crate::repository::Repository;
use crate::template::Template;

/// A point-in-time copy of everything in a repository.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RepositorySnapshot {
    /// Schema version of the snapshot format.
    pub format_version: u32,
    /// All problems.
    pub problems: Vec<Problem>,
    /// All exams.
    pub exams: Vec<Exam>,
    /// All templates.
    pub templates: Vec<Template>,
}

/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

impl RepositorySnapshot {
    /// Takes a snapshot of a repository.
    #[must_use]
    pub fn capture(repository: &Repository) -> Self {
        let problems = repository
            .problem_ids()
            .into_iter()
            .filter_map(|id| repository.problem(&id).ok())
            .collect();
        let exams = repository
            .exam_ids()
            .into_iter()
            .filter_map(|id| repository.exam(&id).ok())
            .collect();
        let templates = repository.template_snapshot();
        Self {
            format_version: FORMAT_VERSION,
            problems,
            exams,
            templates,
        }
    }

    /// Restores a snapshot into a fresh repository.
    ///
    /// # Errors
    ///
    /// Returns [`BankError`] when the snapshot's contents fail
    /// validation (e.g. duplicate ids, dangling exam references).
    pub fn restore(&self) -> Result<Repository, BankError> {
        let repository = Repository::new();
        for problem in &self.problems {
            repository.insert_problem(problem.clone())?;
        }
        for template in &self.templates {
            repository.insert_template(template.clone())?;
        }
        for exam in &self.exams {
            repository.insert_exam(exam.clone())?;
        }
        Ok(repository)
    }

    /// Serializes the snapshot as pretty JSON to a writer.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on write or encoding failure.
    pub fn write_json<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err))?;
        writer.write_all(json.as_bytes())
    }

    /// Parses a snapshot from a JSON reader.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on read or decoding failure (including
    /// an unsupported `format_version`).
    pub fn read_json<R: Read>(mut reader: R) -> std::io::Result<Self> {
        let mut text = String::new();
        reader.read_to_string(&mut text)?;
        let snapshot: Self = serde_json::from_str(&text)
            .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err))?;
        if snapshot.format_version > FORMAT_VERSION {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "snapshot format {} is newer than supported {}",
                    snapshot.format_version, FORMAT_VERSION
                ),
            ));
        }
        Ok(snapshot)
    }

    /// Saves the snapshot to a file.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_json(std::io::BufWriter::new(file))
    }

    /// Loads a snapshot from a file.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on filesystem or decoding failure.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        Self::read_json(std::io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exam::ExamEntry;
    use mine_core::OptionKey;

    fn loaded_repository() -> Repository {
        let repo = Repository::new();
        for i in 0..6 {
            repo.insert_problem(
                Problem::multiple_choice(
                    format!("q{i}"),
                    format!("Question {i}"),
                    OptionKey::first(4)
                        .map(|k| crate::problem::ChoiceOption::new(k, format!("{k}"))),
                    OptionKey::A,
                )
                .unwrap()
                .with_subject("persist"),
            )
            .unwrap();
        }
        repo.insert_template(Template::new("t1".parse().unwrap(), "layout"))
            .unwrap();
        let exam = Exam::builder("persisted-exam")
            .unwrap()
            .entry_with(ExamEntry::new("q0".parse().unwrap()).worth(2.0))
            .entry("q1".parse().unwrap())
            .build()
            .unwrap();
        repo.insert_exam(exam).unwrap();
        repo
    }

    #[test]
    fn capture_restore_round_trip() {
        let repo = loaded_repository();
        let snapshot = RepositorySnapshot::capture(&repo);
        assert_eq!(snapshot.problems.len(), 6);
        assert_eq!(snapshot.exams.len(), 1);
        assert_eq!(snapshot.templates.len(), 1);

        let restored = snapshot.restore().unwrap();
        assert_eq!(restored.problem_count(), 6);
        assert_eq!(restored.exam_count(), 1);
        assert_eq!(restored.template_count(), 1);
        assert_eq!(
            restored.problem(&"q3".parse().unwrap()).unwrap(),
            repo.problem(&"q3".parse().unwrap()).unwrap()
        );
        // Search works after restore.
        assert_eq!(
            restored
                .search(&crate::search::Query::text("persist"))
                .len(),
            6
        );
    }

    #[test]
    fn json_round_trip_through_memory() {
        let snapshot = RepositorySnapshot::capture(&loaded_repository());
        let mut buffer = Vec::new();
        snapshot.write_json(&mut buffer).unwrap();
        let back = RepositorySnapshot::read_json(buffer.as_slice()).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn file_round_trip() {
        let snapshot = RepositorySnapshot::capture(&loaded_repository());
        let dir = std::env::temp_dir().join(format!("mine-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bank.json");
        snapshot.save(&path).unwrap();
        let back = RepositorySnapshot::load(&path).unwrap();
        assert_eq!(back, snapshot);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(RepositorySnapshot::read_json("not json".as_bytes()).is_err());
        assert!(RepositorySnapshot::read_json("{\"truncated\":".as_bytes()).is_err());
    }

    #[test]
    fn future_format_version_is_rejected() {
        let mut snapshot = RepositorySnapshot::capture(&loaded_repository());
        snapshot.format_version = FORMAT_VERSION + 1;
        let mut buffer = Vec::new();
        snapshot.write_json(&mut buffer).unwrap();
        assert!(RepositorySnapshot::read_json(buffer.as_slice()).is_err());
    }

    #[test]
    fn snapshot_with_dangling_exam_fails_restore() {
        let mut snapshot = RepositorySnapshot::capture(&loaded_repository());
        snapshot.problems.clear();
        assert!(snapshot.restore().is_err());
    }

    #[test]
    fn empty_snapshot_restores_empty_repository() {
        let restored = RepositorySnapshot::default().restore().unwrap();
        assert_eq!(restored.problem_count(), 0);
    }
}
