//! Regression test for the nested-pool serialization bug: a batch with
//! a *single* exam must still spread its per-question work across the
//! pool's workers.
//!
//! The old `analyze_batch` special-cased `jobs.len() <= 1` into a
//! sequential loop and, on the parallel path, pinned each job's inner
//! per-question map to an `install(1)` pool — so the common "one big
//! sitting" case never used more than one thread. Since the rework both
//! layers feed the same work-stealing deques, so the questions of a
//! lone job are stolen by idle workers.

use mine_analysis::{AnalysisConfig, BatchAnalyzer};
use mine_core::{CognitionLevel, OptionKey};
use mine_itembank::{ChoiceOption, Exam, Problem};
use mine_simulator::{CohortSpec, Simulation};

#[test]
fn single_job_batch_spreads_questions_over_workers() {
    // A heavy sitting: enough students and questions that per-question
    // chunks are still queued while the submitting thread works.
    let n_questions = 64;
    let problems: Vec<Problem> = (0..n_questions)
        .map(|i| {
            Problem::multiple_choice(
                format!("q{i}"),
                format!("Question {i}"),
                OptionKey::first(6).map(|k| ChoiceOption::new(k, format!("{k}"))),
                OptionKey::A,
            )
            .unwrap()
            .with_cognition_level(CognitionLevel::ALL[i % 6])
        })
        .collect();
    let mut builder = Exam::builder("single-job").unwrap();
    for i in 0..n_questions {
        builder = builder.entry(format!("q{i}").parse().unwrap());
    }
    let record = Simulation::new(builder.build().unwrap(), problems.clone())
        .cohort(CohortSpec::new(1200).ability(0.0, 1.2).seed(11))
        .run()
        .unwrap();
    let records = vec![record];

    let analyzer = BatchAnalyzer::new(AnalysisConfig::default())
        .with_threads(8)
        .with_cache_capacity(0);

    // Workers race the submitting thread for chunks, so on a loaded or
    // single-core machine any one round may be swallowed whole by the
    // creator. Accumulate over rounds: the bug under test is *structural*
    // (worker deques never see single-job work at all), so with the fix
    // two distinct workers execute chunks almost immediately, while the
    // bugged code never passes no matter how long it retries.
    let mut busy_workers = std::collections::HashSet::new();
    for _round in 0..50 {
        let before = mine_pool::stats().executed_per_worker;
        let report = analyzer.analyze_records(&records, &problems).unwrap();
        assert_eq!(report.analyses.len(), 1);
        let after = mine_pool::stats().executed_per_worker;
        for (worker, &count) in after.iter().enumerate() {
            if count > before.get(worker).copied().unwrap_or(0) {
                busy_workers.insert(worker);
            }
        }
        if busy_workers.len() >= 2 {
            break;
        }
    }
    assert!(
        busy_workers.len() >= 2,
        "an 8-thread single-job batch must parallelize per-question; \
         workers that executed chunks: {busy_workers:?}"
    );
}
