//! Pooled analysis must be byte-for-byte identical to a sequential run,
//! whatever thread budget the batch is given.
//!
//! The scheduler writes each question's result into a pre-sized slot by
//! input index, so scheduling order must never leak into the report.
//! These properties pin that down across thread counts, random exam
//! shapes, and per-question costs skewed by wildly different option
//! counts (which is what makes chunks finish out of order).

use proptest::prelude::*;

use mine_analysis::{AnalysisConfig, BatchAnalyzer};
use mine_core::{CognitionLevel, OptionKey};
use mine_itembank::{ChoiceOption, Exam, Problem};
use mine_simulator::{CohortSpec, Simulation};

/// Questions whose per-question analysis cost is deliberately skewed:
/// option counts cycle 2..=6, so option-matrix work differs per item.
fn skewed_problems(n_questions: usize) -> Vec<Problem> {
    (0..n_questions)
        .map(|i| {
            let n_options = 2 + i % 5;
            Problem::multiple_choice(
                format!("q{i}"),
                format!("Question {i}"),
                OptionKey::first(n_options).map(|k| ChoiceOption::new(k, format!("{k}"))),
                OptionKey::A,
            )
            .unwrap()
            .with_subject(format!("subject{}", i % 3))
            .with_cognition_level(CognitionLevel::ALL[i % 6])
        })
        .collect()
}

fn exam(n_questions: usize) -> Exam {
    let mut builder = Exam::builder("pool-exam").unwrap();
    for i in 0..n_questions {
        builder = builder.entry(format!("q{i}").parse().unwrap());
    }
    builder.build().unwrap()
}

/// An uncached analyzer: every run recomputes, so the comparison
/// exercises the pool instead of the cache.
fn analyzer(threads: usize) -> BatchAnalyzer {
    BatchAnalyzer::new(AnalysisConfig::default())
        .with_threads(threads)
        .with_cache_capacity(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One analyzer per thread count, identical serialized reports.
    #[test]
    fn pooled_analysis_is_byte_identical_across_thread_counts(
        class in 8usize..48,
        n_questions in 2usize..12,
        cohorts in 1usize..4,
        seed in 0u64..1000,
    ) {
        let problems = skewed_problems(n_questions);
        let records: Vec<_> = (0..cohorts)
            .map(|i| {
                Simulation::new(exam(n_questions), problems.clone())
                    .cohort(CohortSpec::new(class).seed(seed.wrapping_add(i as u64)))
                    .run()
                    .unwrap()
            })
            .collect();

        let reference = serde_json::to_string(
            &analyzer(1).analyze_records(&records, &problems).unwrap(),
        )
        .unwrap();
        for threads in [2usize, 4, 8] {
            let pooled = serde_json::to_string(
                &analyzer(threads).analyze_records(&records, &problems).unwrap(),
            )
            .unwrap();
            prop_assert!(
                pooled == reference,
                "report differs between 1 and {} threads", threads
            );
        }
    }

    /// Repeating the same pooled run is stable with itself — scheduling
    /// noise between runs never reaches the report.
    #[test]
    fn pooled_analysis_is_stable_across_runs(
        class in 8usize..32,
        n_questions in 2usize..10,
        seed in 0u64..1000,
    ) {
        let problems = skewed_problems(n_questions);
        let record = Simulation::new(exam(n_questions), problems.clone())
            .cohort(CohortSpec::new(class).seed(seed))
            .run()
            .unwrap();
        let records = vec![record];
        let first = serde_json::to_string(
            &analyzer(8).analyze_records(&records, &problems).unwrap(),
        )
        .unwrap();
        for _ in 0..3 {
            let again = serde_json::to_string(
                &analyzer(8).analyze_records(&records, &problems).unwrap(),
            )
            .unwrap();
            prop_assert!(again == first, "pooled rerun diverged");
        }
    }
}
