//! Error type of the analysis model.

use std::error::Error as StdError;
use std::fmt;

use mine_core::CoreError;

/// Errors raised while analyzing exam records.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The record holds no students.
    EmptyRecord,
    /// The class is too small to form distinct high/low groups.
    ClassTooSmall {
        /// Students present.
        class_size: usize,
    },
    /// A student's record lacks a response to an exam problem.
    MissingResponse {
        /// The student.
        student: String,
        /// The problem.
        problem: String,
    },
    /// An operation needed a choice problem but got another style.
    NotAChoiceProblem {
        /// The problem.
        problem: String,
    },
    /// A problem referenced by the record was not supplied.
    UnknownProblem {
        /// The problem.
        problem: String,
    },
    /// The record failed core consistency validation.
    Core(CoreError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::EmptyRecord => write!(f, "exam record has no students"),
            AnalysisError::ClassTooSmall { class_size } => write!(
                f,
                "class of {class_size} cannot form distinct high/low score groups"
            ),
            AnalysisError::MissingResponse { student, problem } => {
                write!(f, "student {student} has no response to {problem}")
            }
            AnalysisError::NotAChoiceProblem { problem } => {
                write!(f, "problem {problem} is not a choice problem")
            }
            AnalysisError::UnknownProblem { problem } => {
                write!(f, "problem {problem} was not supplied to the analysis")
            }
            AnalysisError::Core(err) => write!(f, "inconsistent record: {err}"),
        }
    }
}

impl StdError for AnalysisError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            AnalysisError::Core(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoreError> for AnalysisError {
    fn from(err: CoreError) -> Self {
        AnalysisError::Core(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            AnalysisError::EmptyRecord.to_string(),
            "exam record has no students"
        );
        assert!(AnalysisError::ClassTooSmall { class_size: 1 }
            .to_string()
            .contains('1'));
    }
}
