//! The assessment analysis model — the paper's primary contribution (§4).
//!
//! "A good assessment not only offers test, but also analysis test
//! results for a teacher." Given an [`mine_core::ExamRecord`] (every
//! student's graded responses) and the exam's problems, this crate
//! reproduces the paper's full analysis pipeline:
//!
//! **Single-question analysis (§4.1)**
//! 1. sort the class by score, split off the high/low groups
//!    ([`ScoreGroups`], Kelly fractions),
//! 2. per question compute `PH`, `PL`, difficulty `P = (PH+PL)/2` and
//!    discrimination `D = PH − PL` ([`QuestionIndices`], the §4.1.1
//!    "number representation" table),
//! 3. build the per-option response matrix ([`OptionMatrix`], Table 1),
//! 4. run diagnostic Rules 1–4 ([`rules`]),
//! 5. map rules to statuses ([`status`], Table 2) and `D` to a traffic
//!    light with advice ([`signal`], Table 3),
//! 6. render the whole-test signal interface ([`report`], Figure 2).
//!
//! **Whole-test analysis (§4.2)**
//! * the two-way specification table over concepts × Bloom levels
//!   ([`two_way`], Table 4) with concept-lost detection and the
//!   cognition-pyramid check,
//! * the three figure representations ([`figures`]): time vs. questions
//!   answered, test score vs. difficulty, cognition level vs. subject,
//! * the Instructional Sensitivity Index ([`isi`], §3.4-III),
//! * a point-biserial discrimination baseline ([`baseline`]) for
//!   comparing the paper's `D` against Moodle-style item analysis.
//!
//! [`ExamAnalysis::analyze`] runs everything at once.
//!
//! # Examples
//!
//! ```
//! use mine_analysis::{AnalysisConfig, ExamAnalysis};
//! use mine_itembank::{Exam, Problem};
//! use mine_simulator::{CohortSpec, Simulation};
//!
//! let problems = vec![Problem::true_false("q1", "x", true)?];
//! let exam = Exam::builder("quiz")?.entry("q1".parse()?).build()?;
//! let record = Simulation::new(exam.clone(), problems.clone())
//!     .cohort(CohortSpec::new(44).seed(1))
//!     .run()?;
//! let analysis = ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default())?;
//! assert_eq!(analysis.questions.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod batch;
pub mod config;
pub mod distraction;
pub mod error;
pub mod exam_analysis;
pub mod figures;
pub mod groups;
pub mod indices;
pub mod isi;
pub mod option_matrix;
pub mod questionnaire;
mod record_index;
pub mod reliability;
pub mod report;
pub mod rules;
pub mod signal;
pub mod status;
pub mod two_way;

pub use baseline::point_biserial;
pub use batch::{BatchAnalyzer, BatchJob, BatchReport, BatchSummary, CacheStats, PrePostReport};
pub use config::AnalysisConfig;
pub use distraction::{analyze_distractors, DistractorReport, DistractorRole};
pub use error::AnalysisError;
pub use exam_analysis::{ExamAnalysis, ExamStatistics, QuestionAnalysis};
pub use figures::{FigurePoint, Figures};
pub use groups::ScoreGroups;
pub use indices::QuestionIndices;
pub use isi::InstructionalSensitivity;
pub use option_matrix::OptionMatrix;
pub use questionnaire::{summarize_questionnaire, QuestionnaireSummary};
pub use reliability::{cronbach_alpha, Reliability};
pub use report::{render_full_report, render_signal_report};
pub use rules::{Rule2Finding, RuleFindings};
pub use signal::{Signal, SignalPolicy};
pub use status::StatusFlags;
pub use two_way::TwoWayTable;
