//! Configuration of the analysis pipeline.

use serde::{Deserialize, Serialize};

use mine_core::GroupFraction;

use crate::signal::SignalPolicy;

/// Tunable parameters of the analysis model.
///
/// Defaults pin the paper's choices: 25 % score groups (§4.1.1 — "we
/// tried to define the percentage 25 % in this paper"), the Table 3
/// signal thresholds, and the 20 % flatness margin of Rules 3/4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Fraction of the class in each of the high and low groups.
    pub group_fraction: GroupFraction,
    /// Traffic-light thresholds (Table 3).
    pub signal: SignalPolicy,
    /// Rules 3/4 margin: the group "lacks concept" when
    /// `max − min ≤ flatness × total` across its option counts.
    pub flatness: f64,
    /// Exam pass mark as a fraction of the maximum score (used by the
    /// exam statistics, not by the paper's per-question rules).
    pub pass_mark: f64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            group_fraction: GroupFraction::PAPER,
            signal: SignalPolicy::default(),
            flatness: 0.2,
            pass_mark: 0.6,
        }
    }
}

impl AnalysisConfig {
    /// The paper's configuration (same as `Default`).
    #[must_use]
    pub fn paper() -> Self {
        Self::default()
    }

    /// Kelly's recommended 27 % groups, other knobs unchanged.
    #[must_use]
    pub fn kelly() -> Self {
        Self {
            group_fraction: GroupFraction::KELLY_OPTIMAL,
            ..Self::default()
        }
    }

    /// Builder-style group fraction override.
    #[must_use]
    pub fn with_group_fraction(mut self, fraction: GroupFraction) -> Self {
        self.group_fraction = fraction;
        self
    }

    /// Builder-style flatness override (clamped to `(0, 1]`).
    #[must_use]
    pub fn with_flatness(mut self, flatness: f64) -> Self {
        self.flatness = flatness.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = AnalysisConfig::default();
        assert_eq!(config.group_fraction, GroupFraction::PAPER);
        assert_eq!(config.flatness, 0.2);
        assert_eq!(config.signal, SignalPolicy::default());
    }

    #[test]
    fn kelly_uses_27_percent() {
        assert_eq!(
            AnalysisConfig::kelly().group_fraction,
            GroupFraction::KELLY_OPTIMAL
        );
    }

    #[test]
    fn flatness_is_clamped() {
        assert_eq!(AnalysisConfig::default().with_flatness(2.0).flatness, 1.0);
        assert!(AnalysisConfig::default().with_flatness(-1.0).flatness > 0.0);
    }
}
