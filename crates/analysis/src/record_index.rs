//! The per-analysis lookup index that makes the per-question hot path
//! allocation-lean.
//!
//! The naive §4.1 pipeline resolves everything by linear scan: each
//! group member is found in the class roster by string comparison, each
//! response by scanning the member's response list, each problem by
//! scanning the supplied problem slice — per question, so an analysis
//! costs O(questions × class × questions) string compares. This module
//! builds every map exactly once per [`ExamAnalysis::analyze`] call and
//! the per-question pass becomes O(group size) array indexing.
//!
//! All lookups replicate the first-match semantics of the scans they
//! replace (`Iterator::find`, [`StudentRecord::response_to`]), so the
//! analysis output stays byte-identical.
//!
//! [`ExamAnalysis::analyze`]: crate::exam_analysis::ExamAnalysis::analyze
//! [`StudentRecord::response_to`]: mine_core::StudentRecord::response_to

use std::collections::HashMap;

use mine_core::{ExamRecord, ItemResponse, ProblemId, StudentId};
use mine_itembank::Problem;

use crate::error::AnalysisError;
use crate::groups::ScoreGroups;

/// How one student's responses map to exam positions.
///
/// Almost every record stores responses in the exam's canonical order
/// (delivery writes them that way), so the common case is a zero-cost
/// direct index; a student whose response order deviates gets an
/// individual position map.
enum Layout<'a> {
    /// `responses[pos]` is the response to exam position `pos`.
    Canonical,
    /// Position of the first response per problem id.
    Mapped(HashMap<&'a str, usize>),
}

/// Lookup structures shared by every per-question task of one analysis.
pub(crate) struct RecordIndex<'a> {
    record: &'a ExamRecord,
    /// Exam problem ids in record order (`record.problems()`).
    pub(crate) problem_ids: Vec<ProblemId>,
    /// The resolved problem definition per exam position.
    pub(crate) problems: Vec<&'a Problem>,
    /// Per-student response layout, indexed like `record.students`.
    layouts: Vec<Layout<'a>>,
    /// Row (index into `record.students`) of each high-group member, in
    /// group order.
    pub(crate) high_rows: Vec<usize>,
    /// Row of each low-group member, in group order.
    pub(crate) low_rows: Vec<usize>,
}

impl<'a> RecordIndex<'a> {
    /// Builds the index: resolves every exam position against
    /// `problems` (erroring on the first unknown id, in exam order,
    /// like the scan it replaces), maps group members to class rows and
    /// classifies each student's response layout.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::UnknownProblem`] when the record references a
    /// problem not supplied.
    pub(crate) fn build(
        record: &'a ExamRecord,
        problems: &'a [Problem],
        groups: &ScoreGroups,
    ) -> Result<Self, AnalysisError> {
        let problem_ids = record.problems();

        // First-wins, like `problems.iter().find(..)` did per question.
        let mut by_id: HashMap<&str, &Problem> = HashMap::with_capacity(problems.len());
        for problem in problems {
            by_id.entry(problem.id().as_str()).or_insert(problem);
        }
        let resolved: Vec<&Problem> = problem_ids
            .iter()
            .map(|id| {
                by_id
                    .get(id.as_str())
                    .copied()
                    .ok_or_else(|| AnalysisError::UnknownProblem {
                        problem: id.to_string(),
                    })
            })
            .collect::<Result<_, _>>()?;

        let layouts = record
            .students
            .iter()
            .map(|student| {
                let canonical = student.responses.len() == problem_ids.len()
                    && student
                        .responses
                        .iter()
                        .zip(&problem_ids)
                        .all(|(response, id)| &response.problem == id);
                if canonical {
                    Layout::Canonical
                } else {
                    let mut map = HashMap::with_capacity(student.responses.len());
                    for (i, response) in student.responses.iter().enumerate() {
                        // First response wins, like `response_to`.
                        map.entry(response.problem.as_str()).or_insert(i);
                    }
                    Layout::Mapped(map)
                }
            })
            .collect();

        let mut row_of: HashMap<&str, usize> = HashMap::with_capacity(record.students.len());
        for (row, student) in record.students.iter().enumerate() {
            row_of.entry(student.student.as_str()).or_insert(row);
        }
        let rows = |members: &[StudentId]| -> Vec<usize> {
            members
                .iter()
                .map(|member| {
                    *row_of
                        .get(member.as_str())
                        .expect("group members come from the record")
                })
                .collect()
        };

        Ok(Self {
            record,
            high_rows: rows(groups.high()),
            low_rows: rows(groups.low()),
            problem_ids,
            problems: resolved,
            layouts,
        })
    }

    /// Number of exam positions.
    pub(crate) fn len(&self) -> usize {
        self.problem_ids.len()
    }

    /// The student at `row`.
    pub(crate) fn student_id(&self, row: usize) -> &'a StudentId {
        &self.record.students[row].student
    }

    /// Row `row`'s response to exam position `pos` — equivalent to
    /// `record.students[row].response_to(&problem_ids[pos])` without
    /// the scan.
    pub(crate) fn response(&self, row: usize, pos: usize) -> Option<&'a ItemResponse> {
        let student = &self.record.students[row];
        match &self.layouts[row] {
            Layout::Canonical => student.responses.get(pos),
            Layout::Mapped(map) => map
                .get(self.problem_ids[pos].as_str())
                .map(|&i| &student.responses[i]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::{Answer, ExamId, GroupFraction, ItemResponse, StudentRecord};

    fn pid(s: &str) -> ProblemId {
        s.parse().unwrap()
    }

    fn problem(id: &str) -> Problem {
        Problem::true_false(id, "stmt", true).unwrap()
    }

    /// Four students over q0/q1; s3's responses are stored in reverse
    /// order to exercise the mapped layout.
    fn record() -> ExamRecord {
        let response =
            |id: &str, points: f64| ItemResponse::correct(pid(id), Answer::TrueFalse(true), points);
        let students = vec![
            StudentRecord::new(
                "s0".parse().unwrap(),
                vec![response("q0", 4.0), response("q1", 4.0)],
            ),
            StudentRecord::new(
                "s1".parse().unwrap(),
                vec![response("q0", 3.0), response("q1", 3.0)],
            ),
            StudentRecord::new(
                "s2".parse().unwrap(),
                vec![response("q0", 2.0), response("q1", 2.0)],
            ),
            StudentRecord::new(
                "s3".parse().unwrap(),
                vec![response("q1", 1.0), response("q0", 1.0)],
            ),
        ];
        ExamRecord::new(ExamId::new("e").unwrap(), students)
    }

    #[test]
    fn lookups_match_the_scans_they_replace() {
        let record = record();
        let problems = vec![problem("q0"), problem("q1")];
        let groups = ScoreGroups::split(&record, GroupFraction::PAPER).unwrap();
        let index = RecordIndex::build(&record, &problems, &groups).unwrap();

        assert_eq!(index.len(), 2);
        assert_eq!(index.problems[0].id(), &pid("q0"));
        // Group rows point at the ranked students: s0 best, s3 worst.
        assert_eq!(index.high_rows, vec![0]);
        assert_eq!(index.low_rows, vec![3]);

        for (row, student) in record.students.iter().enumerate() {
            for (pos, id) in index.problem_ids.iter().enumerate() {
                assert_eq!(
                    index.response(row, pos).map(|r| &r.problem),
                    student.response_to(id).map(|r| &r.problem),
                    "row {row} pos {pos}"
                );
                assert!(std::ptr::eq(
                    index.response(row, pos).unwrap(),
                    student.response_to(id).unwrap()
                ));
            }
        }
    }

    #[test]
    fn unknown_problem_errors_in_exam_order() {
        let record = record();
        let problems = vec![problem("q1")];
        let groups = ScoreGroups::split(&record, GroupFraction::PAPER).unwrap();
        let Err(err) = RecordIndex::build(&record, &problems, &groups) else {
            panic!("q0 is not in the supplied problems");
        };
        assert!(
            matches!(err, AnalysisError::UnknownProblem { ref problem } if problem == "q0"),
            "first unknown id in exam order is reported: {err:?}"
        );
    }

    #[test]
    fn missing_response_is_none() {
        let mut record = record();
        record.students[3].responses.pop();
        let problems = vec![problem("q0"), problem("q1")];
        // The record is now inconsistent, so bypass split validation by
        // building groups from the valid prefix record.
        let valid = {
            let mut r = record.clone();
            r.students.truncate(3);
            r
        };
        let groups = ScoreGroups::split(&valid, GroupFraction::PAPER).unwrap();
        let index = RecordIndex::build(&record, &problems, &groups).unwrap();
        assert!(index.response(3, 0).is_none(), "q0 response was dropped");
        assert!(index.response(3, 1).is_some());
    }
}
