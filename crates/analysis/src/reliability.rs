//! Whole-test reliability: Cronbach's alpha and KR-20.
//!
//! The paper's analysis stops at per-item indices; any production item
//! bank also reports test-level reliability, so teachers know whether
//! the *exam as a whole* measures consistently before they trust the
//! per-item lights. For dichotomously scored items Cronbach's alpha
//! reduces to KR-20; we compute alpha on awarded points, which handles
//! partial credit too.

use serde::{Deserialize, Serialize};

use mine_core::ExamRecord;

use crate::error::AnalysisError;
use crate::record_index::RecordIndex;

/// Reliability summary of one sitting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reliability {
    /// Cronbach's alpha over item scores (None when undefined —
    /// fewer than two items or zero score variance).
    pub alpha: Option<f64>,
    /// Number of items.
    pub items: usize,
    /// Population variance of total scores.
    pub score_variance: f64,
    /// Standard error of measurement `SD · √(1 − α)` (None when alpha
    /// is undefined or negative).
    pub sem: Option<f64>,
}

/// Computes Cronbach's alpha for the sitting.
///
/// `α = k/(k−1) · (1 − Σ σᵢ² / σₓ²)` with `k` items, `σᵢ²` the variance
/// of item `i`'s awarded points, and `σₓ²` the variance of total scores.
///
/// # Errors
///
/// * [`AnalysisError::EmptyRecord`] for an empty class,
/// * [`AnalysisError::Core`] when the record is inconsistent.
pub fn cronbach_alpha(record: &ExamRecord) -> Result<Reliability, AnalysisError> {
    record.validate()?;
    let n = record.students.len();
    if n == 0 {
        return Err(AnalysisError::EmptyRecord);
    }
    let problems = record.problems();
    let k = problems.len();

    // Item scores matrix in canonical problem order.
    let mut item_sums = vec![0.0f64; k];
    let mut item_sq_sums = vec![0.0f64; k];
    let mut totals = Vec::with_capacity(n);
    for student in &record.students {
        let mut total = 0.0;
        for (i, problem) in problems.iter().enumerate() {
            let points = student
                .response_to(problem)
                .map_or(0.0, |r| r.points_awarded);
            item_sums[i] += points;
            item_sq_sums[i] += points * points;
            total += points;
        }
        totals.push(total);
    }

    let nf = n as f64;
    let total_mean = totals.iter().sum::<f64>() / nf;
    // Moment form (Σt²/n − mean²): the same value the streaming
    // engine's running sums produce, so live reports match batch
    // bit-for-bit. See `ExamAnalysis::statistics` for the rationale.
    let score_variance =
        (totals.iter().map(|t| t * t).sum::<f64>() / nf - total_mean * total_mean).max(0.0);

    if k < 2 || score_variance == 0.0 {
        return Ok(Reliability {
            alpha: None,
            items: k,
            score_variance,
            sem: None,
        });
    }

    let item_variance_sum: f64 = (0..k)
        .map(|i| {
            let mean = item_sums[i] / nf;
            item_sq_sums[i] / nf - mean * mean
        })
        .sum();
    let kf = k as f64;
    let alpha = kf / (kf - 1.0) * (1.0 - item_variance_sum / score_variance);
    let sem = if (0.0..=1.0).contains(&alpha) {
        Some(score_variance.sqrt() * (1.0 - alpha).sqrt())
    } else {
        None
    };
    Ok(Reliability {
        alpha: Some(alpha),
        items: k,
        score_variance,
        sem,
    })
}

/// [`cronbach_alpha`] over a prebuilt [`RecordIndex`]: identical
/// arithmetic (same loops, same accumulation order, so byte-identical
/// serialized output), but response lookup is O(1) through the index
/// instead of a scan per (student, problem), and the record is not
/// re-validated — the analysis pipeline already validated it when
/// splitting the groups, which also guarantees a non-empty class.
pub(crate) fn cronbach_alpha_indexed(record: &ExamRecord, index: &RecordIndex<'_>) -> Reliability {
    let n = record.students.len();
    let k = index.len();

    // Item scores matrix in canonical problem order.
    let mut item_sums = vec![0.0f64; k];
    let mut item_sq_sums = vec![0.0f64; k];
    let mut totals = Vec::with_capacity(n);
    for row in 0..n {
        let mut total = 0.0;
        for (i, sum) in item_sums.iter_mut().enumerate() {
            let points = index.response(row, i).map_or(0.0, |r| r.points_awarded);
            *sum += points;
            item_sq_sums[i] += points * points;
            total += points;
        }
        totals.push(total);
    }

    let nf = n as f64;
    let total_mean = totals.iter().sum::<f64>() / nf;
    // Moment form, mirroring `cronbach_alpha` exactly.
    let score_variance =
        (totals.iter().map(|t| t * t).sum::<f64>() / nf - total_mean * total_mean).max(0.0);

    if k < 2 || score_variance == 0.0 {
        return Reliability {
            alpha: None,
            items: k,
            score_variance,
            sem: None,
        };
    }

    let item_variance_sum: f64 = (0..k)
        .map(|i| {
            let mean = item_sums[i] / nf;
            item_sq_sums[i] / nf - mean * mean
        })
        .sum();
    let kf = k as f64;
    let alpha = kf / (kf - 1.0) * (1.0 - item_variance_sum / score_variance);
    let sem = if (0.0..=1.0).contains(&alpha) {
        Some(score_variance.sqrt() * (1.0 - alpha).sqrt())
    } else {
        None
    };
    Reliability {
        alpha: Some(alpha),
        items: k,
        score_variance,
        sem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::{Answer, ExamId, ItemResponse, StudentRecord};

    /// Students answer item i correctly iff `pattern[student][item]`.
    fn record(pattern: &[&[bool]]) -> ExamRecord {
        let students = pattern
            .iter()
            .enumerate()
            .map(|(s, row)| {
                let responses = row
                    .iter()
                    .enumerate()
                    .map(|(q, &ok)| {
                        let pid = format!("q{q}").parse().unwrap();
                        if ok {
                            ItemResponse::correct(pid, Answer::TrueFalse(true), 1.0)
                        } else {
                            ItemResponse::incorrect(pid, Answer::TrueFalse(false), 1.0)
                        }
                    })
                    .collect();
                StudentRecord::new(format!("s{s:02}").parse().unwrap(), responses)
            })
            .collect();
        ExamRecord::new(ExamId::new("e").unwrap(), students)
    }

    #[test]
    fn perfectly_consistent_test_has_alpha_one() {
        // Guttman pattern where every item agrees with the total:
        // strong students get everything, weak get nothing.
        let rec = record(&[
            &[true, true, true],
            &[true, true, true],
            &[false, false, false],
            &[false, false, false],
        ]);
        let reliability = cronbach_alpha(&rec).unwrap();
        assert!((reliability.alpha.unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(reliability.sem.unwrap(), 0.0);
    }

    #[test]
    fn inconsistent_items_lower_alpha() {
        // Items disagree with each other (anti-correlated).
        let rec = record(&[
            &[true, false],
            &[false, true],
            &[true, false],
            &[false, true],
        ]);
        let reliability = cronbach_alpha(&rec).unwrap();
        // Total variance is zero (everyone scores 1) → alpha undefined.
        assert!(reliability.alpha.is_none());
    }

    #[test]
    fn mixed_pattern_gives_intermediate_alpha() {
        let rec = record(&[
            &[true, true, true, false],
            &[true, true, false, true],
            &[true, false, false, false],
            &[false, true, false, false],
            &[false, false, false, false],
            &[true, true, true, true],
        ]);
        let reliability = cronbach_alpha(&rec).unwrap();
        let alpha = reliability.alpha.unwrap();
        assert!(alpha > 0.0 && alpha < 1.0, "alpha = {alpha}");
        assert!(reliability.sem.unwrap() > 0.0);
    }

    #[test]
    fn single_item_is_undefined() {
        let rec = record(&[&[true], &[false]]);
        let reliability = cronbach_alpha(&rec).unwrap();
        assert!(reliability.alpha.is_none());
        assert_eq!(reliability.items, 1);
    }

    #[test]
    fn empty_record_errors() {
        let rec = ExamRecord::new(ExamId::new("e").unwrap(), vec![]);
        assert!(cronbach_alpha(&rec).is_err());
    }

    #[test]
    fn simulated_coherent_exam_has_decent_alpha() {
        use mine_itembank::Problem;
        use mine_simulator::{CohortSpec, Simulation};
        let problems: Vec<Problem> = (0..12)
            .map(|i| Problem::true_false(format!("q{i}"), "s", true).unwrap())
            .collect();
        let mut builder = mine_itembank::Exam::builder("r").unwrap();
        for i in 0..12 {
            builder = builder.entry(format!("q{i}").parse().unwrap());
        }
        let record = Simulation::new(builder.build().unwrap(), problems)
            .cohort(CohortSpec::new(200).ability(0.0, 1.5).seed(3))
            .run()
            .unwrap();
        let alpha = cronbach_alpha(&record).unwrap().alpha.unwrap();
        assert!(alpha > 0.4, "ability-driven items should cohere: {alpha}");
    }
}
