//! Baseline discrimination: the point-biserial correlation.
//!
//! Moodle/Open-edX-style item analysis measures discrimination with the
//! point-biserial correlation between getting an item right and the
//! total score, rather than the paper's high/low-group difference
//! `D = PH − PL`. This module provides that baseline plus a Spearman
//! rank-agreement helper so the benches can quantify how closely the two
//! indices rank the same items (ablation A2 in DESIGN.md).

use mine_core::{ExamRecord, ProblemId};

use crate::error::AnalysisError;

/// Point-biserial correlation between item correctness and total score.
///
/// `r_pb = (M₁ − M₀)/σ · √(p·q)` where `M₁`/`M₀` are mean total scores
/// of students who got the item right/wrong, `σ` the population standard
/// deviation of scores, `p` the fraction correct, `q = 1 − p`.
///
/// Returns 0 when the item or the scores have no variance.
///
/// # Errors
///
/// * [`AnalysisError::EmptyRecord`] for an empty class,
/// * [`AnalysisError::MissingResponse`] when a student lacks the item.
pub fn point_biserial(record: &ExamRecord, problem: &ProblemId) -> Result<f64, AnalysisError> {
    if record.students.is_empty() {
        return Err(AnalysisError::EmptyRecord);
    }
    let n = record.students.len() as f64;
    let mut scores = Vec::with_capacity(record.students.len());
    let mut correct_flags = Vec::with_capacity(record.students.len());
    for student in &record.students {
        let response =
            student
                .response_to(problem)
                .ok_or_else(|| AnalysisError::MissingResponse {
                    student: student.student.to_string(),
                    problem: problem.to_string(),
                })?;
        scores.push(student.score());
        correct_flags.push(response.is_correct);
    }
    let mean = scores.iter().sum::<f64>() / n;
    let variance = scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    let sd = variance.sqrt();
    let p = correct_flags.iter().filter(|&&c| c).count() as f64 / n;
    let q = 1.0 - p;
    if sd == 0.0 || p == 0.0 || q == 0.0 {
        return Ok(0.0);
    }
    let mean_correct = scores
        .iter()
        .zip(&correct_flags)
        .filter(|(_, &c)| c)
        .map(|(s, _)| *s)
        .sum::<f64>()
        / (p * n);
    let mean_incorrect = scores
        .iter()
        .zip(&correct_flags)
        .filter(|(_, &c)| !c)
        .map(|(s, _)| *s)
        .sum::<f64>()
        / (q * n);
    Ok((mean_correct - mean_incorrect) / sd * (p * q).sqrt())
}

/// Spearman rank correlation between two paired samples.
///
/// Ties receive their average rank. Returns 0 for fewer than two pairs.
///
/// # Panics
///
/// Panics when the slices have different lengths.
#[must_use]
pub fn spearman_rank(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "paired samples must match in length");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    // Pearson correlation of the ranks (handles ties correctly).
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (ma, mb) = (mean(&ra), mean(&rb));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = ra[i] - ma;
        let db = rb[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&i, &j| {
        values[i]
            .partial_cmp(&values[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &index in &order[i..=j] {
            out[index] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::{Answer, ExamId, ItemResponse, StudentRecord};

    /// Students score 0..n−1 on filler; the target item is answered
    /// correctly by those in `correct_set`.
    fn record(n: usize, correct_set: &[usize]) -> ExamRecord {
        let students = (0..n)
            .map(|i| {
                let target = if correct_set.contains(&i) {
                    ItemResponse::correct("t".parse().unwrap(), Answer::TrueFalse(true), 1.0)
                } else {
                    ItemResponse::incorrect("t".parse().unwrap(), Answer::TrueFalse(false), 1.0)
                };
                let mut filler =
                    ItemResponse::correct("f".parse().unwrap(), Answer::TrueFalse(true), i as f64);
                filler.points_possible = n as f64;
                StudentRecord::new(format!("s{i:02}").parse().unwrap(), vec![target, filler])
            })
            .collect();
        ExamRecord::new(ExamId::new("e").unwrap(), students)
    }

    #[test]
    fn discriminating_item_has_positive_r() {
        // Top half gets it right.
        let correct: Vec<usize> = (5..10).collect();
        let r = point_biserial(&record(10, &correct), &"t".parse().unwrap()).unwrap();
        assert!(r > 0.7, "r = {r}");
    }

    #[test]
    fn inverted_item_has_negative_r() {
        let correct: Vec<usize> = (0..5).collect();
        let r = point_biserial(&record(10, &correct), &"t".parse().unwrap()).unwrap();
        assert!(r < -0.7, "r = {r}");
    }

    #[test]
    fn no_variance_items_return_zero() {
        let all: Vec<usize> = (0..10).collect();
        assert_eq!(
            point_biserial(&record(10, &all), &"t".parse().unwrap()).unwrap(),
            0.0
        );
        assert_eq!(
            point_biserial(&record(10, &[]), &"t".parse().unwrap()).unwrap(),
            0.0
        );
    }

    #[test]
    fn r_is_bounded() {
        for pattern in [[0usize, 2, 4, 6, 8], [1, 3, 5, 7, 9], [0, 1, 8, 9, 5]] {
            let r = point_biserial(&record(10, &pattern), &"t".parse().unwrap()).unwrap();
            assert!((-1.0..=1.0).contains(&r), "r = {r}");
        }
    }

    #[test]
    fn empty_record_errors() {
        let record = ExamRecord::new(ExamId::new("e").unwrap(), vec![]);
        assert!(point_biserial(&record, &"t".parse().unwrap()).is_err());
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman_rank(&a, &b) - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman_rank(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman_rank(&a, &b) - 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(spearman_rank(&a, &flat), 0.0);
    }

    #[test]
    fn spearman_degenerate_lengths() {
        assert_eq!(spearman_rank(&[], &[]), 0.0);
        assert_eq!(spearman_rank(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "match in length")]
    fn spearman_mismatched_lengths_panic() {
        let _ = spearman_rank(&[1.0], &[1.0, 2.0]);
    }
}
