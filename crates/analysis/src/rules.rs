//! The four diagnostic rules (§4.1.2).
//!
//! * **Rule 1** — `If (LA|LB|LC|LD|LE)=0 then the option's allure is
//!   low`: an option nobody in the low group picked is not doing its
//!   job as a distractor.
//! * **Rule 2** — a *correct* option the high group picks **less** than
//!   the low group, or a *wrong* option the high group picks **more**,
//!   "is not well-defined".
//! * **Rule 3** — when the low group's counts are flat
//!   (`|LM − Lm| ≤ LS × 20 %`), "people in low score group lack
//!   concept".
//! * **Rule 4** — when both groups are flat, everyone lacks the concept
//!   and whole-class remediation is called for.

use serde::{Deserialize, Serialize};

use mine_core::OptionKey;

use crate::option_matrix::OptionMatrix;

/// A Rule 2 finding for one option.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule2Finding {
    /// The option that is not well-defined.
    pub option: OptionKey,
    /// Whether the flagged option is the correct answer.
    pub is_correct_option: bool,
    /// High-group count of the option.
    pub high: usize,
    /// Low-group count of the option.
    pub low: usize,
}

/// Everything the four rules found for one question.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RuleFindings {
    /// Rule 1: options with zero low-group selections.
    pub low_allure: Vec<OptionKey>,
    /// Rule 2: options whose high/low counts point the wrong way.
    pub not_well_defined: Vec<Rule2Finding>,
    /// Rule 3: low group responded flat — lacks the concept.
    pub low_group_lacks_concept: bool,
    /// Rule 4: both groups responded flat.
    pub both_groups_lack_concept: bool,
}

impl RuleFindings {
    /// Whether any rule fired.
    #[must_use]
    pub fn any(&self) -> bool {
        !self.low_allure.is_empty()
            || !self.not_well_defined.is_empty()
            || self.low_group_lacks_concept
            || self.both_groups_lack_concept
    }

    /// Whether Rule 1 fired.
    #[must_use]
    pub fn rule1(&self) -> bool {
        !self.low_allure.is_empty()
    }

    /// Whether Rule 2 fired.
    #[must_use]
    pub fn rule2(&self) -> bool {
        !self.not_well_defined.is_empty()
    }
}

/// Runs Rules 1–4 on a Table 1 matrix with the given flatness margin
/// (the paper uses 20 %, i.e. `flatness = 0.2`).
#[must_use]
pub fn evaluate_rules(matrix: &OptionMatrix, flatness: f64) -> RuleFindings {
    let mut findings = RuleFindings::default();

    // Rule 1: any option with L? = 0.
    for key in matrix.keys() {
        if matrix.low_count(key) == 0 {
            findings.low_allure.push(key);
        }
    }

    // Rule 2: direction of preference contradicts correctness.
    for key in matrix.keys() {
        let high = matrix.high_count(key);
        let low = matrix.low_count(key);
        let is_correct = key == matrix.correct;
        let flagged = if is_correct { high < low } else { high > low };
        if flagged {
            findings.not_well_defined.push(Rule2Finding {
                option: key,
                is_correct_option: is_correct,
                high,
                low,
            });
        }
    }

    // Rules 3 and 4: flat response distributions.
    let (lm, l_min) = matrix.low_extremes();
    let ls = matrix.low_sum();
    let low_flat = ls > 0 && (lm - l_min) as f64 <= ls as f64 * flatness;
    let (hm, h_min) = matrix.high_extremes();
    let hs = matrix.high_sum();
    let high_flat = hs > 0 && (hm - h_min) as f64 <= hs as f64 * flatness;

    findings.low_group_lacks_concept = low_flat;
    findings.both_groups_lack_concept = low_flat && high_flat;
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::ProblemId;

    fn pid() -> ProblemId {
        "q".parse().unwrap()
    }

    const FLATNESS: f64 = 0.2;

    #[test]
    fn paper_example_1_rule_1_flags_option_c() {
        // High [12,2,0,3,3], low [6,4,0,5,5], correct A.
        let matrix = OptionMatrix::from_counts(
            pid(),
            OptionKey::A,
            vec![12, 2, 0, 3, 3],
            vec![6, 4, 0, 5, 5],
        );
        let findings = evaluate_rules(&matrix, FLATNESS);
        assert_eq!(findings.low_allure, vec![OptionKey::C]);
        assert!(findings.rule1());
        // No other rule fires in example 1.
        assert!(!findings.rule2());
        assert!(!findings.low_group_lacks_concept);
    }

    #[test]
    fn paper_example_2_rule_2_flags_c_and_e() {
        // High [1,2,10,0,7], low [2,2,13,1,2], correct C.
        let matrix = OptionMatrix::from_counts(
            pid(),
            OptionKey::C,
            vec![1, 2, 10, 0, 7],
            vec![2, 2, 13, 1, 2],
        );
        let findings = evaluate_rules(&matrix, FLATNESS);
        let flagged: Vec<OptionKey> = findings.not_well_defined.iter().map(|f| f.option).collect();
        // C is correct but HC (10) < LC (13); E is wrong but HE (7) > LE (2).
        assert!(flagged.contains(&OptionKey::C));
        assert!(flagged.contains(&OptionKey::E));
        let c = findings
            .not_well_defined
            .iter()
            .find(|f| f.option == OptionKey::C)
            .unwrap();
        assert!(c.is_correct_option);
        assert_eq!((c.high, c.low), (10, 13));
    }

    #[test]
    fn paper_example_3_rule_3_low_group_flat() {
        // High [15,2,2,0,1], low [5,4,5,4,2], correct A.
        let matrix = OptionMatrix::from_counts(
            pid(),
            OptionKey::A,
            vec![15, 2, 2, 0, 1],
            vec![5, 4, 5, 4, 2],
        );
        let findings = evaluate_rules(&matrix, FLATNESS);
        // |LM−Lm| = 3 ≤ 4 = LS×20 %.
        assert!(findings.low_group_lacks_concept);
        // High group is peaked (15 vs 0), so Rule 4 does not fire.
        assert!(!findings.both_groups_lack_concept);
    }

    #[test]
    fn paper_example_4_rule_4_both_groups_flat() {
        // High [4,4,4,2,6], low [5,4,5,4,2], correct A.
        let matrix = OptionMatrix::from_counts(
            pid(),
            OptionKey::A,
            vec![4, 4, 4, 2, 6],
            vec![5, 4, 5, 4, 2],
        );
        let findings = evaluate_rules(&matrix, FLATNESS);
        // |LM−Lm| = 3 ≤ 4 and |HM−Hm| = 4 ≤ 4.
        assert!(findings.low_group_lacks_concept);
        assert!(findings.both_groups_lack_concept);
    }

    #[test]
    fn paper_question_no6_rule_1_option_a() {
        // §4.1.2 second worked example: high [1,1,4,5], low [0,2,4,4],
        // correct D, 11 per group.
        let matrix =
            OptionMatrix::from_counts(pid(), OptionKey::D, vec![1, 1, 4, 5], vec![0, 2, 4, 4]);
        let findings = evaluate_rules(&matrix, FLATNESS);
        assert_eq!(findings.low_allure, vec![OptionKey::A]);
    }

    #[test]
    fn healthy_question_fires_nothing() {
        // Strong discrimination, every distractor pulls some low students.
        let matrix =
            OptionMatrix::from_counts(pid(), OptionKey::B, vec![1, 16, 2, 1], vec![9, 3, 5, 3]);
        let findings = evaluate_rules(&matrix, FLATNESS);
        assert!(!findings.any(), "{findings:?}");
    }

    #[test]
    fn flatness_margin_is_respected() {
        // Low [5, 3]: diff 2, LS 8. 20% → 1.6 < 2 (not flat); 30% → 2.4 ≥ 2.
        let matrix = OptionMatrix::from_counts(pid(), OptionKey::A, vec![8, 0], vec![5, 3]);
        assert!(!evaluate_rules(&matrix, 0.2).low_group_lacks_concept);
        assert!(evaluate_rules(&matrix, 0.3).low_group_lacks_concept);
    }

    #[test]
    fn empty_groups_do_not_fire_flatness_rules() {
        let matrix = OptionMatrix::from_counts(pid(), OptionKey::A, vec![0, 0], vec![0, 0]);
        let findings = evaluate_rules(&matrix, FLATNESS);
        assert!(!findings.low_group_lacks_concept);
        assert!(!findings.both_groups_lack_concept);
        // But rule 1 fires for every option (nobody picked them).
        assert_eq!(findings.low_allure.len(), 2);
    }

    #[test]
    fn equal_counts_do_not_trigger_rule_2() {
        let matrix = OptionMatrix::from_counts(pid(), OptionKey::A, vec![5, 5], vec![5, 5]);
        assert!(!evaluate_rules(&matrix, FLATNESS).rule2());
    }
}
