//! Distractor analysis (§3.3-V).
//!
//! "Distraction: With the analysis, define students' distraction." The
//! IndividualTest metadata reserves a slot for *which wrong options
//! distract whom*; this module computes it from the Table 1 matrix:
//! every distractor is classified by whom it attracts and whether it is
//! doing its job (pulling low-group students while leaving the high
//! group alone).

use serde::{Deserialize, Serialize};

use mine_core::OptionKey;

use crate::option_matrix::OptionMatrix;

/// How a single distractor behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistractorRole {
    /// Attracts low-group students and few high-group ones — a healthy
    /// distractor.
    Effective,
    /// Attracts nobody in the low group (Rule 1's "allure is low").
    Dead,
    /// Attracts the high group at least as much as the low group — it
    /// confuses good students (Rule 2 territory).
    Confusing,
    /// Attracts both groups roughly equally — noise, not diagnosis.
    Indiscriminate,
}

/// Analysis of one distractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistractorReport {
    /// The option analyzed (never the correct one).
    pub option: OptionKey,
    /// High-group selections.
    pub high: usize,
    /// Low-group selections.
    pub low: usize,
    /// The behavioural classification.
    pub role: DistractorRole,
}

impl DistractorReport {
    /// A metadata-ready sentence (the string stored in
    /// `IndividualTest.distraction`).
    #[must_use]
    pub fn describe(&self) -> String {
        match self.role {
            DistractorRole::Effective => format!(
                "option {} distracts the low group effectively ({} low vs {} high)",
                self.option, self.low, self.high
            ),
            DistractorRole::Dead => {
                format!(
                    "option {} attracts nobody in the low group; replace it",
                    self.option
                )
            }
            DistractorRole::Confusing => format!(
                "option {} confuses strong students ({} high vs {} low); reword it",
                self.option, self.high, self.low
            ),
            DistractorRole::Indiscriminate => format!(
                "option {} pulls both groups alike ({} high, {} low); it does not diagnose",
                self.option, self.high, self.low
            ),
        }
    }
}

/// Classifies every distractor of a question.
///
/// The correct option is skipped — it is not a distractor.
#[must_use]
pub fn analyze_distractors(matrix: &OptionMatrix) -> Vec<DistractorReport> {
    matrix
        .keys()
        .filter(|key| *key != matrix.correct)
        .map(|option| {
            let high = matrix.high_count(option);
            let low = matrix.low_count(option);
            let role = if low == 0 {
                DistractorRole::Dead
            } else if high >= low {
                DistractorRole::Confusing
            } else if high * 2 >= low {
                // High group takes at least half as often as low —
                // pulls both sides.
                DistractorRole::Indiscriminate
            } else {
                DistractorRole::Effective
            };
            DistractorReport {
                option,
                high,
                low,
                role,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(correct: OptionKey, high: Vec<usize>, low: Vec<usize>) -> OptionMatrix {
        OptionMatrix::from_counts("q".parse().unwrap(), correct, high, low)
    }

    #[test]
    fn paper_example_1_has_a_dead_distractor() {
        let m = matrix(OptionKey::A, vec![12, 2, 0, 3, 3], vec![6, 4, 0, 5, 5]);
        let reports = analyze_distractors(&m);
        assert_eq!(reports.len(), 4, "correct option A skipped");
        let c = reports.iter().find(|r| r.option == OptionKey::C).unwrap();
        assert_eq!(c.role, DistractorRole::Dead);
        assert!(c.describe().contains("nobody"));
    }

    #[test]
    fn effective_distractor_detected() {
        // D pulls 5 low, 0 high.
        let m = matrix(OptionKey::A, vec![15, 2, 2, 0, 1], vec![5, 4, 5, 4, 2]);
        let d = analyze_distractors(&m)
            .into_iter()
            .find(|r| r.option == OptionKey::D)
            .unwrap();
        assert_eq!(d.role, DistractorRole::Effective);
    }

    #[test]
    fn confusing_distractor_detected() {
        // Paper example 2: E pulls 7 high vs 2 low.
        let m = matrix(OptionKey::C, vec![1, 2, 10, 0, 7], vec![2, 2, 13, 1, 2]);
        let e = analyze_distractors(&m)
            .into_iter()
            .find(|r| r.option == OptionKey::E)
            .unwrap();
        assert_eq!(e.role, DistractorRole::Confusing);
        assert!(e.describe().contains("confuses"));
    }

    #[test]
    fn indiscriminate_distractor_detected() {
        // B pulls 3 high and 5 low: high*2 = 6 >= 5 but high < low.
        let m = matrix(OptionKey::A, vec![10, 3], vec![2, 5]);
        let b = analyze_distractors(&m)
            .into_iter()
            .find(|r| r.option == OptionKey::B)
            .unwrap();
        assert_eq!(b.role, DistractorRole::Indiscriminate);
    }

    #[test]
    fn all_descriptions_name_the_option() {
        let m = matrix(OptionKey::A, vec![10, 3, 0, 6], vec![2, 7, 0, 6]);
        for report in analyze_distractors(&m) {
            assert!(report
                .describe()
                .contains(&report.option.letter().to_string()));
        }
    }

    #[test]
    fn two_option_question_has_one_distractor() {
        let m = matrix(OptionKey::B, vec![2, 9], vec![7, 4]);
        let reports = analyze_distractors(&m);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].option, OptionKey::A);
        assert_eq!(reports[0].role, DistractorRole::Effective);
    }
}
