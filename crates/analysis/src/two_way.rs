//! The two-way specification table (Table 4, §4.2.2–§4.2.3).
//!
//! Rows are content concepts, columns the six Bloom levels `A`–`F`. The
//! table answers the whole-test questions of §4.2.3:
//!
//! 1. **Concept lost** — `If (A1|B1|C1|D1|E1|F1)=FALSE, Concept 1 lost
//!    in the exam`,
//! 2. **Cognition pyramid** — a well-formed exam satisfies
//!    `SUM(A) ≥ SUM(B) ≥ … ≥ SUM(F)`,
//! 3. **Paint distribution** — a density rendering of where questions
//!    concentrate.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mine_core::{CognitionLevel, ProblemId, Subject};
use mine_itembank::Problem;

/// The two-way specification table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TwoWayTable {
    /// Concept (row) → per-level question counts.
    cells: BTreeMap<String, [usize; CognitionLevel::COUNT]>,
    /// Problems that carried no cognition level and joined no cell.
    unclassified: Vec<ProblemId>,
}

impl TwoWayTable {
    /// Builds the table from problems: the concept is the problem's
    /// subject (§3.3-II), the column its cognition level (§3.1).
    ///
    /// Problems without a cognition level are collected as
    /// [`TwoWayTable::unclassified`]; problems with an empty subject
    /// join the concept `"(none)"`.
    #[must_use]
    pub fn from_problems<'a>(problems: impl IntoIterator<Item = &'a Problem>) -> Self {
        let mut table = TwoWayTable::default();
        for problem in problems {
            match problem.cognition_level() {
                Some(level) => {
                    table.record(&problem.subject(), level);
                }
                None => table.unclassified.push(problem.id().clone()),
            }
        }
        table
    }

    /// Adds one question at (subject, level).
    pub fn record(&mut self, subject: &Subject, level: CognitionLevel) {
        let concept = if subject.as_str().trim().is_empty() {
            "(none)".to_string()
        } else {
            subject.as_str().to_string()
        };
        self.cells.entry(concept).or_default()[level.index()] += 1;
    }

    /// The concepts (row labels) in order.
    #[must_use]
    pub fn concepts(&self) -> Vec<&str> {
        self.cells.keys().map(String::as_str).collect()
    }

    /// The count at (concept, level); 0 for unknown concepts.
    #[must_use]
    pub fn cell(&self, concept: &str, level: CognitionLevel) -> usize {
        self.cells.get(concept).map_or(0, |row| row[level.index()])
    }

    /// §4.2.2 definition 3: whether at least one question of `level`
    /// exists for `concept` — the paper's `A1 = [TRUE]` notation.
    #[must_use]
    pub fn has_question(&self, concept: &str, level: CognitionLevel) -> bool {
        self.cell(concept, level) > 0
    }

    /// `SUM(X1-Xi)`: total questions at one level across all concepts.
    #[must_use]
    pub fn sum_level(&self, level: CognitionLevel) -> usize {
        self.cells.values().map(|row| row[level.index()]).sum()
    }

    /// `SUM(Ai-Fi)`: total questions of one concept across all levels.
    #[must_use]
    pub fn sum_concept(&self, concept: &str) -> usize {
        self.cells.get(concept).map_or(0, |row| row.iter().sum())
    }

    /// Total classified questions.
    #[must_use]
    pub fn total(&self) -> usize {
        self.cells
            .values()
            .map(|row| row.iter().sum::<usize>())
            .sum()
    }

    /// Problems that had no cognition level.
    #[must_use]
    pub fn unclassified(&self) -> &[ProblemId] {
        &self.unclassified
    }

    /// §4.2.3 (1): concepts from `expected` that the exam never touches
    /// ("Concept 1 lost in the exam").
    #[must_use]
    pub fn lost_concepts<'a>(&self, expected: &'a [&'a str]) -> Vec<&'a str> {
        expected
            .iter()
            .copied()
            .filter(|concept| self.sum_concept(concept) == 0)
            .collect()
    }

    /// §4.2.3 (2): checks `SUM(A) ≥ SUM(B) ≥ … ≥ SUM(F)`; returns the
    /// first violating adjacent pair, or `None` when the pyramid holds.
    #[must_use]
    pub fn cognition_pyramid_violation(&self) -> Option<(CognitionLevel, CognitionLevel)> {
        for pair in CognitionLevel::ALL.windows(2) {
            if self.sum_level(pair[0]) < self.sum_level(pair[1]) {
                return Some((pair[0], pair[1]));
            }
        }
        None
    }

    /// Convenience: whether the pyramid relation holds.
    #[must_use]
    pub fn cognition_pyramid_ok(&self) -> bool {
        self.cognition_pyramid_violation().is_none()
    }

    /// Renders Table 4 as text, with the SUM row.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("{:<24}", "Concept");
        for level in CognitionLevel::ALL {
            out.push_str(&format!("{:<15}", level.name()));
        }
        out.push('\n');
        for (concept, row) in &self.cells {
            out.push_str(&format!("{concept:<24}"));
            for count in row {
                out.push_str(&format!("{count:<15}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<24}", "SUM"));
        for level in CognitionLevel::ALL {
            out.push_str(&format!("{:<15}", self.sum_level(level)));
        }
        out.push('\n');
        out
    }

    /// §4.2.3 (3): the "paint algorithm" density view — one glyph per
    /// cell, darker where more questions concentrate.
    #[must_use]
    pub fn render_paint(&self) -> String {
        const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
        let max = self
            .cells
            .values()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0);
        let mut out = String::from("          ABCDEF\n");
        for (concept, row) in &self.cells {
            let label: String = concept.chars().take(9).collect();
            out.push_str(&format!("{label:<10}"));
            for &count in row {
                let shade = if max == 0 {
                    SHADES[0]
                } else {
                    let idx = (count * (SHADES.len() - 1)).div_ceil(max);
                    SHADES[idx.min(SHADES.len() - 1)]
                };
                out.push(shade);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(id: &str, subject: &str, level: Option<CognitionLevel>) -> Problem {
        let mut p = Problem::true_false(id, "stem", true)
            .unwrap()
            .with_subject(subject);
        if let Some(level) = level {
            p.set_cognition_level(level);
        }
        p
    }

    fn sample_problems() -> Vec<Problem> {
        vec![
            problem("q1", "tcp", Some(CognitionLevel::Knowledge)),
            problem("q2", "tcp", Some(CognitionLevel::Knowledge)),
            problem("q3", "tcp", Some(CognitionLevel::Comprehension)),
            problem("q4", "routing", Some(CognitionLevel::Knowledge)),
            problem("q5", "routing", Some(CognitionLevel::Application)),
            problem("q6", "routing", None),
        ]
    }

    #[test]
    fn builds_cells_and_sums() {
        let problems = sample_problems();
        let table = TwoWayTable::from_problems(&problems);
        assert_eq!(table.cell("tcp", CognitionLevel::Knowledge), 2);
        assert_eq!(table.cell("tcp", CognitionLevel::Comprehension), 1);
        assert_eq!(table.cell("routing", CognitionLevel::Application), 1);
        assert_eq!(table.cell("ghost", CognitionLevel::Knowledge), 0);
        assert_eq!(table.sum_level(CognitionLevel::Knowledge), 3);
        assert_eq!(table.sum_concept("tcp"), 3);
        assert_eq!(table.total(), 5);
        assert_eq!(table.unclassified().len(), 1);
    }

    #[test]
    fn has_question_matches_paper_boolean_notation() {
        let problems = sample_problems();
        let table = TwoWayTable::from_problems(&problems);
        assert!(table.has_question("tcp", CognitionLevel::Knowledge));
        assert!(!table.has_question("tcp", CognitionLevel::Evaluation));
        assert!(!table.has_question("ghost", CognitionLevel::Knowledge));
    }

    #[test]
    fn lost_concepts_detected() {
        let problems = sample_problems();
        let table = TwoWayTable::from_problems(&problems);
        let lost = table.lost_concepts(&["tcp", "routing", "congestion", "dns"]);
        assert_eq!(lost, vec!["congestion", "dns"]);
    }

    #[test]
    fn pyramid_holds_for_sample() {
        let problems = sample_problems();
        let table = TwoWayTable::from_problems(&problems);
        // Knowledge 3 ≥ Comprehension 1 ≥ Application 1 ≥ 0 ≥ 0 ≥ 0.
        assert!(table.cognition_pyramid_ok());
    }

    #[test]
    fn pyramid_violation_reported_with_levels() {
        let problems = vec![
            problem("q1", "x", Some(CognitionLevel::Evaluation)),
            problem("q2", "x", Some(CognitionLevel::Evaluation)),
            problem("q3", "x", Some(CognitionLevel::Knowledge)),
        ];
        let table = TwoWayTable::from_problems(&problems);
        let violation = table.cognition_pyramid_violation().unwrap();
        // First failing adjacent pair walking A→F: Comprehension (0) <
        // ... the pair reported is (Comprehension-ish); concretely the
        // first pair where left < right.
        assert!(table.sum_level(violation.0) < table.sum_level(violation.1));
        assert!(!table.cognition_pyramid_ok());
    }

    #[test]
    fn empty_subject_maps_to_none_row() {
        let problems = vec![problem("q1", "", Some(CognitionLevel::Knowledge))];
        let table = TwoWayTable::from_problems(&problems);
        assert_eq!(table.cell("(none)", CognitionLevel::Knowledge), 1);
    }

    #[test]
    fn render_contains_sum_row_and_headers() {
        let problems = sample_problems();
        let text = TwoWayTable::from_problems(&problems).render();
        assert!(text.contains("Knowledge"));
        assert!(text.contains("Evaluation"));
        assert!(text.contains("SUM"));
        assert!(text.contains("tcp"));
    }

    #[test]
    fn paint_uses_darker_glyphs_for_denser_cells() {
        let mut problems = Vec::new();
        for i in 0..8 {
            problems.push(problem(
                &format!("k{i}"),
                "dense",
                Some(CognitionLevel::Knowledge),
            ));
        }
        problems.push(problem("e1", "dense", Some(CognitionLevel::Evaluation)));
        let table = TwoWayTable::from_problems(&problems);
        let paint = table.render_paint();
        let row = paint.lines().nth(1).unwrap();
        let glyphs: Vec<char> = row.chars().collect();
        // Column A (offset 10) darkest, column F lighter but non-empty.
        assert_eq!(glyphs[10], '█');
        assert_ne!(glyphs[15], ' ');
        assert_ne!(glyphs[15], '█');
        // Middle columns are empty.
        assert_eq!(glyphs[12], ' ');
    }

    #[test]
    fn empty_table_renders_without_panic() {
        let table = TwoWayTable::default();
        assert!(table.render().contains("SUM"));
        assert!(!table.render_paint().is_empty());
        assert!(table.cognition_pyramid_ok());
        assert_eq!(table.total(), 0);
    }
}
