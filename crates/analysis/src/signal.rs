//! The traffic-light signal and advice (Table 3, Figure 2).
//!
//! "With signal presentation, the advice to teacher becomes more easy
//! and simple." Table 3 maps the Item Discrimination Index `D` to a
//! light: green ("Good") for `D ≥ 0.30`, yellow ("Fix") for
//! `0.20 ≤ D ≤ 0.29`, red ("Eliminate or fix") for `D ≤ 0.19`; the
//! yellow row's rule columns annotate the advice with which rules
//! matched.

use std::fmt;

use serde::{Deserialize, Serialize};

use mine_metadata::DiscriminationIndex;

use crate::rules::RuleFindings;

/// The light colour of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// "Good" — keep the question.
    Green,
    /// "Fix" — the question needs work.
    Yellow,
    /// "Eliminate or fix" — the question discriminates too poorly.
    Red,
}

impl Signal {
    /// The Table 3 status word for the light.
    #[must_use]
    pub fn status_word(self) -> &'static str {
        match self {
            Signal::Green => "Good",
            Signal::Yellow => "Fix",
            Signal::Red => "Eliminate or fix",
        }
    }

    /// A one-character glyph for text reports.
    #[must_use]
    pub fn glyph(self) -> char {
        match self {
            Signal::Green => 'G',
            Signal::Yellow => 'Y',
            Signal::Red => 'R',
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Signal::Green => "green",
            Signal::Yellow => "yellow",
            Signal::Red => "red",
        };
        f.write_str(name)
    }
}

/// Thresholds of the Table 3 bands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalPolicy {
    /// Smallest `D` that is green (paper: 0.30).
    pub green_min: f64,
    /// Smallest `D` that is yellow (paper: 0.20); below is red.
    pub yellow_min: f64,
}

impl Default for SignalPolicy {
    fn default() -> Self {
        Self {
            green_min: 0.30,
            yellow_min: 0.20,
        }
    }
}

impl SignalPolicy {
    /// Classifies a discrimination index.
    ///
    /// The comparison happens on the value rounded to two decimals,
    /// matching the paper's presentation (D = 0.295 reads as 0.30 →
    /// green; the band "0.2–0.29" is inclusive).
    #[must_use]
    pub fn classify(&self, d: DiscriminationIndex) -> Signal {
        let rounded = (d.value() * 100.0).round() / 100.0;
        if rounded >= self.green_min {
            Signal::Green
        } else if rounded >= self.yellow_min {
            Signal::Yellow
        } else {
            Signal::Red
        }
    }

    /// Produces the teacher-facing advice line for a question: the
    /// Table 3 status word plus the §4.1.2 rule annotations.
    #[must_use]
    pub fn advice(&self, d: DiscriminationIndex, findings: &RuleFindings) -> String {
        let signal = self.classify(d);
        let mut advice = format!("{} (D={:.2})", signal.status_word(), d.value());
        let mut notes = Vec::new();
        for option in &findings.low_allure {
            notes.push(format!("the allure of option {option} is low"));
        }
        for finding in &findings.not_well_defined {
            if finding.is_correct_option {
                notes.push(format!(
                    "correct option {} attracts the low group more ({} vs {})",
                    finding.option, finding.high, finding.low
                ));
            } else {
                notes.push(format!(
                    "wrong option {} attracts the high group more ({} vs {})",
                    finding.option, finding.high, finding.low
                ));
            }
        }
        if findings.both_groups_lack_concept {
            notes.push("whole class lacks the concept; remedial teaching advised".to_string());
        } else if findings.low_group_lacks_concept {
            notes.push("low score group lacks the concept; remedial course advised".to_string());
        }
        if !notes.is_empty() {
            advice.push_str(": ");
            advice.push_str(&notes.join("; "));
        }
        advice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(value: f64) -> DiscriminationIndex {
        DiscriminationIndex::new(value).unwrap()
    }

    #[test]
    fn paper_thresholds() {
        let policy = SignalPolicy::default();
        assert_eq!(policy.classify(d(0.55)), Signal::Green, "question no. 2");
        assert_eq!(policy.classify(d(0.30)), Signal::Green);
        assert_eq!(policy.classify(d(0.29)), Signal::Yellow);
        assert_eq!(policy.classify(d(0.20)), Signal::Yellow);
        assert_eq!(policy.classify(d(0.19)), Signal::Red);
        assert_eq!(policy.classify(d(0.09)), Signal::Red, "question no. 6");
        assert_eq!(policy.classify(d(-0.5)), Signal::Red);
    }

    #[test]
    fn rounding_matches_presentation() {
        let policy = SignalPolicy::default();
        // 0.295 displays as 0.30 → green; 0.195 displays as 0.20 → yellow.
        assert_eq!(policy.classify(d(0.295)), Signal::Green);
        assert_eq!(policy.classify(d(0.195)), Signal::Yellow);
        assert_eq!(policy.classify(d(0.194)), Signal::Red);
    }

    #[test]
    fn status_words_match_table_3() {
        assert_eq!(Signal::Green.status_word(), "Good");
        assert_eq!(Signal::Yellow.status_word(), "Fix");
        assert_eq!(Signal::Red.status_word(), "Eliminate or fix");
    }

    #[test]
    fn advice_mentions_rule_findings() {
        use crate::option_matrix::OptionMatrix;
        use crate::rules::evaluate_rules;
        use mine_core::OptionKey;

        // Question no. 6: D = 0.09, rule 1 flags option A.
        let matrix = OptionMatrix::from_counts(
            "no6".parse().unwrap(),
            OptionKey::D,
            vec![1, 1, 4, 5],
            vec![0, 2, 4, 4],
        );
        let findings = evaluate_rules(&matrix, 0.2);
        let advice = SignalPolicy::default().advice(d(0.09), &findings);
        assert!(advice.starts_with("Eliminate or fix"));
        assert!(advice.contains("allure of option A is low"));
    }

    #[test]
    fn advice_for_clean_green_question_is_short() {
        let advice = SignalPolicy::default().advice(d(0.55), &RuleFindings::default());
        assert_eq!(advice, "Good (D=0.55)");
    }

    #[test]
    fn custom_policy_shifts_bands() {
        let strict = SignalPolicy {
            green_min: 0.4,
            yellow_min: 0.3,
        };
        assert_eq!(strict.classify(d(0.35)), Signal::Yellow);
        assert_eq!(strict.classify(d(0.29)), Signal::Red);
    }

    #[test]
    fn glyphs_and_display() {
        assert_eq!(Signal::Green.glyph(), 'G');
        assert_eq!(Signal::Red.to_string(), "red");
    }
}
