//! Per-question difficulty and discrimination (§4.1.1, steps 3–5).
//!
//! "3rd step: calculate the people answer correct and his percentage in
//! higher group and lower group in each question. 4th step: Calculate
//! each question Item Difficulty Index P=(PH+PL)/2. 5th step: Calculate
//! each question Item Discrimination Index D=PH−PL."

use serde::{Deserialize, Serialize};

use mine_core::{ExamRecord, ProblemId};
use mine_metadata::{DifficultyIndex, DiscriminationIndex};

use crate::error::AnalysisError;
use crate::groups::ScoreGroups;

/// The §4.1.1 numbers for one question: one row of the "number
/// representation" table (`No | PH | PL | D=PH−PL | P=(PH+PL)/2`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuestionIndices {
    /// 1-based question number in exam order.
    pub number: usize,
    /// The problem.
    pub problem: ProblemId,
    /// Fraction of the high group answering correctly.
    pub ph: f64,
    /// Fraction of the low group answering correctly.
    pub pl: f64,
    /// Item Discrimination Index `D = PH − PL`.
    pub discrimination: DiscriminationIndex,
    /// Item Difficulty Index `P = (PH + PL) / 2`.
    pub difficulty: DifficultyIndex,
}

impl QuestionIndices {
    /// Computes the indices of one question from the group split.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::MissingResponse`] when a group member has
    /// no response to the problem.
    pub fn compute(
        record: &ExamRecord,
        groups: &ScoreGroups,
        number: usize,
        problem: &ProblemId,
    ) -> Result<Self, AnalysisError> {
        let correct_in = |members: &[mine_core::StudentId]| -> Result<usize, AnalysisError> {
            let mut count = 0;
            for member in members {
                let student = record
                    .students
                    .iter()
                    .find(|s| &s.student == member)
                    .expect("group members come from the record");
                let response =
                    student
                        .response_to(problem)
                        .ok_or_else(|| AnalysisError::MissingResponse {
                            student: member.to_string(),
                            problem: problem.to_string(),
                        })?;
                if response.is_correct {
                    count += 1;
                }
            }
            Ok(count)
        };
        let group_size = groups.group_size() as f64;
        let ph = correct_in(groups.high())? as f64 / group_size;
        let pl = correct_in(groups.low())? as f64 / group_size;
        Ok(Self {
            number,
            problem: problem.clone(),
            ph,
            pl,
            discrimination: DiscriminationIndex::new(ph - pl)
                .expect("difference of fractions is in [-1, 1]"),
            difficulty: DifficultyIndex::new((ph + pl) / 2.0)
                .expect("mean of fractions is in [0, 1]"),
        })
    }

    /// Computes the whole table: one row per exam problem, in order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuestionIndices::compute`].
    pub fn table(
        record: &ExamRecord,
        groups: &ScoreGroups,
        problems: &[ProblemId],
    ) -> Result<Vec<Self>, AnalysisError> {
        problems
            .iter()
            .enumerate()
            .map(|(i, problem)| Self::compute(record, groups, i + 1, problem))
            .collect()
    }

    /// Renders the §4.1.1 number-representation table as text.
    #[must_use]
    pub fn render_table(rows: &[Self]) -> String {
        let mut out = String::from("No  PH    PL    D=PH-PL  P=(PH+PL)/2\n");
        for row in rows {
            out.push_str(&format!(
                "{:<3} {:<5.2} {:<5.2} {:<8.2} {:.3}\n",
                row.number,
                row.ph,
                row.pl,
                row.discrimination.value(),
                row.difficulty.value(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::{Answer, ExamId, GroupFraction, ItemResponse, OptionKey, StudentRecord};

    /// Builds the §4.1.2 worked example: 44 students, question no. 2 with
    /// high group [0,0,10,1] and low group [3,2,4,2] over options A–D
    /// (correct C), plus filler responses that fix total scores.
    ///
    /// Students are built so the top 11 scorers are exactly the intended
    /// high group and the bottom 11 the intended low group.
    fn paper_record() -> (ExamRecord, ProblemId) {
        let problem: ProblemId = "no2".parse().unwrap();
        let filler: ProblemId = "filler".parse().unwrap();
        let mut students = Vec::new();
        let mut add = |name: String, correct_q2: bool, option: OptionKey, filler_points: f64| {
            let q2 = if correct_q2 {
                ItemResponse::correct(problem.clone(), Answer::Choice(option), 1.0)
            } else {
                ItemResponse::incorrect(problem.clone(), Answer::Choice(option), 1.0)
            };
            let mut pad =
                ItemResponse::correct(filler.clone(), Answer::TrueFalse(true), filler_points);
            pad.points_awarded = filler_points;
            pad.points_possible = 100.0;
            students.push(StudentRecord::new(name.parse().unwrap(), vec![q2, pad]));
        };
        // High group: 10 pick C (correct), 1 picks D. Scores 90+.
        for i in 0..10 {
            add(format!("h{i:02}"), true, OptionKey::C, 90.0 + i as f64);
        }
        add("h10".to_string(), false, OptionKey::D, 99.5);
        // Middle 22 students, scores 50-ish.
        for i in 0..22 {
            add(
                format!("m{i:02}"),
                i % 2 == 0,
                OptionKey::C,
                50.0 + i as f64 / 10.0,
            );
        }
        // Low group: 3 A, 2 B, 4 C (correct), 2 D. Scores < 20.
        let mut low = 0;
        for _ in 0..3 {
            add(
                format!("l{low:02}"),
                false,
                OptionKey::A,
                10.0 + low as f64 / 10.0,
            );
            low += 1;
        }
        for _ in 0..2 {
            add(
                format!("l{low:02}"),
                false,
                OptionKey::B,
                10.0 + low as f64 / 10.0,
            );
            low += 1;
        }
        for _ in 0..4 {
            add(
                format!("l{low:02}"),
                true,
                OptionKey::C,
                10.0 + low as f64 / 10.0,
            );
            low += 1;
        }
        for _ in 0..2 {
            add(
                format!("l{low:02}"),
                false,
                OptionKey::D,
                10.0 + low as f64 / 10.0,
            );
            low += 1;
        }
        (
            ExamRecord::new(ExamId::new("e").unwrap(), students),
            problem,
        )
    }

    #[test]
    fn paper_question_no2_numbers() {
        let (record, problem) = paper_record();
        assert_eq!(record.class_size(), 44);
        let groups = ScoreGroups::split(&record, GroupFraction::PAPER).unwrap();
        assert_eq!(groups.group_size(), 11);
        let indices = QuestionIndices::compute(&record, &groups, 2, &problem).unwrap();
        // PH = 10/11 ≈ 0.909 ≈ 0.91, PL = 4/11 ≈ 0.36 (paper's rounding).
        assert!((indices.ph - 10.0 / 11.0).abs() < 1e-12);
        assert!((indices.pl - 4.0 / 11.0).abs() < 1e-12);
        // D = PH − PL = 6/11 ≈ 0.55 — the paper's D = 0.55 after rounding.
        assert!((indices.discrimination.value() - 6.0 / 11.0).abs() < 1e-12);
        assert_eq!(
            (indices.discrimination.value() * 100.0).round() / 100.0,
            0.55
        );
        // P = (PH + PL)/2 = 7/11 ≈ 0.636 — the paper's 0.635 after its
        // two-step rounding ((0.91 + 0.36)/2).
        assert!((indices.difficulty.value() - 7.0 / 11.0).abs() < 1e-12);
        assert_eq!((indices.difficulty.value() * 100.0).round() / 100.0, 0.64);
    }

    #[test]
    fn all_correct_question_has_zero_discrimination() {
        let (mut record, problem) = paper_record();
        for student in &mut record.students {
            for response in &mut student.responses {
                if response.problem == problem {
                    response.is_correct = true;
                }
            }
        }
        let groups = ScoreGroups::split(&record, GroupFraction::PAPER).unwrap();
        let indices = QuestionIndices::compute(&record, &groups, 1, &problem).unwrap();
        assert_eq!(indices.discrimination.value(), 0.0);
        assert_eq!(indices.difficulty.value(), 1.0);
    }

    #[test]
    fn table_numbers_questions_in_order() {
        let (record, problem) = paper_record();
        let groups = ScoreGroups::split(&record, GroupFraction::PAPER).unwrap();
        let filler: ProblemId = "filler".parse().unwrap();
        let rows = QuestionIndices::table(&record, &groups, &[problem.clone(), filler]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].number, 1);
        assert_eq!(rows[1].number, 2);
        let rendered = QuestionIndices::render_table(&rows);
        assert!(rendered.contains("D=PH-PL"));
        assert!(rendered.lines().count() == 3);
    }

    #[test]
    fn missing_response_is_reported() {
        let (mut record, _) = paper_record();
        // Drop one low-group student's response to no2.
        let victim = record
            .students
            .iter_mut()
            .find(|s| s.student.as_str() == "l00")
            .unwrap();
        victim.responses.retain(|r| r.problem.as_str() != "no2");
        // Record is now inconsistent, which the split itself reports.
        let err = ScoreGroups::split(&record, GroupFraction::PAPER).unwrap_err();
        assert!(matches!(err, AnalysisError::Core(_)));
    }
}
