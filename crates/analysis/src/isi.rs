//! The Instructional Sensitivity Index (§3.4-III).
//!
//! "With the comparison between the test result before teaching and the
//! test result after teaching to analysis Instructional Sensitivity
//! Index." Per question the index is the whole-class correct rate after
//! instruction minus the rate before; a question insensitive to teaching
//! (or taught badly) scores near zero.

use serde::{Deserialize, Serialize};

use mine_core::{ExamRecord, ProblemId};

use crate::error::AnalysisError;

/// ISI results for one exam sat before and after instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstructionalSensitivity {
    /// Per question: `(problem, P_pre, P_post, ISI = P_post − P_pre)`.
    pub per_question: Vec<QuestionSensitivity>,
    /// Mean ISI across questions — the exam-level index stored in
    /// [`mine_metadata::ExamMeta::instructional_sensitivity`].
    pub exam_level: f64,
}

/// One question's sensitivity record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuestionSensitivity {
    /// The question.
    pub problem: ProblemId,
    /// Whole-class correct rate before teaching.
    pub p_pre: f64,
    /// Whole-class correct rate after teaching.
    pub p_post: f64,
    /// `p_post − p_pre`.
    pub isi: f64,
}

/// Whole-class correct rate of one problem.
fn correct_rate(record: &ExamRecord, problem: &ProblemId) -> Result<f64, AnalysisError> {
    if record.students.is_empty() {
        return Err(AnalysisError::EmptyRecord);
    }
    let mut correct = 0usize;
    for student in &record.students {
        let response =
            student
                .response_to(problem)
                .ok_or_else(|| AnalysisError::MissingResponse {
                    student: student.student.to_string(),
                    problem: problem.to_string(),
                })?;
        if response.is_correct {
            correct += 1;
        }
    }
    Ok(correct as f64 / record.students.len() as f64)
}

/// Computes the ISI from pre- and post-instruction sittings of the same
/// exam.
///
/// # Errors
///
/// * [`AnalysisError::EmptyRecord`] when either sitting is empty,
/// * [`AnalysisError::MissingResponse`] when a student record lacks a
///   problem that appears in the pre-instruction sitting.
pub fn instructional_sensitivity(
    pre: &ExamRecord,
    post: &ExamRecord,
) -> Result<InstructionalSensitivity, AnalysisError> {
    let problems = pre.problems();
    if problems.is_empty() || post.students.is_empty() {
        return Err(AnalysisError::EmptyRecord);
    }
    let mut per_question = Vec::with_capacity(problems.len());
    for problem in &problems {
        let p_pre = correct_rate(pre, problem)?;
        let p_post = correct_rate(post, problem)?;
        per_question.push(QuestionSensitivity {
            problem: problem.clone(),
            p_pre,
            p_post,
            isi: p_post - p_pre,
        });
    }
    let exam_level = per_question.iter().map(|q| q.isi).sum::<f64>() / per_question.len() as f64;
    Ok(InstructionalSensitivity {
        per_question,
        exam_level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::{Answer, ExamId, ItemResponse, StudentRecord};

    /// Builds a record where `rates[q]` of students answer question q
    /// correctly.
    fn record(rates: &[f64], class: usize) -> ExamRecord {
        let students = (0..class)
            .map(|i| {
                let responses = rates
                    .iter()
                    .enumerate()
                    .map(|(q, &rate)| {
                        let pid = format!("q{q}").parse().unwrap();
                        if (i as f64) < rate * class as f64 {
                            ItemResponse::correct(pid, Answer::TrueFalse(true), 1.0)
                        } else {
                            ItemResponse::incorrect(pid, Answer::TrueFalse(false), 1.0)
                        }
                    })
                    .collect();
                StudentRecord::new(format!("s{i:03}").parse().unwrap(), responses)
            })
            .collect();
        ExamRecord::new(ExamId::new("e").unwrap(), students)
    }

    #[test]
    fn isi_is_post_minus_pre() {
        let pre = record(&[0.2, 0.5], 10);
        let post = record(&[0.8, 0.5], 10);
        let isi = instructional_sensitivity(&pre, &post).unwrap();
        assert_eq!(isi.per_question.len(), 2);
        assert!((isi.per_question[0].isi - 0.6).abs() < 1e-9);
        assert!((isi.per_question[1].isi - 0.0).abs() < 1e-9);
        assert!((isi.exam_level - 0.3).abs() < 1e-9);
    }

    #[test]
    fn negative_isi_when_teaching_hurts() {
        let pre = record(&[0.9], 10);
        let post = record(&[0.4], 10);
        let isi = instructional_sensitivity(&pre, &post).unwrap();
        assert!(isi.exam_level < 0.0);
    }

    #[test]
    fn different_class_sizes_are_fine() {
        let pre = record(&[0.5], 10);
        let post = record(&[0.75], 40);
        let isi = instructional_sensitivity(&pre, &post).unwrap();
        assert!((isi.per_question[0].p_pre - 0.5).abs() < 1e-9);
        assert!((isi.per_question[0].p_post - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_records_error() {
        let pre = record(&[0.5], 10);
        let empty = ExamRecord::new(ExamId::new("e").unwrap(), vec![]);
        assert!(instructional_sensitivity(&empty, &pre).is_err());
        assert!(instructional_sensitivity(&pre, &empty).is_err());
    }

    #[test]
    fn post_missing_a_problem_errors() {
        let pre = record(&[0.5, 0.5], 10);
        let post = record(&[0.5], 10);
        assert!(matches!(
            instructional_sensitivity(&pre, &post).unwrap_err(),
            AnalysisError::MissingResponse { .. }
        ));
    }
}
