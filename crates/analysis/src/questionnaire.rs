//! Questionnaire analysis (§3.2-VI).
//!
//! Questionnaires have no correct answer; their analysis is the
//! distribution of responses per option — how the class *felt*. This
//! module summarizes one questionnaire prompt across a sitting: counts,
//! proportions, the modal option, and (for Likert-style ordered scales)
//! the mean position.

use serde::{Deserialize, Serialize};

use mine_core::{ExamRecord, OptionKey, ProblemId};

use crate::error::AnalysisError;

/// Response distribution of one questionnaire prompt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuestionnaireSummary {
    /// The prompt analyzed.
    pub problem: ProblemId,
    /// `counts[i]` = students choosing option `i`.
    pub counts: Vec<usize>,
    /// Students who answered at all.
    pub respondents: usize,
    /// Students who skipped.
    pub skipped: usize,
    /// The most chosen option (smallest key on ties), if anyone answered.
    pub modal: Option<OptionKey>,
    /// Mean 0-based option position — meaningful for ordered (Likert)
    /// scales; `None` when nobody answered.
    pub mean_position: Option<f64>,
}

impl QuestionnaireSummary {
    /// Proportion choosing `option` among respondents (0 when nobody
    /// answered).
    #[must_use]
    pub fn proportion(&self, option: OptionKey) -> f64 {
        if self.respondents == 0 {
            return 0.0;
        }
        self.counts.get(option.index()).copied().unwrap_or(0) as f64 / self.respondents as f64
    }

    /// A text histogram of the distribution.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "questionnaire {} — {} respondents, {} skipped\n",
            self.problem, self.respondents, self.skipped
        );
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (i, &count) in self.counts.iter().enumerate() {
            let key = OptionKey::from_index(i).expect("counts within alphabet");
            let bar = "#".repeat(count * 40 / max);
            out.push_str(&format!("  {} {:>4} |{}\n", key.letter(), count, bar));
        }
        if let Some(mean) = self.mean_position {
            out.push_str(&format!("  mean position: {mean:.2}\n"));
        }
        out
    }
}

/// Summarizes one questionnaire prompt across the whole class.
///
/// # Errors
///
/// * [`AnalysisError::EmptyRecord`] for an empty class,
/// * [`AnalysisError::MissingResponse`] when a student never saw the
///   prompt.
pub fn summarize_questionnaire(
    record: &ExamRecord,
    problem: &ProblemId,
    option_count: usize,
) -> Result<QuestionnaireSummary, AnalysisError> {
    if record.students.is_empty() {
        return Err(AnalysisError::EmptyRecord);
    }
    let mut counts = vec![0usize; option_count];
    let mut respondents = 0usize;
    let mut skipped = 0usize;
    for student in &record.students {
        let response =
            student
                .response_to(problem)
                .ok_or_else(|| AnalysisError::MissingResponse {
                    student: student.student.to_string(),
                    problem: problem.to_string(),
                })?;
        match response.answer.chosen_option() {
            Some(key) if key.index() < option_count => {
                counts[key.index()] += 1;
                respondents += 1;
            }
            _ => skipped += 1,
        }
    }
    let modal = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| OptionKey::from_index(i).expect("within alphabet"));
    let mean_position = if respondents > 0 {
        Some(
            counts
                .iter()
                .enumerate()
                .map(|(i, &c)| i as f64 * c as f64)
                .sum::<f64>()
                / respondents as f64,
        )
    } else {
        None
    };
    Ok(QuestionnaireSummary {
        problem: problem.clone(),
        counts,
        respondents,
        skipped,
        modal,
        mean_position,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::{Answer, ExamId, ItemResponse, StudentRecord};

    fn record(choices: &[Option<OptionKey>]) -> (ExamRecord, ProblemId) {
        let pid: ProblemId = "survey".parse().unwrap();
        let students = choices
            .iter()
            .enumerate()
            .map(|(i, choice)| {
                let answer = choice.map_or(Answer::Skipped, Answer::Choice);
                let response = ItemResponse {
                    problem: pid.clone(),
                    answer,
                    is_correct: false,
                    points_awarded: 0.0,
                    points_possible: 0.0,
                    time_spent: std::time::Duration::ZERO,
                    answered_at: None,
                };
                StudentRecord::new(format!("s{i:02}").parse().unwrap(), vec![response])
            })
            .collect();
        (ExamRecord::new(ExamId::new("e").unwrap(), students), pid)
    }

    #[test]
    fn counts_and_modal() {
        let (rec, pid) = record(&[
            Some(OptionKey::A),
            Some(OptionKey::B),
            Some(OptionKey::B),
            Some(OptionKey::C),
            None,
        ]);
        let summary = summarize_questionnaire(&rec, &pid, 4).unwrap();
        assert_eq!(summary.counts, vec![1, 2, 1, 0]);
        assert_eq!(summary.respondents, 4);
        assert_eq!(summary.skipped, 1);
        assert_eq!(summary.modal, Some(OptionKey::B));
        assert!((summary.proportion(OptionKey::B) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_position_for_likert() {
        // Two at position 0, two at position 4 → mean 2.0.
        let (rec, pid) = record(&[
            Some(OptionKey::A),
            Some(OptionKey::A),
            Some(OptionKey::E),
            Some(OptionKey::E),
        ]);
        let summary = summarize_questionnaire(&rec, &pid, 5).unwrap();
        assert_eq!(summary.mean_position, Some(2.0));
    }

    #[test]
    fn all_skipped_has_no_modal() {
        let (rec, pid) = record(&[None, None]);
        let summary = summarize_questionnaire(&rec, &pid, 3).unwrap();
        assert_eq!(summary.modal, None);
        assert_eq!(summary.mean_position, None);
        assert_eq!(summary.skipped, 2);
        assert_eq!(summary.proportion(OptionKey::A), 0.0);
    }

    #[test]
    fn modal_tie_prefers_smaller_key() {
        let (rec, pid) = record(&[Some(OptionKey::A), Some(OptionKey::C)]);
        let summary = summarize_questionnaire(&rec, &pid, 3).unwrap();
        assert_eq!(summary.modal, Some(OptionKey::A));
    }

    #[test]
    fn render_shows_bars() {
        let (rec, pid) = record(&[Some(OptionKey::A), Some(OptionKey::A), Some(OptionKey::B)]);
        let text = summarize_questionnaire(&rec, &pid, 2).unwrap().render();
        assert!(text.contains("A    2"));
        assert!(text.contains('#'));
        assert!(text.contains("mean position"));
    }

    #[test]
    fn empty_class_errors() {
        let rec = ExamRecord::new(ExamId::new("e").unwrap(), vec![]);
        assert!(summarize_questionnaire(&rec, &"s".parse().unwrap(), 3).is_err());
    }

    #[test]
    fn missing_prompt_errors() {
        let (rec, _) = record(&[Some(OptionKey::A)]);
        assert!(matches!(
            summarize_questionnaire(&rec, &"other".parse().unwrap(), 3),
            Err(AnalysisError::MissingResponse { .. })
        ));
    }
}
