//! The three whole-test figure representations (§4.2.1).
//!
//! 1. **Time vs. questions answered** — "the figure shows the test time
//!    is enough or not": the average number of questions the class has
//!    answered by each moment of the sitting.
//! 2. **Test score vs. degree of difficulty** — "shows the distribution
//!    of score and difficulty": one point per student, `x` their total
//!    score, `y` the mean Item Difficulty Index of the questions they
//!    answered correctly (weak students survive only on easy items, so a
//!    healthy exam slopes downward).
//! 3. **Cognition level vs. learning content subject** — the Table 4
//!    counts as a plottable matrix.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use mine_core::{CognitionLevel, ExamRecord};
use mine_itembank::Problem;

use crate::indices::QuestionIndices;
use crate::two_way::TwoWayTable;

/// One point of a 2-D figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FigurePoint {
    /// Horizontal value.
    pub x: f64,
    /// Vertical value.
    pub y: f64,
}

/// All three §4.2.1 figures as data series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Figures {
    /// Figure 1: `(seconds, average questions answered)`.
    pub time_answered: Vec<FigurePoint>,
    /// Figure 2: `(student score, mean difficulty of their correct
    /// answers)`.
    pub score_difficulty: Vec<FigurePoint>,
    /// Figure 3: per subject, questions per Bloom level.
    pub cognition_subject: Vec<(String, [usize; CognitionLevel::COUNT])>,
    /// Figure 2's companion: the score distribution as
    /// `(bucket lower edge, student count)` over ten equal buckets.
    pub score_histogram: Vec<(f64, usize)>,
}

impl Figures {
    /// Builds all three figures.
    #[must_use]
    pub fn build(
        record: &ExamRecord,
        problems: &[Problem],
        indices: &[QuestionIndices],
        samples: usize,
    ) -> Self {
        Self {
            time_answered: time_answered_series(record, samples),
            score_difficulty: score_difficulty_scatter(record, indices),
            cognition_subject: cognition_subject_matrix(problems),
            score_histogram: score_histogram(record, 10),
        }
    }
}

/// The score distribution: `buckets` equal-width bins over
/// `[0, max_score]`, returned as `(bucket lower edge, count)`.
#[must_use]
pub fn score_histogram(record: &ExamRecord, buckets: usize) -> Vec<(f64, usize)> {
    if record.students.is_empty() || buckets == 0 {
        return Vec::new();
    }
    let max_score = record
        .students
        .iter()
        .map(mine_core::StudentRecord::max_score)
        .fold(0.0f64, f64::max);
    if max_score <= 0.0 {
        return Vec::new();
    }
    let width = max_score / buckets as f64;
    let mut counts = vec![0usize; buckets];
    for student in &record.students {
        let index = ((student.score() / width).floor() as usize).min(buckets - 1);
        counts[index] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, count)| (i as f64 * width, count))
        .collect()
}

/// Figure (1): average cumulative answered count sampled at `samples`
/// evenly spaced times across the longest sitting.
#[must_use]
pub fn time_answered_series(record: &ExamRecord, samples: usize) -> Vec<FigurePoint> {
    let max_time = record
        .students
        .iter()
        .map(|s| s.total_time)
        .max()
        .unwrap_or(Duration::ZERO);
    if record.students.is_empty() || samples == 0 || max_time.is_zero() {
        return Vec::new();
    }
    (1..=samples)
        .map(|i| {
            let t = max_time.mul_f64(i as f64 / samples as f64);
            let total_answered: usize = record
                .students
                .iter()
                .map(|s| {
                    s.responses
                        .iter()
                        .filter(|r| r.answered_at.is_some_and(|at| at <= t))
                        .count()
                })
                .sum();
            FigurePoint {
                x: t.as_secs_f64(),
                y: total_answered as f64 / record.students.len() as f64,
            }
        })
        .collect()
}

/// Figure (2): one point per student — total score vs. the mean
/// difficulty index (`P`, larger = easier) of the questions they got
/// right. Students with no correct answers are omitted.
#[must_use]
pub fn score_difficulty_scatter(
    record: &ExamRecord,
    indices: &[QuestionIndices],
) -> Vec<FigurePoint> {
    // Difficulty by problem id, built once; first entry wins like the
    // per-response `find` this replaces, and summation stays in
    // response order, so the points are bit-identical.
    let difficulty_of: std::collections::HashMap<&str, f64> = indices
        .iter()
        .rev()
        .map(|i| (i.problem.as_str(), i.difficulty.value()))
        .collect();
    record
        .students
        .iter()
        .filter_map(|student| {
            let mut sum = 0.0f64;
            let mut count = 0usize;
            for response in student.responses.iter().filter(|r| r.is_correct) {
                if let Some(&p) = difficulty_of.get(response.problem.as_str()) {
                    sum += p;
                    count += 1;
                }
            }
            if count == 0 {
                return None;
            }
            Some(FigurePoint {
                x: student.score(),
                y: sum / count as f64,
            })
        })
        .collect()
}

/// Figure (3): the cognition-level × subject counts.
#[must_use]
pub fn cognition_subject_matrix<'a>(
    problems: impl IntoIterator<Item = &'a Problem>,
) -> Vec<(String, [usize; CognitionLevel::COUNT])> {
    cognition_subject_matrix_from(&TwoWayTable::from_problems(problems))
}

/// [`cognition_subject_matrix`] over an already-built two-way table,
/// for callers that need the table itself as well.
#[must_use]
pub fn cognition_subject_matrix_from(
    table: &TwoWayTable,
) -> Vec<(String, [usize; CognitionLevel::COUNT])> {
    table
        .concepts()
        .into_iter()
        .map(|concept| {
            let mut row = [0usize; CognitionLevel::COUNT];
            for level in CognitionLevel::ALL {
                row[level.index()] = table.cell(concept, level);
            }
            (concept.to_string(), row)
        })
        .collect()
}

/// Renders a series as a coarse ASCII scatter (for the bench harness and
/// terminal reports).
#[must_use]
pub fn render_ascii(points: &[FigurePoint], width: usize, height: usize) -> String {
    if points.is_empty() || width == 0 || height == 0 {
        return String::from("(no data)\n");
    }
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let span_x = (max_x - min_x).max(f64::MIN_POSITIVE);
    let span_y = (max_y - min_y).max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![' '; width]; height];
    for p in points {
        let col = (((p.x - min_x) / span_x) * (width - 1) as f64).round() as usize;
        let row = (((p.y - min_y) / span_y) * (height - 1) as f64).round() as usize;
        grid[height - 1 - row][col] = '*';
    }
    let mut out = String::new();
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    out.push_str(&format!(
        "x: {min_x:.1}..{max_x:.1}  y: {min_y:.2}..{max_y:.2}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::{Answer, ExamId, ItemResponse, ProblemId, StudentRecord};
    use mine_metadata::{DifficultyIndex, DiscriminationIndex};

    fn pid(s: &str) -> ProblemId {
        s.parse().unwrap()
    }

    fn record() -> ExamRecord {
        // Two students: fast answers everything, slow answers half.
        let mk = |name: &str, answered: usize, step: u64| {
            let responses = (0..4)
                .map(|q| {
                    let mut r = if q < answered {
                        ItemResponse::correct(pid(&format!("q{q}")), Answer::TrueFalse(true), 1.0)
                    } else {
                        ItemResponse::incorrect(pid(&format!("q{q}")), Answer::Skipped, 1.0)
                    };
                    if q < answered {
                        r.answered_at = Some(Duration::from_secs(step * (q as u64 + 1)));
                        r.time_spent = Duration::from_secs(step);
                    }
                    r
                })
                .collect();
            let mut record = StudentRecord::new(name.parse().unwrap(), responses);
            record.total_time = Duration::from_secs(step * answered as u64);
            record
        };
        ExamRecord::new(
            ExamId::new("e").unwrap(),
            vec![mk("fast", 4, 30), mk("slow", 2, 100)],
        )
    }

    fn indices() -> Vec<QuestionIndices> {
        (0..4)
            .map(|q| QuestionIndices {
                number: q + 1,
                problem: pid(&format!("q{q}")),
                ph: 0.9,
                pl: 0.3,
                discrimination: DiscriminationIndex::new(0.6).unwrap(),
                difficulty: DifficultyIndex::new(0.2 + 0.2 * q as f64).unwrap(),
            })
            .collect()
    }

    #[test]
    fn time_series_is_monotonic_nondecreasing() {
        let series = time_answered_series(&record(), 10);
        assert_eq!(series.len(), 10);
        for pair in series.windows(2) {
            assert!(pair[1].y >= pair[0].y);
            assert!(pair[1].x > pair[0].x);
        }
        // At the final sample everyone has answered what they answered.
        assert!((series.last().unwrap().y - 3.0).abs() < 1e-9, "(4 + 2)/2");
    }

    #[test]
    fn time_series_empty_cases() {
        let empty = ExamRecord::new(ExamId::new("e").unwrap(), vec![]);
        assert!(time_answered_series(&empty, 5).is_empty());
        assert!(time_answered_series(&record(), 0).is_empty());
    }

    #[test]
    fn score_difficulty_one_point_per_scoring_student() {
        let scatter = score_difficulty_scatter(&record(), &indices());
        assert_eq!(scatter.len(), 2);
        // fast scored 4, mean P over q0..q3 = (0.2+0.4+0.6+0.8)/4 = 0.5.
        let fast = scatter.iter().find(|p| p.x == 4.0).unwrap();
        assert!((fast.y - 0.5).abs() < 1e-9);
        // slow scored 2 on q0,q1 → mean P = 0.3.
        let slow = scatter.iter().find(|p| p.x == 2.0).unwrap();
        assert!((slow.y - 0.3).abs() < 1e-9);
    }

    #[test]
    fn zero_scorers_are_omitted() {
        let mut rec = record();
        for response in &mut rec.students[1].responses {
            response.is_correct = false;
        }
        let scatter = score_difficulty_scatter(&rec, &indices());
        assert_eq!(scatter.len(), 1);
    }

    #[test]
    fn cognition_subject_matrix_from_problems() {
        let problems = vec![
            Problem::true_false("a", "x", true)
                .unwrap()
                .with_subject("tcp")
                .with_cognition_level(CognitionLevel::Knowledge),
            Problem::true_false("b", "x", true)
                .unwrap()
                .with_subject("tcp")
                .with_cognition_level(CognitionLevel::Analysis),
        ];
        let matrix = cognition_subject_matrix(&problems);
        assert_eq!(matrix.len(), 1);
        assert_eq!(matrix[0].0, "tcp");
        assert_eq!(matrix[0].1[CognitionLevel::Knowledge.index()], 1);
        assert_eq!(matrix[0].1[CognitionLevel::Analysis.index()], 1);
        assert_eq!(matrix[0].1[CognitionLevel::Evaluation.index()], 0);
    }

    #[test]
    fn ascii_render_contains_points_and_axes() {
        let points = vec![
            FigurePoint { x: 0.0, y: 0.0 },
            FigurePoint { x: 10.0, y: 5.0 },
        ];
        let art = render_ascii(&points, 20, 5);
        assert_eq!(art.matches('*').count(), 2);
        assert!(art.contains("x: 0.0..10.0"));
        assert_eq!(render_ascii(&[], 20, 5), "(no data)\n");
    }

    #[test]
    fn figures_build_assembles_everything() {
        let figures = Figures::build(&record(), &[], &indices(), 5);
        assert_eq!(figures.time_answered.len(), 5);
        assert_eq!(figures.score_difficulty.len(), 2);
        assert!(figures.cognition_subject.is_empty());
        assert_eq!(figures.score_histogram.len(), 10);
    }

    #[test]
    fn score_histogram_buckets_cover_all_students() {
        let hist = score_histogram(&record(), 4);
        assert_eq!(hist.len(), 4);
        assert_eq!(hist.iter().map(|(_, c)| c).sum::<usize>(), 2);
        // fast scored 4/4 → top bucket; slow scored 2/4 → third bucket.
        assert_eq!(hist[3].1, 1);
        assert_eq!(hist[2].1, 1);
        // Bucket edges ascend by max_score / buckets = 1.0.
        assert_eq!(hist[1].0, 1.0);
    }

    #[test]
    fn score_histogram_degenerate_cases() {
        let empty = ExamRecord::new(ExamId::new("e").unwrap(), vec![]);
        assert!(score_histogram(&empty, 10).is_empty());
        assert!(score_histogram(&record(), 0).is_empty());
    }
}
