//! The whole-test signal interface (Figure 2).
//!
//! Figure 2 of the paper shows a row of traffic lights, one per
//! question, with the computed indices beside them. This module renders
//! that interface as text so the teacher (or the bench harness) can see
//! the entire test at a glance.

use crate::exam_analysis::ExamAnalysis;
use crate::signal::Signal;

/// Renders the Figure 2 signal report.
///
/// One line per question: number, light, `D`, `P`, `PH`, `PL`, and the
/// advice. A summary line counts the lights.
#[must_use]
pub fn render_signal_report(analysis: &ExamAnalysis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Signal report — class of {}, groups of {} ({} each side)\n",
        analysis.statistics.class_size,
        analysis.groups.group_size(),
        analysis.groups.fraction(),
    ));
    out.push_str("No.  Light  D      P      PH     PL     Advice\n");
    let mut counts = [0usize; 3];
    for question in &analysis.questions {
        let signal = question.signal;
        counts[match signal {
            Signal::Green => 0,
            Signal::Yellow => 1,
            Signal::Red => 2,
        }] += 1;
        out.push_str(&format!(
            "{:<4} [{}]    {:<6.2} {:<6.2} {:<6.2} {:<6.2} {}\n",
            question.indices.number,
            signal.glyph(),
            question.indices.discrimination.value(),
            question.indices.difficulty.value(),
            question.indices.ph,
            question.indices.pl,
            question.advice,
        ));
    }
    out.push_str(&format!(
        "lights: {} green, {} yellow, {} red\n",
        counts[0], counts[1], counts[2]
    ));
    out
}

/// Renders the complete teacher-facing report: statistics and
/// reliability, the Figure 2 signal table, per-question detail for every
/// non-green question (Table 1 matrix, statuses, distractor notes), and
/// the whole-test views (Table 4 + paint).
#[must_use]
pub fn render_full_report(analysis: &ExamAnalysis) -> String {
    let mut out = String::new();
    let stats = &analysis.statistics;
    out.push_str("==== EXAM ANALYSIS REPORT ====\n\n");
    out.push_str(&format!(
        "class {}  mean {:.2}/{:.0}  median {:.2}  sd {:.2}  pass rate {:.0}%  avg time {:?}\n",
        stats.class_size,
        stats.mean_score,
        stats.max_score,
        stats.median_score,
        stats.std_dev,
        stats.pass_rate * 100.0,
        stats.average_time,
    ));
    match analysis.reliability.alpha {
        Some(alpha) => out.push_str(&format!(
            "reliability: Cronbach's alpha = {:.3}{}\n",
            alpha,
            analysis
                .reliability
                .sem
                .map(|sem| format!(", SEM = {sem:.2}"))
                .unwrap_or_default()
        )),
        None => out.push_str("reliability: undefined (no score variance or single item)\n"),
    }
    out.push('\n');
    out.push_str(&render_signal_report(analysis));

    for question in analysis.problematic_questions() {
        out.push_str(&format!(
            "\n--- question {} ({}) ---\n",
            question.indices.number, question.indices.problem
        ));
        if let Some(matrix) = &question.matrix {
            out.push_str(&matrix.render());
        }
        for label in question.status.labels() {
            out.push_str(&format!("  status: {label}\n"));
        }
        for distractor in &question.distractors {
            out.push_str(&format!("  {}\n", distractor.describe()));
        }
    }

    if !analysis.surveys.is_empty() {
        out.push_str("\nquestionnaire prompts (not item-analyzed): ");
        let names: Vec<&str> = analysis.surveys.iter().map(|p| p.as_str()).collect();
        out.push_str(&names.join(", "));
        out.push('\n');
    }

    out.push_str("\n==== TWO-WAY SPECIFICATION TABLE ====\n");
    out.push_str(&analysis.two_way.render());
    out.push_str("\npaint view:\n");
    out.push_str(&analysis.two_way.render_paint());
    match analysis.two_way.cognition_pyramid_violation() {
        None => out.push_str("cognition pyramid: holds\n"),
        Some((left, right)) => out.push_str(&format!(
            "cognition pyramid VIOLATED: SUM({left}) < SUM({right})\n"
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use mine_core::OptionKey;
    use mine_itembank::{ChoiceOption, Exam, Problem};
    use mine_simulator::{CohortSpec, ItemParams, Simulation};

    fn analysis() -> ExamAnalysis {
        let problems: Vec<Problem> = (0..4)
            .map(|i| {
                Problem::multiple_choice(
                    format!("q{i}"),
                    format!("Q{i}"),
                    OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("{k}"))),
                    OptionKey::A,
                )
                .unwrap()
            })
            .collect();
        let mut builder = Exam::builder("report").unwrap();
        for i in 0..4 {
            builder = builder.entry(format!("q{i}").parse().unwrap());
        }
        let exam = builder.build().unwrap();
        let record = Simulation::new(exam, problems.clone())
            .cohort(CohortSpec::new(44).seed(9))
            .item_params("q3".parse().unwrap(), ItemParams::new(0.05, 0.0, 0.25))
            .run()
            .unwrap();
        ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default()).unwrap()
    }

    #[test]
    fn report_has_one_line_per_question_plus_header_and_summary() {
        let analysis = analysis();
        let report = render_signal_report(&analysis);
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines.len(), 2 + 4 + 1);
        assert!(lines[0].contains("class of 44"));
        assert!(lines.last().unwrap().starts_with("lights:"));
    }

    #[test]
    fn light_counts_sum_to_question_count() {
        let analysis = analysis();
        let report = render_signal_report(&analysis);
        let summary = report.lines().last().unwrap().to_string();
        let numbers: Vec<usize> = summary
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(numbers.iter().sum::<usize>(), 4);
    }

    #[test]
    fn full_report_contains_all_sections() {
        let analysis = analysis();
        let report = render_full_report(&analysis);
        assert!(report.contains("EXAM ANALYSIS REPORT"));
        assert!(report.contains("Cronbach"));
        assert!(report.contains("TWO-WAY SPECIFICATION TABLE"));
        assert!(report.contains("paint view:"));
        // Every non-green question gets a detail block with its matrix.
        if analysis.problematic_questions().count() > 0 {
            assert!(report.contains("High Score Group"));
        }
    }

    #[test]
    fn glyphs_match_signals() {
        let analysis = analysis();
        let report = render_signal_report(&analysis);
        for (line, question) in report.lines().skip(2).zip(&analysis.questions) {
            assert!(line.contains(&format!("[{}]", question.signal.glyph())));
        }
    }
}
