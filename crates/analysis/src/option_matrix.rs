//! The per-option response matrix (Table 1).
//!
//! "In table 1, we defined a single problem item attribute. HA means the
//! number of students in high score group select option A. The other HB,
//! HC, HD, HE, LA, LB, LC, LD and LE are the same meaning."

use serde::{Deserialize, Serialize};

use mine_core::{ExamRecord, OptionKey, ProblemId, StudentId};

use crate::error::AnalysisError;
use crate::groups::ScoreGroups;

/// Table 1 for one question: per-option counts in the high and low
/// score groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptionMatrix {
    /// The problem.
    pub problem: ProblemId,
    /// Key of the correct option.
    pub correct: OptionKey,
    /// `high[i]` = students in the high group choosing option `i`
    /// (`HA`, `HB`, …).
    pub high: Vec<usize>,
    /// `low[i]` = students in the low group choosing option `i`
    /// (`LA`, `LB`, …).
    pub low: Vec<usize>,
}

impl OptionMatrix {
    /// Builds the matrix directly from counts (the form the paper's
    /// examples give).
    ///
    /// # Panics
    ///
    /// Panics when `high` and `low` differ in length, are empty, or the
    /// correct key is out of range.
    #[must_use]
    pub fn from_counts(
        problem: ProblemId,
        correct: OptionKey,
        high: Vec<usize>,
        low: Vec<usize>,
    ) -> Self {
        assert_eq!(high.len(), low.len(), "groups must cover the same options");
        assert!(!high.is_empty(), "matrix needs at least one option");
        assert!(correct.index() < high.len(), "correct key out of range");
        Self {
            problem,
            correct,
            high,
            low,
        }
    }

    /// Extracts the matrix for one choice problem from an exam record.
    ///
    /// Skipped/other answers are not counted in any option column (the
    /// paper's examples always have every group member choosing an
    /// option, but real data may not).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::MissingResponse`] when a group member
    /// never saw the problem.
    pub fn from_record(
        record: &ExamRecord,
        groups: &ScoreGroups,
        problem: &ProblemId,
        option_count: usize,
        correct: OptionKey,
    ) -> Result<Self, AnalysisError> {
        let tally = |members: &[StudentId]| -> Result<Vec<usize>, AnalysisError> {
            let mut counts = vec![0usize; option_count];
            for member in members {
                let student = record
                    .students
                    .iter()
                    .find(|s| &s.student == member)
                    .expect("group members come from the record");
                let response =
                    student
                        .response_to(problem)
                        .ok_or_else(|| AnalysisError::MissingResponse {
                            student: member.to_string(),
                            problem: problem.to_string(),
                        })?;
                if let Some(key) = response.answer.chosen_option() {
                    if key.index() < option_count {
                        counts[key.index()] += 1;
                    }
                }
            }
            Ok(counts)
        };
        Ok(Self {
            problem: problem.clone(),
            correct,
            high: tally(groups.high())?,
            low: tally(groups.low())?,
        })
    }

    /// Number of options.
    #[must_use]
    pub fn option_count(&self) -> usize {
        self.high.len()
    }

    /// `H` count of one option.
    #[must_use]
    pub fn high_count(&self, key: OptionKey) -> usize {
        self.high.get(key.index()).copied().unwrap_or(0)
    }

    /// `L` count of one option.
    #[must_use]
    pub fn low_count(&self, key: OptionKey) -> usize {
        self.low.get(key.index()).copied().unwrap_or(0)
    }

    /// `HS`: total high-group selections.
    #[must_use]
    pub fn high_sum(&self) -> usize {
        self.high.iter().sum()
    }

    /// `LS`: total low-group selections.
    #[must_use]
    pub fn low_sum(&self) -> usize {
        self.low.iter().sum()
    }

    /// `HM`/`Hm`: max and min high-group counts.
    #[must_use]
    pub fn high_extremes(&self) -> (usize, usize) {
        extremes(&self.high)
    }

    /// `LM`/`Lm`: max and min low-group counts.
    #[must_use]
    pub fn low_extremes(&self) -> (usize, usize) {
        extremes(&self.low)
    }

    /// Iterates over option keys.
    pub fn keys(&self) -> impl Iterator<Item = OptionKey> {
        OptionKey::first(self.option_count())
    }

    /// Renders Table 1 as text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("                 ");
        for key in self.keys() {
            out.push_str(&format!("Option {} ", key.letter()));
        }
        out.push('\n');
        out.push_str("High Score Group ");
        for count in &self.high {
            out.push_str(&format!("{count:<9}"));
        }
        out.push('\n');
        out.push_str("Low Score Group  ");
        for count in &self.low {
            out.push_str(&format!("{count:<9}"));
        }
        out.push('\n');
        out
    }
}

fn extremes(counts: &[usize]) -> (usize, usize) {
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    (max, min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::{Answer, ExamId, GroupFraction, ItemResponse, StudentRecord};

    fn pid() -> ProblemId {
        "q".parse().unwrap()
    }

    #[test]
    fn paper_example_1_counts() {
        // §4.1.2 Example 1.
        let matrix = OptionMatrix::from_counts(
            pid(),
            OptionKey::A,
            vec![12, 2, 0, 3, 3],
            vec![6, 4, 0, 5, 5],
        );
        assert_eq!(matrix.option_count(), 5);
        assert_eq!(matrix.high_sum(), 20);
        assert_eq!(matrix.low_sum(), 20);
        assert_eq!(matrix.low_count(OptionKey::C), 0);
        assert_eq!(matrix.high_extremes(), (12, 0));
    }

    #[test]
    fn paper_example_3_extremes() {
        // §4.1.2 Example 3: LM=5, Lm=2, LS=20.
        let matrix = OptionMatrix::from_counts(
            pid(),
            OptionKey::A,
            vec![15, 2, 2, 0, 1],
            vec![5, 4, 5, 4, 2],
        );
        assert_eq!(matrix.low_extremes(), (5, 2));
        assert_eq!(matrix.low_sum(), 20);
    }

    #[test]
    #[should_panic(expected = "same options")]
    fn mismatched_group_lengths_panic() {
        let _ = OptionMatrix::from_counts(pid(), OptionKey::A, vec![1, 2], vec![1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn correct_key_out_of_range_panics() {
        let _ = OptionMatrix::from_counts(pid(), OptionKey::E, vec![1, 2], vec![1, 2]);
    }

    #[test]
    fn from_record_tallies_choices() {
        // 8 students: scores descending s0..s7, group size 2.
        // s0 picks A, s1 picks B (high group); s6 picks C, s7 skips (low).
        let choices = [
            Some(OptionKey::A),
            Some(OptionKey::B),
            Some(OptionKey::A),
            Some(OptionKey::A),
            Some(OptionKey::B),
            Some(OptionKey::C),
            Some(OptionKey::C),
            None,
        ];
        let students = choices
            .iter()
            .enumerate()
            .map(|(i, choice)| {
                let answer = match choice {
                    Some(key) => Answer::Choice(*key),
                    None => Answer::Skipped,
                };
                let response = ItemResponse {
                    problem: pid(),
                    answer,
                    is_correct: *choice == Some(OptionKey::A),
                    points_awarded: 0.0,
                    points_possible: 1.0,
                    time_spent: std::time::Duration::ZERO,
                    answered_at: None,
                };
                // Filler fixes the ranking: s0 highest.
                let mut filler = ItemResponse::correct(
                    "rank".parse().unwrap(),
                    Answer::TrueFalse(true),
                    (8 - i) as f64,
                );
                filler.points_possible = 8.0;
                StudentRecord::new(format!("s{i}").parse().unwrap(), vec![response, filler])
            })
            .collect();
        let record = ExamRecord::new(ExamId::new("e").unwrap(), students);
        let groups = ScoreGroups::split(&record, GroupFraction::PAPER).unwrap();
        let matrix = OptionMatrix::from_record(&record, &groups, &pid(), 3, OptionKey::A).unwrap();
        assert_eq!(matrix.high, vec![1, 1, 0]);
        // Low group: s6 picked C, s7 skipped (uncounted).
        assert_eq!(matrix.low, vec![0, 0, 1]);
        assert_eq!(matrix.low_sum(), 1);
    }

    #[test]
    fn render_contains_all_counts() {
        let matrix = OptionMatrix::from_counts(
            pid(),
            OptionKey::A,
            vec![12, 2, 0, 3, 3],
            vec![6, 4, 0, 5, 5],
        );
        let text = matrix.render();
        assert!(text.contains("Option A"));
        assert!(text.contains("Option E"));
        assert!(text.contains("12"));
        assert!(text.contains("High Score Group"));
    }

    #[test]
    fn serde_round_trip() {
        let matrix = OptionMatrix::from_counts(pid(), OptionKey::B, vec![1, 2, 3], vec![3, 2, 1]);
        let json = serde_json::to_string(&matrix).unwrap();
        let back: OptionMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, matrix);
    }
}
