//! Rule-to-status mapping (Table 2).
//!
//! "From each rule we can identify what kind of status in our test. Some
//! of the information is useful for correcting the improper questions
//! given in the exam, and the others are useful for instructors to
//! realize students' learning."
//!
//! Table 2 columns: the option's allure is low / the option meaning is
//! not clear / careless / not only one exact answer / low score group
//! lack concept / high score group lack concept. Rule 1 maps to the
//! first; Rule 2 to the next three; Rule 3 to the fifth; Rule 4 to the
//! last two.

use serde::{Deserialize, Serialize};

use crate::rules::RuleFindings;

/// The Table 2 status columns for one question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StatusFlags {
    /// "The option's allure is low" (Rule 1).
    pub option_allure_low: bool,
    /// "The option meaning is not clear" (Rule 2).
    pub option_meaning_unclear: bool,
    /// "Careless" (Rule 2).
    pub careless: bool,
    /// "Not only one exact answer" (Rule 2).
    pub multiple_exact_answers: bool,
    /// "Low score group lack concept" (Rules 3 and 4).
    pub low_group_lacks_concept: bool,
    /// "High score group lack concept" (Rule 4).
    pub high_group_lacks_concept: bool,
}

impl StatusFlags {
    /// Derives the status columns from rule findings per Table 2.
    #[must_use]
    pub fn from_rules(findings: &RuleFindings) -> Self {
        let rule2 = findings.rule2();
        Self {
            option_allure_low: findings.rule1(),
            option_meaning_unclear: rule2,
            careless: rule2,
            multiple_exact_answers: rule2,
            low_group_lacks_concept: findings.low_group_lacks_concept
                || findings.both_groups_lack_concept,
            high_group_lacks_concept: findings.both_groups_lack_concept,
        }
    }

    /// Whether any status column is set.
    #[must_use]
    pub fn any(&self) -> bool {
        self.option_allure_low
            || self.option_meaning_unclear
            || self.careless
            || self.multiple_exact_answers
            || self.low_group_lacks_concept
            || self.high_group_lacks_concept
    }

    /// The set columns as human-readable labels (Table 2 headers).
    #[must_use]
    pub fn labels(&self) -> Vec<&'static str> {
        let mut labels = Vec::new();
        if self.option_allure_low {
            labels.push("The option's allure is low");
        }
        if self.option_meaning_unclear {
            labels.push("The option meaning is not clear");
        }
        if self.careless {
            labels.push("Careless");
        }
        if self.multiple_exact_answers {
            labels.push("Not only one exact answer");
        }
        if self.low_group_lacks_concept {
            labels.push("Low score group lack concept");
        }
        if self.high_group_lacks_concept {
            labels.push("High score group lack concept");
        }
        labels
    }
}

/// Renders the static Table 2 (which rule can raise which status).
#[must_use]
pub fn render_rule_status_table() -> String {
    let headers = [
        "The option's allure is low",
        "The option meaning is not clear",
        "Careless",
        "Not only one exact answer",
        "Low score group lack concept",
        "High score group lack concept",
    ];
    // Table 2 of the paper, row per rule: V = can raise, X = cannot.
    let rows: [(&str, [bool; 6]); 4] = [
        ("Rule 1", [true, false, false, false, false, false]),
        ("Rule 2", [false, true, true, true, false, false]),
        ("Rule 3", [false, false, false, false, true, false]),
        ("Rule 4", [false, false, false, false, true, true]),
    ];
    let mut out = String::from("        ");
    for header in headers {
        out.push_str(&format!("| {header} "));
    }
    out.push('\n');
    for (rule, cells) in rows {
        out.push_str(&format!("{rule:<8}"));
        for (cell, header) in cells.iter().zip(headers) {
            let mark = if *cell { "V" } else { "X" };
            out.push_str(&format!("| {mark:^width$} ", width = header.len()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::option_matrix::OptionMatrix;
    use crate::rules::evaluate_rules;
    use mine_core::OptionKey;

    #[test]
    fn rule1_maps_to_allure_only() {
        let matrix = OptionMatrix::from_counts(
            "q".parse().unwrap(),
            OptionKey::A,
            vec![12, 2, 0, 3, 3],
            vec![6, 4, 0, 5, 5],
        );
        let status = StatusFlags::from_rules(&evaluate_rules(&matrix, 0.2));
        assert!(status.option_allure_low);
        assert!(!status.option_meaning_unclear);
        assert!(!status.low_group_lacks_concept);
        assert_eq!(status.labels(), vec!["The option's allure is low"]);
    }

    #[test]
    fn rule2_maps_to_three_statuses() {
        let matrix = OptionMatrix::from_counts(
            "q".parse().unwrap(),
            OptionKey::C,
            vec![1, 2, 10, 0, 7],
            vec![2, 2, 13, 1, 2],
        );
        let findings = evaluate_rules(&matrix, 0.2);
        let status = StatusFlags::from_rules(&findings);
        assert!(status.option_meaning_unclear);
        assert!(status.careless);
        assert!(status.multiple_exact_answers);
    }

    #[test]
    fn rule4_maps_to_both_concept_columns() {
        let matrix = OptionMatrix::from_counts(
            "q".parse().unwrap(),
            OptionKey::A,
            vec![4, 4, 4, 2, 6],
            vec![5, 4, 5, 4, 2],
        );
        let status = StatusFlags::from_rules(&evaluate_rules(&matrix, 0.2));
        assert!(status.low_group_lacks_concept);
        assert!(status.high_group_lacks_concept);
    }

    #[test]
    fn clean_findings_have_no_flags() {
        let status = StatusFlags::from_rules(&RuleFindings::default());
        assert!(!status.any());
        assert!(status.labels().is_empty());
    }

    #[test]
    fn static_table_matches_paper() {
        let table = render_rule_status_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 5);
        // Rule 1 row: exactly one V in the first column.
        assert_eq!(lines[1].matches('V').count(), 1);
        // Rule 2 row: three Vs.
        assert_eq!(lines[2].matches('V').count(), 3);
        // Rule 3 row: one V.
        assert_eq!(lines[3].matches('V').count(), 1);
        // Rule 4 row: two Vs.
        assert_eq!(lines[4].matches('V').count(), 2);
    }
}
