//! High/low score groups (§4.1.1, steps 1–2).
//!
//! "1st step: according to score height arrange the examination paper.
//! 2nd step: we define PH the higher 25 % of total student as the higher
//! group and then PL the lower 25 % of total student as the lower
//! group."

use serde::{Deserialize, Serialize};

use mine_core::{ExamRecord, GroupFraction, StudentId};

use crate::error::AnalysisError;

/// The class split into high and low score groups.
///
/// Membership is deterministic: students are ordered by total score
/// (descending) with ties broken by student id, so repeated analyses of
/// the same record agree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreGroups {
    high: Vec<StudentId>,
    low: Vec<StudentId>,
    class_size: usize,
    fraction: GroupFraction,
}

impl ScoreGroups {
    /// Splits the record's students.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::EmptyRecord`] for zero students,
    /// * [`AnalysisError::ClassTooSmall`] when high and low would share a
    ///   student (class of one),
    /// * [`AnalysisError::Core`] when the record is inconsistent.
    pub fn split(record: &ExamRecord, fraction: GroupFraction) -> Result<Self, AnalysisError> {
        record.validate()?;
        let class_size = record.class_size();
        if class_size == 0 {
            return Err(AnalysisError::EmptyRecord);
        }
        let group_size = fraction.group_size(class_size);
        if 2 * group_size > class_size {
            return Err(AnalysisError::ClassTooSmall { class_size });
        }

        let mut ranked: Vec<(&StudentId, f64)> = record
            .students
            .iter()
            .map(|s| (&s.student, s.score()))
            .collect();
        // Score descending, id ascending — a total order (ids are
        // unique), so partial selection picks exactly the same members
        // a full sort would.
        let by_rank = |a: &(&StudentId, f64), b: &(&StudentId, f64)| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(b.0))
        };
        // Only the two group_size-sized tails need ordering; selecting
        // them is O(n + g·log g) instead of sorting all n students.
        ranked.select_nth_unstable_by(group_size - 1, by_rank);
        ranked[..group_size].sort_unstable_by(by_rank);
        let rest = &mut ranked[group_size..];
        let low_start = rest.len() - group_size;
        if low_start > 0 {
            rest.select_nth_unstable_by(low_start, by_rank);
        }
        rest[low_start..].sort_unstable_by(by_rank);

        let high = ranked[..group_size]
            .iter()
            .map(|(id, _)| (*id).clone())
            .collect();
        let low = ranked[class_size - group_size..]
            .iter()
            .map(|(id, _)| (*id).clone())
            .collect();
        Ok(Self {
            high,
            low,
            class_size,
            fraction,
        })
    }

    /// Reassembles a split computed elsewhere — e.g. by the streaming
    /// engine's incremental ranking, which maintains the same total
    /// order (score descending, id ascending) without re-sorting.
    /// Both groups must be in ranking order (each group's best student
    /// first) and equally sized, like [`ScoreGroups::split`] produces.
    ///
    /// # Panics
    ///
    /// Panics when the groups differ in size.
    #[must_use]
    pub fn from_parts(
        high: Vec<StudentId>,
        low: Vec<StudentId>,
        class_size: usize,
        fraction: GroupFraction,
    ) -> Self {
        assert_eq!(high.len(), low.len(), "groups must be the same size");
        Self {
            high,
            low,
            class_size,
            fraction,
        }
    }

    /// The high-score group, best first.
    #[must_use]
    pub fn high(&self) -> &[StudentId] {
        &self.high
    }

    /// The low-score group, ordered like the ranking (the group's best
    /// student first).
    #[must_use]
    pub fn low(&self) -> &[StudentId] {
        &self.low
    }

    /// Students per group.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.high.len()
    }

    /// Class size the split was computed from.
    #[must_use]
    pub fn class_size(&self) -> usize {
        self.class_size
    }

    /// The fraction used.
    #[must_use]
    pub fn fraction(&self) -> GroupFraction {
        self.fraction
    }

    /// Whether a student is in the high group.
    #[must_use]
    pub fn is_high(&self, student: &StudentId) -> bool {
        self.high.contains(student)
    }

    /// Whether a student is in the low group.
    #[must_use]
    pub fn is_low(&self, student: &StudentId) -> bool {
        self.low.contains(student)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::{Answer, ExamId, ItemResponse, StudentRecord};

    /// A class where student `sNN` scores exactly `NN` points.
    fn record(n: usize) -> ExamRecord {
        let students = (0..n)
            .map(|i| {
                let mut responses = Vec::new();
                for q in 0..n {
                    let pid = format!("q{q}").parse().unwrap();
                    responses.push(if q < i {
                        ItemResponse::correct(pid, Answer::TrueFalse(true), 1.0)
                    } else {
                        ItemResponse::incorrect(pid, Answer::TrueFalse(false), 1.0)
                    });
                }
                StudentRecord::new(format!("s{i:02}").parse().unwrap(), responses)
            })
            .collect();
        ExamRecord::new(ExamId::new("e").unwrap(), students)
    }

    #[test]
    fn paper_class_of_44_gives_groups_of_11() {
        let groups = ScoreGroups::split(&record(44), GroupFraction::PAPER).unwrap();
        assert_eq!(groups.group_size(), 11);
        assert_eq!(groups.class_size(), 44);
        // Top scorer s43 is in high, bottom scorer s00 is in low.
        assert!(groups.is_high(&"s43".parse().unwrap()));
        assert!(groups.is_low(&"s00".parse().unwrap()));
        assert!(!groups.is_low(&"s43".parse().unwrap()));
    }

    #[test]
    fn groups_never_overlap() {
        for n in 2..60 {
            let groups = ScoreGroups::split(&record(n), GroupFraction::PAPER).unwrap();
            for student in groups.high() {
                assert!(!groups.is_low(student), "overlap at n={n}");
            }
        }
    }

    #[test]
    fn kelly_27_percent_changes_group_size() {
        let groups = ScoreGroups::split(&record(100), GroupFraction::KELLY_OPTIMAL).unwrap();
        assert_eq!(groups.group_size(), 27);
    }

    #[test]
    fn empty_record_is_an_error() {
        let record = ExamRecord::new(ExamId::new("e").unwrap(), vec![]);
        assert_eq!(
            ScoreGroups::split(&record, GroupFraction::PAPER).unwrap_err(),
            AnalysisError::EmptyRecord
        );
    }

    #[test]
    fn class_of_one_is_too_small() {
        assert!(matches!(
            ScoreGroups::split(&record(1), GroupFraction::PAPER).unwrap_err(),
            AnalysisError::ClassTooSmall { class_size: 1 }
        ));
    }

    #[test]
    fn ties_break_deterministically_by_id() {
        // Everyone scores the same.
        let students = (0..8)
            .map(|i| {
                StudentRecord::new(
                    format!("s{i}").parse().unwrap(),
                    vec![ItemResponse::correct(
                        "q0".parse().unwrap(),
                        Answer::TrueFalse(true),
                        1.0,
                    )],
                )
            })
            .collect();
        let record = ExamRecord::new(ExamId::new("e").unwrap(), students);
        let a = ScoreGroups::split(&record, GroupFraction::PAPER).unwrap();
        let b = ScoreGroups::split(&record, GroupFraction::PAPER).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.high(), &["s0".parse().unwrap(), "s1".parse().unwrap()]);
        assert_eq!(a.low(), &["s6".parse().unwrap(), "s7".parse().unwrap()]);
    }

    #[test]
    fn boundary_ties_pin_membership_by_id() {
        // Twelve students, scores tied in blocks of three around both
        // group boundaries (group_size = 3): ranking must pick members
        // inside a tied block by id, and the partial selection must
        // agree with what a full sort would produce.
        let score_of = |i: usize| match i {
            0..=2 => 10.0, // tied top block
            3..=5 => 10.0, // same score — 6-way tie across the boundary
            6..=8 => 5.0,
            _ => 1.0, // tied bottom block
        };
        let students = (0..12)
            .map(|i| {
                let points = score_of(i);
                StudentRecord::new(
                    format!("s{i:02}").parse().unwrap(),
                    vec![ItemResponse::correct(
                        "q0".parse().unwrap(),
                        Answer::TrueFalse(true),
                        points,
                    )],
                )
            })
            .collect();
        let record = ExamRecord::new(ExamId::new("e").unwrap(), students);
        let groups = ScoreGroups::split(&record, GroupFraction::PAPER).unwrap();
        assert_eq!(groups.group_size(), 3);
        // The six-way tie at 10.0 resolves by id: s00–s02 make the cut.
        let ids = |v: &[StudentId]| -> Vec<String> {
            v.iter().map(std::string::ToString::to_string).collect()
        };
        assert_eq!(ids(groups.high()), ["s00", "s01", "s02"]);
        assert_eq!(ids(groups.low()), ["s09", "s10", "s11"]);
    }
}
