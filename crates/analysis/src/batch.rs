//! Batch analysis: many exam sittings through the §4 pipeline at once.
//!
//! A term's worth of assessment produces dozens of sittings — the same
//! mid-term across class sections, weekly quizzes, pre/post pairs for
//! the §3.4-III sensitivity index. [`BatchAnalyzer`] runs
//! [`ExamAnalysis::analyze`] over a whole batch with a work-stealing
//! thread pool, deduplicates repeated work through a bounded
//! least-recently-used cache keyed by a fingerprint of the analysis
//! input, and aggregates the per-exam results into a [`BatchReport`] with
//! cross-exam reliability and signal summaries.
//!
//! Output is deterministic: analyses come back in job order and each is
//! byte-identical (under `serde_json`) to what a sequential
//! [`ExamAnalysis::analyze`] call produces, whatever the thread count.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use serde::{Deserialize, Serialize};

use mine_core::ExamRecord;
use mine_itembank::Problem;

use crate::config::AnalysisConfig;
use crate::error::AnalysisError;
use crate::exam_analysis::ExamAnalysis;
use crate::isi::{instructional_sensitivity, InstructionalSensitivity};
use crate::signal::Signal;

/// One unit of batch work: a sitting and the problems it drew from.
///
/// Jobs borrow their inputs so a batch of many sittings of the same
/// exam shares one problem slice.
#[derive(Debug, Clone, Copy)]
pub struct BatchJob<'a> {
    /// The graded sitting.
    pub record: &'a ExamRecord,
    /// Problem definitions covering every problem in the record.
    pub problems: &'a [Problem],
}

/// Everything a batch run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Per-exam analyses, in job order.
    pub analyses: Vec<ExamAnalysis>,
    /// Cross-exam aggregates.
    pub summary: BatchSummary,
}

impl BatchReport {
    /// Assembles a report from analyses computed elsewhere (e.g. the
    /// streaming engine), running the same summary aggregation
    /// [`BatchAnalyzer::analyze_batch`] performs.
    #[must_use]
    pub fn from_analyses(analyses: Vec<ExamAnalysis>) -> Self {
        let summary = summarize(&analyses);
        Self { analyses, summary }
    }
}

/// Cross-exam aggregates over a [`BatchReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSummary {
    /// Number of sittings analyzed.
    pub exams: usize,
    /// Total students across sittings.
    pub students: usize,
    /// Total analyzed questions across sittings.
    pub questions: usize,
    /// Questions whose Table 3 light is green.
    pub green: usize,
    /// Questions whose Table 3 light is yellow.
    pub yellow: usize,
    /// Questions whose Table 3 light is red.
    pub red: usize,
    /// Mean Cronbach's alpha over sittings where it is defined.
    pub mean_alpha: Option<f64>,
    /// Smallest defined alpha.
    pub min_alpha: Option<f64>,
    /// Largest defined alpha.
    pub max_alpha: Option<f64>,
}

/// A pre/post instruction pair analyzed together (§3.4-III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrePostReport {
    /// Analysis of the sitting before instruction.
    pub pre: ExamAnalysis,
    /// Analysis of the sitting after instruction.
    pub post: ExamAnalysis,
    /// The Instructional Sensitivity Index between the two.
    pub sensitivity: InstructionalSensitivity,
}

/// Cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh analysis.
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
}

/// Runs many sittings through the §4 pipeline concurrently, caching
/// results by input fingerprint.
///
/// # Examples
///
/// ```
/// use mine_analysis::{AnalysisConfig, BatchAnalyzer};
/// use mine_itembank::{Exam, Problem};
/// use mine_simulator::{CohortSpec, Simulation};
///
/// let problems = vec![Problem::true_false("q1", "x", true)?];
/// let exam = Exam::builder("quiz")?.entry("q1".parse()?).build()?;
/// let records: Vec<_> = (0..4)
///     .map(|seed| {
///         Simulation::new(exam.clone(), problems.clone())
///             .cohort(CohortSpec::new(44).seed(seed))
///             .run()
///     })
///     .collect::<Result<_, _>>()?;
/// let analyzer = BatchAnalyzer::new(AnalysisConfig::default()).with_threads(2);
/// let report = analyzer.analyze_records(&records, &problems)?;
/// assert_eq!(report.summary.exams, 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct BatchAnalyzer {
    config: AnalysisConfig,
    /// Worker threads for the batch loop; `0` = auto-detect.
    threads: usize,
    cache: Cache,
}

impl BatchAnalyzer {
    /// Default cache capacity (analyses, not bytes).
    pub const DEFAULT_CACHE_CAPACITY: usize = 64;

    /// A batch analyzer with auto thread count and the default cache.
    #[must_use]
    pub fn new(config: AnalysisConfig) -> Self {
        Self {
            config,
            threads: 0,
            cache: Cache::new(Self::DEFAULT_CACHE_CAPACITY),
        }
    }

    /// Sets the worker thread count; `0` means auto-detect.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Bounds the cache to `capacity` analyses; `0` disables caching.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = Cache::new(capacity);
        self
    }

    /// The analysis configuration every job runs under.
    #[must_use]
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Analyzes one sitting, consulting the cache first.
    ///
    /// # Errors
    ///
    /// Everything [`ExamAnalysis::analyze`] can return.
    pub fn analyze_one(
        &self,
        record: &ExamRecord,
        problems: &[Problem],
    ) -> Result<ExamAnalysis, AnalysisError> {
        if self.cache.capacity == 0 {
            // No cache — skip the fingerprinting entirely.
            return ExamAnalysis::analyze(record, problems, &self.config);
        }
        let key = CacheKey::compute(record, problems, &self.config);
        if let Some(hit) = self.cache.get(key) {
            return Ok((*hit).clone());
        }
        let analysis = ExamAnalysis::analyze(record, problems, &self.config)?;
        self.cache.put(key, Arc::new(analysis.clone()));
        Ok(analysis)
    }

    /// Analyzes every job concurrently and aggregates the results.
    ///
    /// Analyses are returned in job order; on failure the error is the
    /// first failing job's, exactly as a sequential loop would report.
    ///
    /// # Errors
    ///
    /// Everything [`ExamAnalysis::analyze`] can return.
    pub fn analyze_batch(&self, jobs: &[BatchJob<'_>]) -> Result<BatchReport, AnalysisError> {
        let threads = if self.threads == 0 {
            rayon::current_num_threads()
        } else {
            self.threads
        };
        // One budget for the whole batch. The outer per-exam map and the
        // per-question maps inside `analyze` feed the same work-stealing
        // pool, so a single-exam batch still spreads its questions over
        // every worker — no nested pools, no `install(1)` pinning.
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let analyses: Vec<ExamAnalysis> = pool
            .install(|| {
                jobs.par_iter()
                    .map(|job| self.analyze_one(job.record, job.problems))
                    .collect::<Vec<Result<ExamAnalysis, AnalysisError>>>()
            })
            .into_iter()
            .collect::<Result<_, _>>()?;
        let summary = summarize(&analyses);
        Ok(BatchReport { analyses, summary })
    }

    /// Analyzes many sittings of the same exam (the common cohort
    /// case: one problem set, many class sections).
    ///
    /// # Errors
    ///
    /// Everything [`ExamAnalysis::analyze`] can return.
    pub fn analyze_records(
        &self,
        records: &[ExamRecord],
        problems: &[Problem],
    ) -> Result<BatchReport, AnalysisError> {
        let jobs: Vec<BatchJob<'_>> = records
            .iter()
            .map(|record| BatchJob { record, problems })
            .collect();
        self.analyze_batch(&jobs)
    }

    /// Analyzes a pre/post instruction pair and the §3.4-III
    /// Instructional Sensitivity Index between the two sittings.
    ///
    /// # Errors
    ///
    /// Everything [`ExamAnalysis::analyze`] and
    /// [`instructional_sensitivity`] can return.
    pub fn analyze_pre_post(
        &self,
        pre: &ExamRecord,
        post: &ExamRecord,
        problems: &[Problem],
    ) -> Result<PrePostReport, AnalysisError> {
        let sensitivity = instructional_sensitivity(pre, post)?;
        let report = self.analyze_records(std::slice::from_ref(pre), problems)?;
        let pre_analysis = report
            .analyses
            .into_iter()
            .next()
            .expect("one job yields one analysis");
        let report = self.analyze_records(std::slice::from_ref(post), problems)?;
        let post_analysis = report
            .analyses
            .into_iter()
            .next()
            .expect("one job yields one analysis");
        Ok(PrePostReport {
            pre: pre_analysis,
            post: post_analysis,
            sensitivity,
        })
    }

    /// Current cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Builds the [`BatchSummary`] over finished analyses.
fn summarize(analyses: &[ExamAnalysis]) -> BatchSummary {
    let mut summary = BatchSummary {
        exams: analyses.len(),
        students: 0,
        questions: 0,
        green: 0,
        yellow: 0,
        red: 0,
        mean_alpha: None,
        min_alpha: None,
        max_alpha: None,
    };
    let mut alphas = Vec::new();
    for analysis in analyses {
        summary.students += analysis.statistics.class_size;
        summary.questions += analysis.questions.len();
        for question in &analysis.questions {
            match question.signal {
                Signal::Green => summary.green += 1,
                Signal::Yellow => summary.yellow += 1,
                Signal::Red => summary.red += 1,
            }
        }
        if let Some(alpha) = analysis.reliability.alpha {
            alphas.push(alpha);
        }
    }
    if !alphas.is_empty() {
        summary.mean_alpha = Some(alphas.iter().sum::<f64>() / alphas.len() as f64);
        summary.min_alpha = alphas.iter().copied().reduce(f64::min);
        summary.max_alpha = alphas.iter().copied().reduce(f64::max);
    }
    summary
}

/// The cache key: a 256-bit fingerprint of everything
/// [`ExamAnalysis::analyze`] reads. The record — by far the largest
/// input — is fingerprinted by walking its fields directly (two
/// independent 64-bit FNV-1a streams), which costs a fraction of the
/// analysis it memoizes; the smaller problem set and config are
/// fingerprinted through their canonical JSON. A false hit needs a
/// 128-bit record collision inside one bounded cache — negligible
/// against the simulation/measurement noise any analysis sits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey([u64; 4]);

impl CacheKey {
    fn compute(record: &ExamRecord, problems: &[Problem], config: &AnalysisConfig) -> Self {
        let (a, b) = fingerprint_record(record);
        let problems = fnv1a(
            serde_json::to_string(problems)
                .expect("problems serialize")
                .as_bytes(),
        );
        let config = fnv1a(
            serde_json::to_string(config)
                .expect("analysis configs serialize")
                .as_bytes(),
        );
        Self([a, b, problems, config])
    }
}

/// FNV-1a over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Two independent FNV-1a streams fed field by field.
struct Fingerprint {
    a: u64,
    b: u64,
}

impl Fingerprint {
    fn new() -> Self {
        // Distinct offset bases decorrelate the two streams.
        Self {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }

    fn byte(&mut self, byte: u8) {
        self.a = (self.a ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        self.b = (self.b ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.byte(byte);
        }
    }

    fn u64(&mut self, value: u64) {
        self.bytes(&value.to_le_bytes());
    }

    fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }

    /// Length-prefixed so `["ab","c"]` and `["a","bc"]` differ.
    fn str(&mut self, value: &str) {
        self.u64(value.len() as u64);
        self.bytes(value.as_bytes());
    }

    fn duration(&mut self, value: std::time::Duration) {
        self.u64(value.as_secs());
        self.u64(u64::from(value.subsec_nanos()));
    }

    fn answer(&mut self, answer: &mine_core::Answer) {
        use mine_core::Answer;
        match answer {
            Answer::Choice(key) => {
                self.byte(0);
                self.u64(key.index() as u64);
            }
            Answer::MultiChoice(keys) => {
                self.byte(1);
                self.u64(keys.len() as u64);
                for key in keys {
                    self.u64(key.index() as u64);
                }
            }
            Answer::TrueFalse(value) => {
                self.byte(2);
                self.byte(u8::from(*value));
            }
            Answer::Text(text) => {
                self.byte(3);
                self.str(text);
            }
            Answer::Completion(blanks) => {
                self.byte(4);
                self.u64(blanks.len() as u64);
                for blank in blanks {
                    self.str(blank);
                }
            }
            Answer::Match(matches) => {
                self.byte(5);
                self.u64(matches.len() as u64);
                for &index in matches {
                    self.u64(index as u64);
                }
            }
            Answer::Skipped => self.byte(6),
        }
    }
}

/// Walks every field of the record the analysis can observe.
fn fingerprint_record(record: &ExamRecord) -> (u64, u64) {
    let mut fp = Fingerprint::new();
    fp.str(record.exam.as_str());
    fp.u64(record.students.len() as u64);
    for student in &record.students {
        fp.str(student.student.as_str());
        fp.duration(student.total_time);
        fp.u64(student.responses.len() as u64);
        for response in &student.responses {
            fp.str(response.problem.as_str());
            fp.answer(&response.answer);
            fp.byte(u8::from(response.is_correct));
            fp.f64(response.points_awarded);
            fp.f64(response.points_possible);
            fp.duration(response.time_spent);
            match response.answered_at {
                Some(at) => {
                    fp.byte(1);
                    fp.duration(at);
                }
                None => fp.byte(0),
            }
        }
    }
    (fp.a, fp.b)
}

/// Bounded LRU map from cache key to finished analysis.
#[derive(Debug)]
struct Cache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CacheKey, Arc<ExamAnalysis>>,
    /// Keys from least to most recently used.
    recency: VecDeque<CacheKey>,
}

impl Cache {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn get(&self, key: CacheKey) -> Option<Arc<ExamAnalysis>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(value) = inner.map.get(&key).map(Arc::clone) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if let Some(position) = inner.recency.iter().position(|k| *k == key) {
            let key = inner
                .recency
                .remove(position)
                .expect("position came from this deque");
            inner.recency.push_back(key);
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(value)
    }

    fn put(&self, key: CacheKey, value: Arc<ExamAnalysis>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.map.contains_key(&key) {
            // Another worker computed the same input first; keep theirs.
            return;
        }
        while inner.map.len() >= self.capacity {
            match inner.recency.pop_front() {
                Some(oldest) => {
                    inner.map.remove(&oldest);
                }
                None => break,
            }
        }
        inner.recency.push_back(key);
        inner.map.insert(key, value);
    }

    fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_itembank::Exam;
    use mine_simulator::{CohortSpec, Simulation};

    fn problems(n: usize) -> Vec<Problem> {
        (0..n)
            .map(|i| Problem::true_false(format!("q{i}"), "stem", i % 2 == 0).unwrap())
            .collect()
    }

    fn exam(n: usize) -> Exam {
        let mut builder = Exam::builder("quiz").unwrap();
        for i in 0..n {
            builder = builder.entry(format!("q{i}").parse().unwrap());
        }
        builder.build().unwrap()
    }

    fn records(count: usize, questions: usize, class: usize) -> (Vec<ExamRecord>, Vec<Problem>) {
        let problems = problems(questions);
        let exam = exam(questions);
        let records = (0..count)
            .map(|seed| {
                Simulation::new(exam.clone(), problems.clone())
                    .cohort(CohortSpec::new(class).ability(0.0, 1.2).seed(seed as u64))
                    .run()
                    .unwrap()
            })
            .collect();
        (records, problems)
    }

    #[test]
    fn batch_matches_sequential_analyze() {
        let (records, problems) = records(5, 8, 30);
        let config = AnalysisConfig::default();
        let analyzer = BatchAnalyzer::new(config).with_threads(4);
        let report = analyzer.analyze_records(&records, &problems).unwrap();
        assert_eq!(report.analyses.len(), 5);
        for (record, got) in records.iter().zip(&report.analyses) {
            let want = ExamAnalysis::analyze(record, &problems, &config).unwrap();
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn thread_counts_do_not_change_output() {
        let (records, problems) = records(6, 6, 24);
        let config = AnalysisConfig::default();
        let reports: Vec<BatchReport> = [1usize, 2, 4, 8]
            .iter()
            .map(|&threads| {
                BatchAnalyzer::new(config)
                    .with_threads(threads)
                    .analyze_records(&records, &problems)
                    .unwrap()
            })
            .collect();
        for report in &reports[1..] {
            assert_eq!(report, &reports[0]);
        }
    }

    #[test]
    fn repeated_input_hits_the_cache() {
        let (records, problems) = records(1, 4, 20);
        let analyzer = BatchAnalyzer::new(AnalysisConfig::default());
        analyzer.analyze_one(&records[0], &problems).unwrap();
        analyzer.analyze_one(&records[0], &problems).unwrap();
        let stats = analyzer.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn different_config_is_a_different_key() {
        let (records, problems) = records(1, 4, 100);
        let analyzer = BatchAnalyzer::new(AnalysisConfig::default());
        analyzer.analyze_one(&records[0], &problems).unwrap();
        let kelly = BatchAnalyzer::new(AnalysisConfig::kelly());
        kelly.analyze_one(&records[0], &problems).unwrap();
        // Each analyzer saw a fresh input — no cross-key hit.
        assert_eq!(analyzer.cache_stats().hits, 0);
        assert_eq!(kelly.cache_stats().hits, 0);
    }

    #[test]
    fn fingerprint_is_sensitive_to_a_single_response() {
        let (records, problems) = records(1, 4, 20);
        let config = AnalysisConfig::default();
        let base = CacheKey::compute(&records[0], &problems, &config);
        assert_eq!(base, CacheKey::compute(&records[0], &problems, &config));

        let mut flipped = records[0].clone();
        let response = &mut flipped.students[0].responses[0];
        response.is_correct = !response.is_correct;
        assert_ne!(base, CacheKey::compute(&flipped, &problems, &config));

        let mut timed = records[0].clone();
        timed.students[0].responses[0].time_spent += std::time::Duration::from_nanos(1);
        assert_ne!(base, CacheKey::compute(&timed, &problems, &config));
    }

    #[test]
    fn cache_capacity_is_enforced_lru() {
        let (records, problems) = records(3, 4, 20);
        let analyzer = BatchAnalyzer::new(AnalysisConfig::default()).with_cache_capacity(2);
        for record in &records {
            analyzer.analyze_one(record, &problems).unwrap();
        }
        assert_eq!(analyzer.cache_stats().entries, 2);
        // Oldest (records[0]) was evicted; re-analyzing it misses.
        analyzer.analyze_one(&records[0], &problems).unwrap();
        assert_eq!(analyzer.cache_stats().hits, 0);
        // records[2] is still resident.
        analyzer.analyze_one(&records[2], &problems).unwrap();
        assert_eq!(analyzer.cache_stats().hits, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let (records, problems) = records(1, 4, 20);
        let analyzer = BatchAnalyzer::new(AnalysisConfig::default()).with_cache_capacity(0);
        analyzer.analyze_one(&records[0], &problems).unwrap();
        analyzer.analyze_one(&records[0], &problems).unwrap();
        let stats = analyzer.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn summary_aggregates_all_exams() {
        let (records, problems) = records(3, 6, 24);
        let report = BatchAnalyzer::new(AnalysisConfig::default())
            .analyze_records(&records, &problems)
            .unwrap();
        let summary = &report.summary;
        assert_eq!(summary.exams, 3);
        assert_eq!(summary.students, 3 * 24);
        assert_eq!(summary.questions, 3 * 6);
        assert_eq!(summary.green + summary.yellow + summary.red, 3 * 6);
        if let (Some(min), Some(mean), Some(max)) =
            (summary.min_alpha, summary.mean_alpha, summary.max_alpha)
        {
            assert!(min <= mean && mean <= max);
        }
    }

    #[test]
    fn pre_post_reports_sensitivity() {
        let problems = problems(5);
        let exam = exam(5);
        let pre = Simulation::new(exam.clone(), problems.clone())
            .cohort(CohortSpec::new(30).ability(-0.8, 0.8).seed(11))
            .run()
            .unwrap();
        let post = Simulation::new(exam, problems.clone())
            .cohort(CohortSpec::new(30).ability(0.8, 0.8).seed(11))
            .run()
            .unwrap();
        let report = BatchAnalyzer::new(AnalysisConfig::default())
            .analyze_pre_post(&pre, &post, &problems)
            .unwrap();
        assert_eq!(report.sensitivity.per_question.len(), 5);
        let expected = instructional_sensitivity(&pre, &post).unwrap();
        assert_eq!(report.sensitivity, expected);
        assert_eq!(
            report.pre,
            ExamAnalysis::analyze(&pre, &problems, &AnalysisConfig::default()).unwrap()
        );
    }

    #[test]
    fn error_reporting_matches_sequential_order() {
        let (mut records, problems) = records(3, 4, 20);
        // Break the second record: drop a response from one student.
        records[1].students[0].responses.pop();
        let analyzer = BatchAnalyzer::new(AnalysisConfig::default()).with_threads(4);
        let sequential: Vec<Result<ExamAnalysis, AnalysisError>> = records
            .iter()
            .map(|r| ExamAnalysis::analyze(r, &problems, &AnalysisConfig::default()))
            .collect();
        let first_error = sequential
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        let got = analyzer.analyze_records(&records, &problems).unwrap_err();
        assert_eq!(got, first_error);
    }
}
