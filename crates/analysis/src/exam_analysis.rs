//! The assembled analysis: everything §4 produces for one sitting.

use std::cell::RefCell;
use std::time::Duration;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use mine_core::{ExamRecord, ProblemId};
use mine_itembank::{Problem, ProblemBody};
use mine_metadata::ExamMeta;
use mine_metadata::QuestionStyle;
use mine_metadata::{DifficultyIndex, DiscriminationIndex};

use crate::config::AnalysisConfig;
use crate::distraction::{analyze_distractors, DistractorReport};
use crate::error::AnalysisError;
use crate::figures::Figures;
use crate::groups::ScoreGroups;
use crate::indices::QuestionIndices;
use crate::option_matrix::OptionMatrix;
use crate::record_index::RecordIndex;
use crate::reliability::{cronbach_alpha_indexed, Reliability};
use crate::rules::{evaluate_rules, RuleFindings};
use crate::signal::Signal;
use crate::status::StatusFlags;
use crate::two_way::TwoWayTable;

thread_local! {
    /// Reusable per-option tally buffers (high group, low group). The
    /// counts themselves must be owned by the returned [`OptionMatrix`],
    /// but the working buffers the fused pass accumulates into are
    /// reused across every question a thread analyzes instead of being
    /// allocated per question.
    static TALLY_SCRATCH: RefCell<(Vec<usize>, Vec<usize>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// The full single-question analysis of §4.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuestionAnalysis {
    /// The §4.1.1 numbers (PH, PL, D, P).
    pub indices: QuestionIndices,
    /// Table 1, for choice questions (None for other styles — the
    /// option-level rules need options).
    pub matrix: Option<OptionMatrix>,
    /// Rules 1–4 (empty findings for non-choice styles).
    pub findings: RuleFindings,
    /// Table 2 status columns.
    pub status: StatusFlags,
    /// §3.3-V distractor analysis (empty for non-choice styles).
    pub distractors: Vec<DistractorReport>,
    /// Table 3 light.
    pub signal: Signal,
    /// Teacher-facing advice line.
    pub advice: String,
}

/// Whole-test descriptive statistics (§4.2 context, §3.4 metadata).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExamStatistics {
    /// Students analyzed.
    pub class_size: usize,
    /// Mean total score.
    pub mean_score: f64,
    /// Median total score.
    pub median_score: f64,
    /// Population standard deviation of scores.
    pub std_dev: f64,
    /// Maximum attainable score.
    pub max_score: f64,
    /// Fraction of students at or above the pass mark.
    pub pass_rate: f64,
    /// "Average Time" of §3.4-I: mean total sitting time.
    pub average_time: Duration,
    /// Mean number of attempted questions.
    pub mean_attempted: f64,
}

/// Everything the analysis model produces for one exam sitting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExamAnalysis {
    /// The high/low group split used throughout.
    pub groups: ScoreGroups,
    /// Per-question analyses in exam order.
    pub questions: Vec<QuestionAnalysis>,
    /// Whole-test statistics.
    pub statistics: ExamStatistics,
    /// The §4.2.1 figures.
    pub figures: Figures,
    /// The Table 4 two-way specification table.
    pub two_way: TwoWayTable,
    /// Test-level reliability (Cronbach's alpha).
    pub reliability: Reliability,
    /// Questionnaire prompts excluded from item analysis (no correct
    /// answer to analyze) — summarize them with
    /// [`crate::questionnaire::summarize_questionnaire`].
    pub surveys: Vec<ProblemId>,
}

impl ExamAnalysis {
    /// Runs the complete §4 pipeline.
    ///
    /// `problems` must cover every problem in the record.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::EmptyRecord`] / [`AnalysisError::ClassTooSmall`]
    ///   from the group split,
    /// * [`AnalysisError::UnknownProblem`] when the record references a
    ///   problem not supplied,
    /// * [`AnalysisError::MissingResponse`] for incomplete records.
    pub fn analyze(
        record: &ExamRecord,
        problems: &[Problem],
        config: &AnalysisConfig,
    ) -> Result<Self, AnalysisError> {
        let groups = ScoreGroups::split(record, config.group_fraction)?;
        // Every repeated lookup of the per-question loop — member → row,
        // (row, problem) → response, id → problem definition — is
        // precomputed once here and shared (immutably) by all question
        // tasks.
        let index = RecordIndex::build(record, problems, &groups)?;

        // Number the questions sequentially (questionnaires don't count,
        // §3.2-VI vs §3.3), then analyze each against the shared,
        // immutable group split in parallel. Results land in exam-order
        // slots, so output is identical to the old sequential loop.
        let mut tasks: Vec<(usize, usize)> = Vec::with_capacity(index.len());
        let mut surveys = Vec::new();
        let mut number = 0usize;
        for pos in 0..index.len() {
            if index.problems[pos].style() == QuestionStyle::Questionnaire {
                surveys.push(index.problem_ids[pos].clone());
                continue;
            }
            number += 1;
            tasks.push((number, pos));
        }
        let questions = tasks
            .par_iter()
            .map(|&(number, pos)| {
                Self::analyze_question_indexed(&index, &groups, config, number, pos)
            })
            .collect::<Vec<Result<QuestionAnalysis, AnalysisError>>>()
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;

        let statistics = Self::statistics(record, config);
        let indices_only: Vec<QuestionIndices> =
            questions.iter().map(|q| q.indices.clone()).collect();
        let exam_problems: Vec<Problem> = index.problems.iter().map(|&p| p.clone()).collect();
        let figures = Figures::build(record, &exam_problems, &indices_only, 20);
        let two_way = TwoWayTable::from_problems(&exam_problems);
        let reliability = cronbach_alpha_indexed(record, &index);

        Ok(Self {
            groups,
            questions,
            statistics,
            figures,
            two_way,
            reliability,
            surveys,
        })
    }

    /// The per-question §4.1 pipeline: indices, option matrix, rules,
    /// statuses, distractors, signal, advice. Reads the index and the
    /// group split immutably, so questions can run concurrently.
    ///
    /// One fused pass per group resolves each member's response exactly
    /// once (via the precomputed index — no roster or response-list
    /// scans) and accumulates both the correct count for `PH`/`PL` and,
    /// for choice questions, the per-option tallies of Table 1 into
    /// thread-local scratch. The arithmetic and the error order (first
    /// missing response in high-group order, then low) are exactly those
    /// of [`QuestionIndices::compute`] + [`OptionMatrix::from_record`],
    /// which remain the reference implementations.
    fn analyze_question_indexed(
        index: &RecordIndex<'_>,
        groups: &ScoreGroups,
        config: &AnalysisConfig,
        number: usize,
        pos: usize,
    ) -> Result<QuestionAnalysis, AnalysisError> {
        let problem = index.problems[pos];
        let problem_id = &index.problem_ids[pos];
        let choice = match problem.body() {
            ProblemBody::MultipleChoice {
                options, correct, ..
            } => Some((options.len(), *correct)),
            _ => None,
        };

        let tally = |rows: &[usize], counts: &mut [usize]| -> Result<usize, AnalysisError> {
            let mut correct = 0usize;
            for &row in rows {
                let response =
                    index
                        .response(row, pos)
                        .ok_or_else(|| AnalysisError::MissingResponse {
                            student: index.student_id(row).to_string(),
                            problem: problem_id.to_string(),
                        })?;
                if response.is_correct {
                    correct += 1;
                }
                if !counts.is_empty() {
                    // Skipped/other answers and out-of-range keys are
                    // not counted, exactly like `from_record`.
                    if let Some(key) = response.answer.chosen_option() {
                        if key.index() < counts.len() {
                            counts[key.index()] += 1;
                        }
                    }
                }
            }
            Ok(correct)
        };

        let (high_correct, low_correct, matrix) = TALLY_SCRATCH.with(|scratch| {
            let (high_counts, low_counts) = &mut *scratch.borrow_mut();
            high_counts.clear();
            low_counts.clear();
            let option_count = choice.map_or(0, |(count, _)| count);
            high_counts.resize(option_count, 0);
            low_counts.resize(option_count, 0);
            let high_correct = tally(&index.high_rows, high_counts)?;
            let low_correct = tally(&index.low_rows, low_counts)?;
            let matrix = choice.map(|(_, correct)| OptionMatrix {
                problem: problem_id.clone(),
                correct,
                high: high_counts.clone(),
                low: low_counts.clone(),
            });
            Ok::<_, AnalysisError>((high_correct, low_correct, matrix))
        })?;

        let group_size = groups.group_size() as f64;
        let ph = high_correct as f64 / group_size;
        let pl = low_correct as f64 / group_size;
        let indices = QuestionIndices {
            number,
            problem: problem_id.clone(),
            ph,
            pl,
            discrimination: DiscriminationIndex::new(ph - pl)
                .expect("difference of fractions is in [-1, 1]"),
            difficulty: DifficultyIndex::new((ph + pl) / 2.0)
                .expect("mean of fractions is in [0, 1]"),
        };

        let findings = matrix
            .as_ref()
            .map(|m| evaluate_rules(m, config.flatness))
            .unwrap_or_default();
        let status = StatusFlags::from_rules(&findings);
        let distractors = matrix.as_ref().map(analyze_distractors).unwrap_or_default();
        let signal = config.signal.classify(indices.discrimination);
        let advice = config.signal.advice(indices.discrimination, &findings);
        Ok(QuestionAnalysis {
            indices,
            matrix,
            findings,
            status,
            distractors,
            signal,
            advice,
        })
    }

    fn statistics(record: &ExamRecord, config: &AnalysisConfig) -> ExamStatistics {
        let n = record.students.len();
        let mut scores: Vec<f64> = record.students.iter().map(|s| s.score()).collect();
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean = scores.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            scores[n / 2]
        } else {
            (scores[n / 2 - 1] + scores[n / 2]) / 2.0
        };
        // Moment form rather than the two-pass fold: computable from
        // running sums (Σs, Σs²), which is what lets the streaming
        // engine reproduce this value bit-for-bit without touching the
        // rows. Exact-integer scores make both forms exact; the clamp
        // absorbs the one-ulp negative a constant class can round to.
        let variance =
            (scores.iter().map(|s| s * s).sum::<f64>() / n as f64 - mean * mean).max(0.0);
        let max_score = record
            .students
            .first()
            .map(mine_core::StudentRecord::max_score)
            .unwrap_or(0.0);
        let pass_line = max_score * config.pass_mark;
        let pass_rate = scores.iter().filter(|&&s| s >= pass_line).count() as f64 / n as f64;
        let total_time: Duration = record.students.iter().map(|s| s.total_time).sum();
        let mean_attempted = record
            .students
            .iter()
            .map(|s| s.attempted_count())
            .sum::<usize>() as f64
            / n as f64;
        ExamStatistics {
            class_size: n,
            mean_score: mean,
            median_score: median,
            std_dev: variance.sqrt(),
            max_score,
            pass_rate,
            average_time: total_time / n as u32,
            mean_attempted,
        }
    }

    /// Builds the §3.4 exam metadata update: the measured average time
    /// (and leaves test time / ISI untouched for the caller to merge).
    #[must_use]
    pub fn exam_meta_update(&self) -> ExamMeta {
        ExamMeta {
            average_time: Some(self.statistics.average_time),
            test_time: None,
            instructional_sensitivity: None,
        }
    }

    /// Questions whose signal is not green — the teacher's worklist.
    pub fn problematic_questions(&self) -> impl Iterator<Item = &QuestionAnalysis> {
        self.questions.iter().filter(|q| q.signal != Signal::Green)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::OptionKey;
    use mine_itembank::{ChoiceOption, Exam};
    use mine_simulator::{CohortSpec, DistractorWeights, ItemParams, Simulation};

    fn problems() -> Vec<Problem> {
        let mut out: Vec<Problem> = (0..5)
            .map(|i| {
                Problem::multiple_choice(
                    format!("q{i}"),
                    format!("Question {i}"),
                    OptionKey::first(5).map(|k| ChoiceOption::new(k, format!("{k}"))),
                    OptionKey::A,
                )
                .unwrap()
                .with_subject(if i < 3 { "tcp" } else { "routing" })
                .with_cognition_level(if i < 2 {
                    mine_core::CognitionLevel::Knowledge
                } else {
                    mine_core::CognitionLevel::Comprehension
                })
            })
            .collect();
        out.push(Problem::true_false("tf", "True?", true).unwrap());
        out
    }

    fn exam() -> Exam {
        let mut builder = Exam::builder("analyzed").unwrap();
        for i in 0..5 {
            builder = builder.entry(format!("q{i}").parse().unwrap());
        }
        builder.entry("tf".parse().unwrap()).build().unwrap()
    }

    fn simulated() -> ExamRecord {
        Simulation::new(exam(), problems())
            .cohort(CohortSpec::new(44).seed(3))
            // q4 discriminates badly: nearly flat ability response.
            .item_params("q4".parse().unwrap(), ItemParams::new(0.05, 0.0, 0.2))
            // q1 has a dead distractor (E never chosen) for rule 1.
            .distractors(
                "q1".parse().unwrap(),
                DistractorWeights::new(vec![0.0, 1.0, 1.0, 1.0, 0.0]),
            )
            .run()
            .unwrap()
    }

    #[test]
    fn full_pipeline_runs() {
        let record = simulated();
        let analysis =
            ExamAnalysis::analyze(&record, &problems(), &AnalysisConfig::default()).unwrap();
        assert_eq!(analysis.questions.len(), 6);
        assert_eq!(analysis.statistics.class_size, 44);
        assert_eq!(analysis.groups.group_size(), 11);
        // Choice questions carry matrices, the true/false one does not.
        assert!(analysis.questions[0].matrix.is_some());
        assert!(analysis.questions[5].matrix.is_none());
        // Figures and two-way table exist.
        assert!(!analysis.figures.time_answered.is_empty());
        assert_eq!(analysis.two_way.sum_concept("tcp"), 3);
    }

    #[test]
    fn dead_distractor_triggers_rule_1() {
        let record = simulated();
        let analysis =
            ExamAnalysis::analyze(&record, &problems(), &AnalysisConfig::default()).unwrap();
        let q1 = &analysis.questions[1];
        assert!(
            q1.findings.low_allure.contains(&OptionKey::E),
            "E was weighted 0: {:?}",
            q1.findings
        );
        assert!(q1.status.option_allure_low);
        assert!(q1.advice.contains("allure"));
    }

    #[test]
    fn flat_item_signals_red() {
        // A non-discriminating item (a ≈ 0) should go red. To keep the
        // test sharp we weight the noise item 0 in the exam so it cannot
        // inflate its own D through the total-score ranking (part-whole
        // correlation), and use a large cohort to shrink sampling noise.
        let mut problems = problems();
        problems[4].set_points(0.0);
        let mut builder = Exam::builder("flat").unwrap();
        for i in 0..5 {
            builder = builder.entry(format!("q{i}").parse().unwrap());
        }
        let exam = builder.entry("tf".parse().unwrap()).build().unwrap();
        let record = Simulation::new(exam, problems.clone())
            .cohort(CohortSpec::new(400).seed(3))
            .item_params("q4".parse().unwrap(), ItemParams::new(0.05, 0.0, 0.2))
            .run()
            .unwrap();
        let analysis =
            ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default()).unwrap();
        let q4 = &analysis.questions[4];
        assert_eq!(
            q4.signal,
            Signal::Red,
            "a = 0.05 item cannot discriminate: D = {:.2}",
            q4.indices.discrimination.value()
        );
        assert!(analysis.problematic_questions().count() >= 1);
    }

    #[test]
    fn statistics_are_sane() {
        let record = simulated();
        let analysis =
            ExamAnalysis::analyze(&record, &problems(), &AnalysisConfig::default()).unwrap();
        let stats = &analysis.statistics;
        assert!(stats.mean_score >= 0.0 && stats.mean_score <= stats.max_score);
        assert!(stats.median_score >= 0.0 && stats.median_score <= stats.max_score);
        assert!(stats.std_dev >= 0.0);
        assert!((0.0..=1.0).contains(&stats.pass_rate));
        assert!(stats.average_time > Duration::ZERO);
        assert!(stats.mean_attempted > 0.0 && stats.mean_attempted <= 6.0);
        assert_eq!(stats.max_score, 6.0);
    }

    #[test]
    fn exam_meta_update_carries_average_time() {
        let record = simulated();
        let analysis =
            ExamAnalysis::analyze(&record, &problems(), &AnalysisConfig::default()).unwrap();
        let meta = analysis.exam_meta_update();
        assert_eq!(meta.average_time, Some(analysis.statistics.average_time));
        assert!(meta.test_time.is_none());
    }

    #[test]
    fn unknown_problem_is_reported() {
        let record = simulated();
        let err = ExamAnalysis::analyze(&record, &problems()[..3], &AnalysisConfig::default())
            .unwrap_err();
        assert!(matches!(err, AnalysisError::UnknownProblem { .. }));
    }

    #[test]
    fn questionnaires_are_excluded_from_item_analysis() {
        use mine_itembank::ChoiceOption;
        let mut problems = problems();
        problems.push(
            Problem::questionnaire(
                "survey",
                "rate the course",
                OptionKey::first(5).map(|k| ChoiceOption::new(k, format!("{k}"))),
            )
            .unwrap(),
        );
        let mut builder = Exam::builder("with-survey").unwrap();
        for i in 0..5 {
            builder = builder.entry(format!("q{i}").parse().unwrap());
        }
        let exam = builder
            .entry("tf".parse().unwrap())
            .entry("survey".parse().unwrap())
            .build()
            .unwrap();
        let record = Simulation::new(exam, problems.clone())
            .cohort(CohortSpec::new(44).seed(3))
            .run()
            .unwrap();
        let analysis =
            ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default()).unwrap();
        assert_eq!(analysis.questions.len(), 6, "survey skipped");
        assert_eq!(analysis.surveys, vec!["survey".parse().unwrap()]);
        // Numbers stay consecutive despite the skip.
        let numbers: Vec<usize> = analysis
            .questions
            .iter()
            .map(|q| q.indices.number)
            .collect();
        assert_eq!(numbers, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn kelly_fraction_changes_group_size_not_question_count() {
        let record = simulated();
        let analysis =
            ExamAnalysis::analyze(&record, &problems(), &AnalysisConfig::kelly()).unwrap();
        assert_eq!(analysis.groups.group_size(), 12, "27 % of 44 ≈ 12");
        assert_eq!(analysis.questions.len(), 6);
    }
}
