//! `mine-pool` — the persistent work-stealing thread pool behind every
//! parallel operation in the workspace.
//!
//! # Architecture
//!
//! One process-wide registry holds a fixed array of worker slots. Each
//! slot owns a fixed-capacity Chase–Lev deque ([`deque`]): the worker
//! pushes and pops its own deque LIFO, every other worker steals from
//! it FIFO. Threads are spawned lazily — the first operation that asks
//! for `n`-way parallelism spawns up to `n − 1` long-lived workers, and
//! later operations reuse them. External (non-worker) threads submit
//! through a shared injector queue.
//!
//! A parallel map is represented by one heap-allocated *operation*
//! descriptor holding an atomic chunk cursor over the input. The thread
//! that starts the operation (the *creator*) claims and executes chunks
//! until the cursor is exhausted; the participation tokens it publishes
//! to the deques/injector merely invite other workers to claim chunks
//! from the same cursor. Because the creator can always finish the
//! operation alone, no operation ever waits on a thread that might not
//! exist — there is no deadlock, whatever the nesting.
//!
//! Results are written into pre-sized slots by input index, so output
//! order — and therefore every byte the analysis pipeline serializes —
//! is independent of which thread ran which chunk.
//!
//! # Thread budgets
//!
//! [`install`] scopes a *budget* (a thread count plus `n − 1` helper
//! permits) without spawning or blocking anything. Operations created
//! under the budget share its permits: a worker joins an operation only
//! if it can take a permit, so concurrency never exceeds the installed
//! count even across nested parallel maps. Nested `install`s simply
//! shadow the outer budget, which is why the analysis pipeline needs no
//! "inner single-thread pool" workaround: an operation started inside a
//! pooled task inherits the budget and feeds the same deques.

#![warn(missing_docs)]

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

mod deque;

use deque::{Deque, Steal};

/// Hard ceiling on an explicitly requested thread count; guards the CLI
/// against `--threads 0`-style underflow typos turning into
/// `usize::MAX` worker requests.
pub const MAX_THREADS: usize = 1024;

/// Worker slots pre-allocated in the global registry. Requests beyond
/// this still run correctly — extra parallelism degrades to the
/// available workers plus the creator.
const MAX_WORKERS: usize = 64;

/// Per-worker deque capacity; overflow diverts to the injector.
const DEQUE_CAPACITY: usize = 256;

/// How long a worker sleeps before re-scanning on its own, as a
/// backstop against a lost wake-up.
const PARK_TIMEOUT: Duration = Duration::from_millis(50);

/// Fruitless scan rounds (with `yield_now`) before a worker parks.
const SPIN_ROUNDS: u32 = 3;

// ---------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------

/// A rejected thread-count request, carrying where the value came from
/// (`--threads` flag or `MINE_THREADS` env) so the message points at
/// the right knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadCountError {
    /// The value did not parse as an unsigned integer.
    NotANumber {
        /// The flag or variable the value came from.
        source: &'static str,
        /// The raw text supplied.
        value: String,
    },
    /// An explicit zero — the caller almost certainly wanted
    /// auto-detection, which is spelled by omitting the flag.
    Zero {
        /// The flag or variable the value came from.
        source: &'static str,
    },
    /// Beyond [`MAX_THREADS`].
    TooLarge {
        /// The flag or variable the value came from.
        source: &'static str,
        /// The parsed value.
        value: usize,
    },
}

impl fmt::Display for ThreadCountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotANumber { source, value } => {
                write!(f, "{source}: {value:?} is not a thread count")
            }
            Self::Zero { source } => write!(
                f,
                "{source}: thread count must be at least 1 (omit it for auto-detection)"
            ),
            Self::TooLarge { source, value } => {
                write!(
                    f,
                    "{source}: {value} exceeds the maximum of {MAX_THREADS} threads"
                )
            }
        }
    }
}

impl Error for ThreadCountError {}

/// Validates an explicit thread count from `source`: an integer in
/// `1..=MAX_THREADS`.
///
/// # Errors
///
/// [`ThreadCountError`] when the text is not a number, is zero, or
/// exceeds [`MAX_THREADS`].
pub fn validate_thread_count(raw: &str, source: &'static str) -> Result<usize, ThreadCountError> {
    let value: usize = raw
        .trim()
        .parse()
        .map_err(|_| ThreadCountError::NotANumber {
            source,
            value: raw.to_string(),
        })?;
    if value == 0 {
        return Err(ThreadCountError::Zero { source });
    }
    if value > MAX_THREADS {
        return Err(ThreadCountError::TooLarge { source, value });
    }
    Ok(value)
}

/// Resolves a thread-count request: an explicit `--threads` value wins,
/// otherwise the `MINE_THREADS` environment variable, otherwise `0`
/// (auto-detect). Both explicit sources are validated — nonsense is a
/// typed error, never a silent clamp.
///
/// # Errors
///
/// [`ThreadCountError`] from whichever source supplied the value.
pub fn resolve_thread_count(flag: Option<&str>) -> Result<usize, ThreadCountError> {
    if let Some(raw) = flag {
        return validate_thread_count(raw, "--threads");
    }
    match std::env::var("MINE_THREADS") {
        Ok(raw) if !raw.trim().is_empty() => validate_thread_count(&raw, "MINE_THREADS"),
        _ => Ok(0),
    }
}

/// The auto-detected thread count: a *valid* `MINE_THREADS` override,
/// else [`std::thread::available_parallelism`]. An invalid
/// `MINE_THREADS` is ignored here (library code cannot error); the CLI
/// surfaces it as a [`ThreadCountError`] via [`resolve_thread_count`].
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("MINE_THREADS") {
        if let Ok(value) = validate_thread_count(&raw, "MINE_THREADS") {
            return value;
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

// ---------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------

/// A scoped thread budget: the installed count plus the helper permits
/// still available. The creator of an operation participates for free;
/// each helper must take a permit, so at most `threads` threads ever
/// execute chunks of operations sharing one budget.
struct Budget {
    threads: usize,
    helper_permits: AtomicUsize,
}

impl Budget {
    fn new(threads: usize) -> Arc<Self> {
        Arc::new(Self {
            threads,
            helper_permits: AtomicUsize::new(threads.saturating_sub(1)),
        })
    }

    fn try_acquire(&self) -> bool {
        self.helper_permits
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| p.checked_sub(1))
            .is_ok()
    }

    fn release(&self) {
        self.helper_permits.fetch_add(1, Ordering::AcqRel);
    }
}

thread_local! {
    /// The budget parallel operations started from this thread run
    /// under; `None` means "auto" ([`default_threads`]).
    static CURRENT_BUDGET: RefCell<Option<Arc<Budget>>> = const { RefCell::new(None) };
    /// This thread's worker slot in the global registry, if it is one
    /// of the pool's workers.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

fn current_budget() -> Option<Arc<Budget>> {
    CURRENT_BUDGET.with(|b| b.borrow().clone())
}

fn with_budget<R>(budget: Arc<Budget>, f: impl FnOnce() -> R) -> R {
    // Restore on unwind too: a panicking chunk must not leak its
    // operation's budget into the worker's next task.
    struct Restore(Option<Arc<Budget>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            CURRENT_BUDGET.with(|b| *b.borrow_mut() = previous);
        }
    }
    let previous = CURRENT_BUDGET.with(|b| b.replace(Some(budget)));
    let _restore = Restore(previous);
    f()
}

/// The number of threads a parallel operation started from this thread
/// will use: the innermost [`install`] budget, else [`default_threads`].
#[must_use]
pub fn current_num_threads() -> usize {
    current_budget().map_or_else(default_threads, |b| b.threads)
}

/// Runs `f` under a thread budget of `threads` (`0` = auto). Purely a
/// scope: nothing is spawned or blocked here — parallel operations
/// inside `f` share the budget's helper permits, and nested `install`s
/// shadow it.
pub fn install<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    with_budget(Budget::new(threads), f)
}

// ---------------------------------------------------------------------
// The operation descriptor
// ---------------------------------------------------------------------

/// Type-erased view of one parallel map: the chunk cursor everyone
/// claims from, the completion latch, and a raw pointer to the
/// creator's stack-held [`MapData`].
///
/// # Safety invariants
///
/// * `data` is only dereferenced between claiming a chunk index
///   `< chunks` and incrementing `done` for it; the creator blocks
///   until `done == chunks`, so `data` outlives every dereference.
/// * Stale participation tokens (delivered after the operation
///   finished) observe `next >= chunks` and return without touching
///   `data`.
struct OpShared {
    budget: Arc<Budget>,
    data: *const (),
    run_chunk: unsafe fn(*const (), usize, usize),
    len: usize,
    chunk_size: usize,
    chunks: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    panicked: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    latch: Mutex<bool>,
    finished: Condvar,
}

// Safety: `data`/`run_chunk` describe a `MapData` whose fields are
// `Sync` (`&[T]`, `&F`) or written at disjoint indices (`slots`, one
// writer per index via the `next` cursor). Interior synchronization is
// atomics + mutexes.
unsafe impl Send for OpShared {}
unsafe impl Sync for OpShared {}

struct MapData<'a, T, R, F> {
    items: &'a [T],
    f: *const F,
    slots: *mut Option<R>,
}

/// Monomorphic chunk executor the descriptor's function pointer refers
/// to. The lifetime is early-bound so the instantiated function pointer
/// is lifetime-erased while the body still type-checks against the
/// caller's `F: Fn(&'a T) -> R` bound.
///
/// # Safety
///
/// `data` must point at a live `MapData<'a, T, R, F>` and `start..end`
/// must be a chunk handed out exactly once by the `next` cursor — each
/// slot index is written by exactly one thread.
unsafe fn run_map_chunk<'a, T, R, F>(data: *const (), start: usize, end: usize)
where
    T: 'a,
    F: Fn(&'a T) -> R,
{
    let data = &*data.cast::<MapData<'a, T, R, F>>();
    let f = &*data.f;
    for index in start..end {
        let value = f(&data.items[index]);
        data.slots.add(index).write(Some(value));
    }
}

impl OpShared {
    /// Claims and executes chunks until the cursor is exhausted.
    /// Helpers take a budget permit first (and simply decline when none
    /// is free); the creator participates unconditionally.
    fn participate(self: &Arc<Self>, is_helper: bool) {
        if is_helper && !self.budget.try_acquire() {
            return;
        }
        with_budget(Arc::clone(&self.budget), || loop {
            let chunk = self.next.fetch_add(1, Ordering::AcqRel);
            if chunk >= self.chunks {
                break;
            }
            let start = chunk * self.chunk_size;
            let end = (start + self.chunk_size).min(self.len);
            if !self.panicked.load(Ordering::Acquire) {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    // Safety: the cursor handed this chunk to us alone,
                    // and the creator keeps `data` alive until `done`
                    // reaches `chunks` (which this chunk's increment
                    // below contributes to only after this call).
                    unsafe { (self.run_chunk)(self.data, start, end) }
                }));
                if let Err(payload) = outcome {
                    // First panic wins; the flag makes the remaining
                    // chunks drain without executing so the latch still
                    // closes and the creator can rethrow.
                    let mut slot = self.panic.lock().expect("panic slot");
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    drop(slot);
                    self.panicked.store(true, Ordering::Release);
                }
                if let Some(index) = WORKER_INDEX.with(Cell::get) {
                    registry().slots[index]
                        .executed
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.chunks {
                let mut finished = self.latch.lock().expect("latch");
                *finished = true;
                drop(finished);
                self.finished.notify_all();
            }
        });
        if is_helper {
            self.budget.release();
        }
    }

    /// Blocks until every chunk is accounted for.
    fn wait(&self) {
        let mut finished = self.latch.lock().expect("latch");
        while !*finished {
            finished = self.finished.wait(finished).expect("latch");
        }
    }
}

// ---------------------------------------------------------------------
// The registry and its workers
// ---------------------------------------------------------------------

struct WorkerSlot {
    deque: Deque,
    executed: AtomicU64,
}

struct Registry {
    slots: Box<[WorkerSlot]>,
    /// Workers actually spawned so far; grows monotonically.
    spawned: AtomicUsize,
    injector: Mutex<VecDeque<usize>>,
    /// Lock-free emptiness hint for the injector.
    injector_len: AtomicUsize,
    sleep_lock: Mutex<()>,
    wake: Condvar,
    steals: AtomicU64,
    ops: AtomicU64,
    spawn_lock: Mutex<()>,
}

fn registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let slots = (0..MAX_WORKERS)
            .map(|_| WorkerSlot {
                deque: Deque::new(DEQUE_CAPACITY),
                executed: AtomicU64::new(0),
            })
            .collect();
        Arc::new(Registry {
            slots,
            spawned: AtomicUsize::new(0),
            injector: Mutex::new(VecDeque::new()),
            injector_len: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
            steals: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            spawn_lock: Mutex::new(()),
        })
    })
}

impl Registry {
    /// Spawns workers until at least `target` exist (capped at
    /// [`MAX_WORKERS`]). Workers are never torn down; the analysis
    /// server and CLI both want a warm pool for their whole lifetime.
    fn ensure_workers(self: &Arc<Self>, target: usize) {
        let target = target.min(self.slots.len());
        if self.spawned.load(Ordering::Acquire) >= target {
            return;
        }
        let _guard = self.spawn_lock.lock().expect("spawn lock");
        let current = self.spawned.load(Ordering::Acquire);
        for index in current..target {
            let registry = Arc::clone(self);
            let spawned = std::thread::Builder::new()
                .name(format!("mine-pool-{index}"))
                .spawn(move || worker_main(&registry, index));
            if spawned.is_err() {
                // Out of threads: the pool still works, just narrower —
                // creators always complete their own operations.
                break;
            }
            self.spawned.store(index + 1, Ordering::Release);
        }
    }

    /// Publishes one participation token. Worker threads push their own
    /// deque (LIFO); external threads go through the injector.
    fn submit(&self, op: &Arc<OpShared>) {
        let token = Arc::into_raw(Arc::clone(op)) as usize;
        let local = WORKER_INDEX.with(Cell::get);
        let token = match local {
            Some(index) => self.slots[index].deque.push(token).err(),
            None => Some(token),
        };
        if let Some(token) = token {
            let mut injector = self.injector.lock().expect("injector");
            injector.push_back(token);
            self.injector_len.store(injector.len(), Ordering::Release);
        }
        // Pair with the sleeper's re-check under `sleep_lock`: once we
        // hold the lock, any parked worker either saw the token above
        // or is waiting on the condvar and gets the notification.
        drop(self.sleep_lock.lock().expect("sleep lock"));
        self.wake.notify_all();
    }

    /// A worker's hunt for one token: own deque first (LIFO), then the
    /// injector, then stealing FIFO from siblings.
    fn find_token(&self, index: usize) -> Option<usize> {
        if let Some(token) = self.slots[index].deque.pop() {
            return Some(token);
        }
        if self.injector_len.load(Ordering::Acquire) > 0 {
            let mut injector = self.injector.lock().expect("injector");
            if let Some(token) = injector.pop_front() {
                self.injector_len.store(injector.len(), Ordering::Release);
                return Some(token);
            }
        }
        let spawned = self.spawned.load(Ordering::Acquire);
        for offset in 1..spawned {
            let victim = (index + offset) % spawned;
            loop {
                match self.slots[victim].deque.steal() {
                    Steal::Success(token) => {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(token);
                    }
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    fn has_visible_work(&self) -> bool {
        if self.injector_len.load(Ordering::Acquire) > 0 {
            return true;
        }
        let spawned = self.spawned.load(Ordering::Acquire);
        self.slots[..spawned]
            .iter()
            .any(|slot| slot.deque.has_work())
    }
}

fn worker_main(registry: &Arc<Registry>, index: usize) {
    WORKER_INDEX.with(|cell| cell.set(Some(index)));
    let mut idle_rounds = 0u32;
    loop {
        match registry.find_token(index) {
            Some(token) => {
                idle_rounds = 0;
                // Safety: the token is an `Arc<OpShared>` published by
                // `submit` via `into_raw`; each token is consumed
                // exactly once (deque/injector semantics).
                let op = unsafe { Arc::from_raw(token as *const OpShared) };
                op.participate(true);
            }
            None if idle_rounds < SPIN_ROUNDS => {
                idle_rounds += 1;
                std::thread::yield_now();
            }
            None => {
                idle_rounds = 0;
                let guard = registry.sleep_lock.lock().expect("sleep lock");
                if registry.has_visible_work() {
                    continue;
                }
                // Timeout is a lost-wakeup backstop only; `submit`
                // holds `sleep_lock` before notifying, closing the
                // check-then-sleep race.
                let _ = registry
                    .wake
                    .wait_timeout(guard, PARK_TIMEOUT)
                    .expect("sleep lock");
            }
        }
    }
}

// ---------------------------------------------------------------------
// The parallel map
// ---------------------------------------------------------------------

/// Maps `f` over `items` on the pool under the current thread budget,
/// returning results in input order.
///
/// The input is split into contiguous chunks claimed dynamically from a
/// shared cursor, so skewed per-item costs balance; results land in
/// pre-sized slots by index, so the output is byte-identical to the
/// sequential map regardless of scheduling.
///
/// # Panics
///
/// Rethrows the first panic raised inside `f` (by input order of
/// claiming, not deterministically) after every in-flight chunk has
/// retired; the pool's workers survive.
pub fn map_slice<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let budget = current_budget().unwrap_or_else(|| Budget::new(default_threads()));
    let threads = budget.threads.max(1);
    if threads == 1 || items.len() <= 1 {
        // Keep the budget visible to nested operations even on the
        // inline path.
        return with_budget(budget, || items.iter().map(&f).collect());
    }

    let registry = registry();
    registry.ops.fetch_add(1, Ordering::Relaxed);

    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);

    // Several chunks per thread so dynamic claiming can rebalance skew;
    // chunk granularity only affects scheduling, never output.
    let chunk_size = items.len().div_ceil(threads * 4).max(1);
    let chunks = items.len().div_ceil(chunk_size);

    let data = MapData::<'a, T, R, F> {
        items,
        f: &raw const f,
        slots: slots.as_mut_ptr(),
    };
    let op = Arc::new(OpShared {
        budget: Arc::clone(&budget),
        data: std::ptr::from_ref(&data).cast(),
        run_chunk: run_map_chunk::<T, R, F>,
        len: items.len(),
        chunk_size,
        chunks,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        panic: Mutex::new(None),
        latch: Mutex::new(false),
        finished: Condvar::new(),
    });

    // Invite helpers: at most budget−1 of them, never more than the
    // chunks the creator is not going to need, spawning workers on
    // first demand.
    let helpers = (threads - 1).min(chunks.saturating_sub(1));
    registry.ensure_workers(helpers);
    for _ in 0..helpers {
        registry.submit(&op);
    }

    op.participate(false);
    op.wait();

    if let Some(payload) = op.panic.lock().expect("panic slot").take() {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every chunk was executed"))
        .collect()
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

/// A point-in-time view of the pool, for `/metrics` and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned so far (excludes creators).
    pub workers: usize,
    /// Tokens taken from a sibling's deque since process start.
    pub steals: u64,
    /// Parallel operations dispatched to the pool.
    pub ops: u64,
    /// Chunks executed per worker slot, indexed by worker.
    pub executed_per_worker: Vec<u64>,
}

impl PoolStats {
    /// Total chunks executed on worker threads (creators excluded).
    #[must_use]
    pub fn executed_total(&self) -> u64 {
        self.executed_per_worker.iter().sum()
    }

    /// How many distinct workers have executed at least one chunk.
    #[must_use]
    pub fn active_workers(&self) -> usize {
        self.executed_per_worker.iter().filter(|&&n| n > 0).count()
    }
}

/// Snapshots the pool counters.
#[must_use]
pub fn stats() -> PoolStats {
    let registry = registry();
    let workers = registry.spawned.load(Ordering::Acquire);
    PoolStats {
        workers,
        steals: registry.steals.load(Ordering::Relaxed),
        ops: registry.ops.load(Ordering::Relaxed),
        executed_per_worker: registry.slots[..workers]
            .iter()
            .map(|slot| slot.executed.load(Ordering::Relaxed))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_when_budget_is_one() {
        let items: Vec<u32> = (0..100).collect();
        let out: Vec<u32> = install(1, || map_slice(&items, |&x| x * 3));
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = install(4, || map_slice(&items, |&x| x * x));
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn budget_is_scoped_and_restored() {
        let outside = current_num_threads();
        let inside = install(3, current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn nested_installs_shadow() {
        let (outer, inner, after) = install(4, || {
            let outer = current_num_threads();
            let inner = install(2, current_num_threads);
            (outer, inner, current_num_threads())
        });
        assert_eq!(outer, 4);
        assert_eq!(inner, 2);
        assert_eq!(after, 4);
    }

    #[test]
    fn zero_means_auto() {
        let auto = install(0, current_num_threads);
        assert!(auto >= 1);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(install(8, || map_slice(&empty, |&x| x)).is_empty());
        let one = [41u8];
        assert_eq!(install(8, || map_slice(&one, |&x| x + 1)), vec![42]);
    }

    #[test]
    fn validate_thread_count_accepts_range() {
        assert_eq!(validate_thread_count("1", "--threads"), Ok(1));
        assert_eq!(validate_thread_count(" 8 ", "--threads"), Ok(8));
        assert_eq!(validate_thread_count("1024", "--threads"), Ok(1024));
    }

    #[test]
    fn validate_thread_count_rejects_nonsense() {
        assert_eq!(
            validate_thread_count("0", "--threads"),
            Err(ThreadCountError::Zero {
                source: "--threads"
            })
        );
        assert!(matches!(
            validate_thread_count("many", "MINE_THREADS"),
            Err(ThreadCountError::NotANumber {
                source: "MINE_THREADS",
                ..
            })
        ));
        assert!(matches!(
            validate_thread_count("-3", "--threads"),
            Err(ThreadCountError::NotANumber { .. })
        ));
        assert_eq!(
            validate_thread_count("4096", "--threads"),
            Err(ThreadCountError::TooLarge {
                source: "--threads",
                value: 4096
            })
        );
    }

    #[test]
    fn thread_count_errors_render_the_source() {
        let msg = ThreadCountError::Zero {
            source: "--threads",
        }
        .to_string();
        assert!(msg.contains("--threads"), "{msg}");
        let msg = ThreadCountError::TooLarge {
            source: "MINE_THREADS",
            value: 9999,
        }
        .to_string();
        assert!(
            msg.contains("MINE_THREADS") && msg.contains("9999"),
            "{msg}"
        );
    }
}
