//! A fixed-capacity Chase–Lev work-stealing deque.
//!
//! One thread (the *owner*) pushes and pops at the bottom — LIFO, so
//! the owner works on the task it most recently made runnable, which
//! keeps its cache warm. Any other thread *steals* from the top — FIFO,
//! so thieves take the oldest (and, under recursive splitting, usually
//! largest) unit of work. This is the memory-ordering-corrected variant
//! of the algorithm from Lê, Pop, Cohen & Zappa Nardelli, *Correct and
//! Efficient Work-Stealing for Weak Memory Models* (PPoPP '13).
//!
//! Elements are opaque `usize` tokens (the pool stores `Arc` raw
//! pointers in them). The buffer never grows: the ring has a fixed
//! power-of-two capacity and [`Deque::push`] reports overflow so the
//! caller can divert to a shared injector queue instead. A fixed ring
//! sidesteps the buffer-reclamation problem that makes growable
//! Chase–Lev deques subtle, at the cost of a bounded local backlog —
//! fine here because the pool enqueues at most one participation token
//! per worker per operation.
//!
//! Slot reuse is safe without epochs: `push` refuses to write unless
//! `bottom − top < capacity`, so a slot is never overwritten while a
//! thief holding its index could still win the CAS on `top`.

use std::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Steal {
    /// A token was stolen.
    Success(usize),
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
}

/// The single-owner, multi-thief deque. All methods are `&self`; the
/// contract that only the owner calls [`push`](Deque::push) and
/// [`pop`](Deque::pop) is enforced by the pool (worker `i` is the sole
/// owner of deque `i`).
pub(crate) struct Deque {
    /// Next slot thieves take from (grows monotonically).
    top: AtomicIsize,
    /// One past the last slot the owner filled.
    bottom: AtomicIsize,
    /// Power-of-two ring of tokens.
    buffer: Box<[AtomicUsize]>,
    mask: isize,
}

impl Deque {
    /// Creates a deque with capacity rounded up to a power of two.
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(2);
        let buffer = (0..capacity).map(|_| AtomicUsize::new(0)).collect();
        Self {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer,
            mask: capacity as isize - 1,
        }
    }

    /// Owner-only: pushes a token at the bottom. Returns the token back
    /// as `Err` when the ring is full so the caller can overflow it to
    /// the injector.
    pub(crate) fn push(&self, token: usize) -> Result<(), usize> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t > self.mask {
            return Err(token);
        }
        self.buffer[(b & self.mask) as usize].store(token, Ordering::Relaxed);
        // Release: a thief that observes the new `bottom` also observes
        // the slot write above.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only: pops the most recently pushed token (LIFO).
    pub(crate) fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence orders the speculative `bottom` decrement
        // against the thieves' reads: either a racing thief sees the
        // decremented bottom (and gives up) or we see its incremented
        // top (and give the element up).
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let token = self.buffer[(b & self.mask) as usize].load(Ordering::Relaxed);
            if t == b {
                // Last element: race the thieves for it via `top`.
                if self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    // A thief got it first.
                    self.bottom.store(b + 1, Ordering::Relaxed);
                    return None;
                }
                self.bottom.store(b + 1, Ordering::Relaxed);
            }
            Some(token)
        } else {
            // Already empty; undo the decrement.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief: steals the oldest token (FIFO).
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        // Order the `top` read before the `bottom` read, mirroring the
        // fence in `pop`.
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let token = self.buffer[(t & self.mask) as usize].load(Ordering::Relaxed);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                return Steal::Retry;
            }
            Steal::Success(token)
        } else {
            Steal::Empty
        }
    }

    /// Whether the deque looks non-empty (racy; used only as a wake-up
    /// hint, never for correctness).
    pub(crate) fn has_work(&self) -> bool {
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        b > t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn lifo_pop_fifo_steal() {
        let d = Deque::new(8);
        d.push(1).unwrap();
        d.push(2).unwrap();
        d.push(3).unwrap();
        assert_eq!(d.pop(), Some(3), "owner pops newest");
        assert_eq!(d.steal(), Steal::Success(1), "thief steals oldest");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn push_reports_overflow() {
        let d = Deque::new(4);
        for i in 0..4 {
            d.push(i).unwrap();
        }
        assert_eq!(d.push(99), Err(99));
        assert_eq!(d.steal(), Steal::Success(0));
        d.push(99).unwrap();
    }

    #[test]
    fn ring_reuse_after_wraparound() {
        let d = Deque::new(4);
        for round in 0..10usize {
            for i in 0..4 {
                d.push(round * 4 + i).unwrap();
            }
            for i in (0..4).rev() {
                assert_eq!(d.pop(), Some(round * 4 + i));
            }
        }
    }

    /// Hammer one owner against several thieves and check every token
    /// is taken exactly once.
    #[test]
    fn concurrent_steals_take_each_token_once() {
        const TOKENS: usize = 20_000;
        const THIEVES: usize = 3;
        let deque = Deque::new(64);
        let done = AtomicBool::new(false);
        let mut taken: Vec<Vec<usize>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..THIEVES {
                handles.push(scope.spawn(|| {
                    let mut mine = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        match deque.steal() {
                            Steal::Success(token) => mine.push(token),
                            Steal::Retry => {}
                            Steal::Empty => std::thread::yield_now(),
                        }
                    }
                    // Drain what is left after the owner finished.
                    loop {
                        match deque.steal() {
                            Steal::Success(token) => mine.push(token),
                            Steal::Retry => {}
                            Steal::Empty => break,
                        }
                    }
                    mine
                }));
            }
            let owner = scope.spawn(|| {
                let mut mine = Vec::new();
                // Tokens start at 1 so 0 never collides with slot init.
                let mut next = 1usize;
                while next <= TOKENS {
                    if deque.push(next).is_ok() {
                        next += 1;
                    } else if let Some(token) = deque.pop() {
                        mine.push(token);
                    }
                    if next.is_multiple_of(7) {
                        if let Some(token) = deque.pop() {
                            mine.push(token);
                        }
                    }
                }
                done.store(true, Ordering::Release);
                mine
            });
            taken.push(owner.join().unwrap());
            for handle in handles {
                taken.push(handle.join().unwrap());
            }
        });
        // Anything still in the deque was simply never claimed.
        let mut rest = Vec::new();
        loop {
            match deque.steal() {
                Steal::Success(token) => rest.push(token),
                Steal::Retry => {}
                Steal::Empty => break,
            }
        }
        taken.push(rest);
        let all: Vec<usize> = taken.into_iter().flatten().collect();
        let unique: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(all.len(), TOKENS, "no token lost");
        assert_eq!(unique.len(), TOKENS, "no token duplicated");
        assert_eq!(unique.iter().max(), Some(&TOKENS));
    }
}
