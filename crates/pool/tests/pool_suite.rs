//! Integration suite for the work-stealing pool: steal correctness,
//! panic poisoning, and `install` nesting, exercised through the public
//! surface. Runs in its own process, so the global pool starts cold.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use mine_pool::{current_num_threads, install, map_slice, stats};

/// Burn a little CPU so chunks are long enough to be stolen.
fn spin_work(x: u64) -> u64 {
    let mut acc = x;
    for i in 0..2_000u64 {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
    }
    acc
}

#[test]
fn stolen_work_produces_sequential_output() {
    let items: Vec<u64> = (0..4_096).collect();
    let expected: Vec<u64> = items.iter().map(|&x| spin_work(x)).collect();
    // Skewed costs: early items are much heavier, so the creator's
    // chunks outlive the helpers' and stealing has to rebalance.
    for _ in 0..5 {
        let out = install(8, || {
            map_slice(&items, |&x| {
                if x < 64 {
                    for _ in 0..20 {
                        std::hint::black_box(spin_work(x));
                    }
                }
                spin_work(x)
            })
        });
        assert_eq!(out, expected);
    }
    let stats = stats();
    assert!(stats.workers >= 1, "parallel maps spawned workers");
    assert!(
        stats.executed_total() > 0,
        "workers executed chunks: {stats:?}"
    );
}

#[test]
fn every_index_is_executed_exactly_once() {
    let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
    let items: Vec<usize> = (0..hits.len()).collect();
    let out = install(8, || {
        map_slice(&items, |&i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            i * 2
        })
    });
    assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    for (i, hit) in hits.iter().enumerate() {
        assert_eq!(hit.load(Ordering::Relaxed), 1, "index {i} ran once");
    }
}

#[test]
fn panicking_task_poisons_the_op_not_the_pool() {
    let items: Vec<u32> = (0..1_000).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        install(4, || {
            map_slice(&items, |&x| {
                assert!(x != 500, "boom at {x}");
                x
            })
        })
    }));
    let payload = result.expect_err("the map must rethrow the task panic");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(message.contains("boom at 500"), "payload: {message:?}");

    // The workers caught the panic and went back to the queues: the
    // pool keeps serving operations afterward.
    for round in 0..3 {
        let out = install(4, || map_slice(&items, |&x| u64::from(x) + round));
        assert_eq!(
            out,
            items
                .iter()
                .map(|&x| u64::from(x) + round)
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn nested_installs_and_maps_compose() {
    let outer: Vec<u64> = (0..16).collect();
    let inner: Vec<u64> = (0..64).collect();
    let out = install(4, || {
        map_slice(&outer, |&o| {
            // The nested map inherits the enclosing budget and feeds
            // the same deques — the old code needed an install(1) here
            // to avoid spawning a pool per item.
            assert_eq!(current_num_threads(), 4);
            map_slice(&inner, |&i| spin_work(o * 1_000 + i))
                .into_iter()
                .fold(0u64, u64::wrapping_add)
        })
    });
    let expected: Vec<u64> = outer
        .iter()
        .map(|&o| {
            inner
                .iter()
                .map(|&i| spin_work(o * 1_000 + i))
                .fold(0u64, u64::wrapping_add)
        })
        .collect();
    assert_eq!(out, expected);

    // An explicit nested install shadows the outer budget.
    let shadowed = install(4, || install(2, current_num_threads));
    assert_eq!(shadowed, 2);
}

#[test]
fn install_one_stays_inline_and_spawns_nothing_extra() {
    let before = stats().ops;
    let items: Vec<u32> = (0..100).collect();
    let out = install(1, || map_slice(&items, |&x| x + 1));
    assert_eq!(out, (1..=100).collect::<Vec<_>>());
    assert_eq!(stats().ops, before, "budget 1 never dispatches to the pool");
}
