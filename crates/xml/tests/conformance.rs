//! Conformance corpus: tricky-but-legal documents must parse to the
//! expected shapes, and a catalogue of malformed documents must be
//! rejected without panicking.

use mine_xml::{parse_document, Node, XmlError};

#[test]
fn legal_corpus_parses() {
    // (input, root name, direct element children, concatenated text)
    let corpus: &[(&str, &str, usize, &str)] = &[
        ("<a/>", "a", 0, ""),
        ("<a></a>", "a", 0, ""),
        ("<a>text</a>", "a", 0, "text"),
        ("<a ><b />\t</a >", "a", 1, ""),
        ("<a\nx='1'\ty=\"2\"\r/>", "a", 0, ""),
        ("<a><![CDATA[]]></a>", "a", 0, ""),
        ("<a><![CDATA[ ]] ]>]]></a>", "a", 0, " ]] ]>"),
        ("<a>&amp;&lt;&gt;&quot;&apos;</a>", "a", 0, "&<>\"'"),
        ("<a>&#x10FFFF;</a>", "a", 0, "\u{10FFFF}"),
        ("<a>&#9;</a>", "a", 0, "\t"),
        ("<_underscore/>", "_underscore", 0, ""),
        ("<ns:tag xmlns:ns='urn:x'/>", "ns:tag", 0, ""),
        ("<a.b-c1/>", "a.b-c1", 0, ""),
        (
            "<?xml version='1.0' encoding='UTF-8' standalone='yes'?><a/>",
            "a",
            0,
            "",
        ),
        ("<!DOCTYPE a><a/>", "a", 0, ""),
        ("<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a/>", "a", 0, ""),
        ("<a><!-- <not><a><tag> --></a>", "a", 0, ""),
        ("<a><b/><!-- x --><b/></a>", "a", 2, ""),
        ("<a><?php echo ?><b/></a>", "a", 1, ""),
        // Deep nesting (100 levels).
        (
            &format!("{}{}", "<d>".repeat(100), "</d>".repeat(100)),
            "d",
            1,
            "",
        ),
        // Long text content.
        (
            &format!("<t>{}</t>", "x".repeat(100_000)),
            "t",
            0,
            &"x".repeat(100_000),
        ),
    ];
    for (input, root, children, text) in corpus {
        let doc = parse_document(input)
            .unwrap_or_else(|err| panic!("corpus entry failed: {input:.60} → {err}"));
        assert_eq!(&doc.root.name, root, "{input:.60}");
        assert_eq!(doc.root.child_elements().count(), *children, "{input:.60}");
        assert_eq!(&doc.root.text(), text, "{input:.60}");
    }
}

#[test]
fn malformed_corpus_is_rejected() {
    let corpus: &[&str] = &[
        "",
        "   ",
        "just text",
        "<",
        "<>",
        "<a",
        "<a b></a>",
        "<a b=></a>",
        "<a b=1/>",
        "<a 'b'='c'/>",
        "<a><b></b>",
        "<a></b>",
        "<a></a></a>",
        "<a/><b/>",
        "<a/>trailing",
        "<a>&unknown;</a>",
        "<a>&#xFFFFFF;</a>",
        "<a>&#xD800;</a>",
        "<a>&amp</a>",
        "<a><!-- unterminated</a>",
        "<a><![CDATA[unterminated</a>",
        "<a><?pi unterminated</a>",
        "<1digit/>",
        "<a a='1' a='2'/>",
        "<!DOCTYPE unterminated",
        "<?xml version='1.0'",
    ];
    for input in corpus {
        assert!(parse_document(input).is_err(), "should reject: {input:?}");
    }
}

#[test]
fn error_variants_are_informative() {
    match parse_document("<a><b></c></b></a>").unwrap_err() {
        XmlError::MismatchedTag {
            expected, found, ..
        } => {
            assert_eq!(expected, "b");
            assert_eq!(found, "c");
        }
        other => panic!("expected mismatched tag, got {other}"),
    }
    match parse_document("<a>&nbsp;</a>").unwrap_err() {
        XmlError::UnknownEntity { entity } => assert_eq!(entity, "nbsp"),
        other => panic!("expected unknown entity, got {other}"),
    }
}

#[test]
fn comments_and_structure_survive_round_trips() {
    let input = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!-- header -->\n<r a=\"1\">\n  <x>one</x>\n  <y/>\n</r>\n<!-- footer -->";
    let doc = parse_document(input).unwrap();
    assert_eq!(doc.prolog.len(), 1);
    assert_eq!(doc.epilog.len(), 1);
    assert!(matches!(&doc.prolog[0], Node::Comment(c) if c == " header "));
    let text = doc.to_xml_string();
    let reparsed = parse_document(&text).unwrap();
    assert_eq!(reparsed, doc);
}
