//! Property tests: arbitrary structured documents survive
//! write → parse → write cycles in both pretty and compact modes.

use mine_xml::{parse_document, Document, Element, Node, WriteOptions};
use proptest::prelude::*;

/// Generates XML names: letter/underscore head, limited tail alphabet.
fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9._-]{0,12}".prop_filter("avoid reserved xml prefix", |s| {
        !s.to_ascii_lowercase().starts_with("xml")
    })
}

/// Text content including characters that require escaping.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('中'),
            Just('&'),
            Just('<'),
            Just('>'),
            Just('"'),
            Just('\''),
            Just(' '),
            Just('9'),
        ],
        1..20,
    )
    .prop_map(|chars| chars.into_iter().collect::<String>())
    // Leaf whitespace-only text is preserved, but text that is pure
    // whitespace makes equality with pruned indentation ambiguous when the
    // element also has children; keep at least one non-space char.
    .prop_filter("not whitespace-only", |s: &String| {
        !s.chars().all(char::is_whitespace)
    })
}

fn arb_attrs() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec((arb_name(), arb_text()), 0..4).prop_map(|mut attrs| {
        attrs.sort();
        attrs.dedup_by(|a, b| a.0 == b.0);
        attrs
    })
}

/// Recursively builds elements. Children are either all-text (leaf) or
/// all-element (structured), matching the writer's lossless subset.
fn arb_element() -> impl Strategy<Value = Element> {
    let leaf = (arb_name(), arb_attrs(), proptest::option::of(arb_text())).prop_map(
        |(name, attributes, text)| {
            let mut el = Element::new(name);
            el.attributes = attributes;
            if let Some(text) = text {
                el.children.push(Node::Text(text));
            }
            el
        },
    );
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            arb_name(),
            arb_attrs(),
            proptest::collection::vec(inner, 1..4),
        )
            .prop_map(|(name, attributes, children)| {
                let mut el = Element::new(name);
                el.attributes = attributes;
                el.children = children.into_iter().map(Node::Element).collect();
                el
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_round_trip(root in arb_element()) {
        let doc = Document::new(root);
        let text = doc.to_xml_with(&WriteOptions::pretty());
        let parsed = parse_document(&text).unwrap();
        prop_assert_eq!(parsed, doc);
    }

    #[test]
    fn compact_round_trip(root in arb_element()) {
        let doc = Document::new(root);
        let text = doc.to_xml_with(&WriteOptions::compact());
        let parsed = parse_document(&text).unwrap();
        prop_assert_eq!(parsed, doc);
    }

    #[test]
    fn double_write_is_stable(root in arb_element()) {
        let doc = Document::new(root);
        let once = doc.to_xml_string();
        let reparsed = parse_document(&once).unwrap();
        let twice = reparsed.to_xml_string();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn escape_unescape_identity(text in "[ -~\u{a0}-\u{2ff}]{0,64}") {
        let escaped = mine_xml::escape::escape_attr(&text);
        prop_assert_eq!(mine_xml::escape::unescape(&escaped).unwrap(), text);
    }

    #[test]
    fn parser_never_panics_on_garbage(text in "[<>&a-z \"'=/!?\\[\\]-]{0,64}") {
        let _ = parse_document(&text);
    }
}
