//! Error type for XML parsing and writing.

use std::error::Error as StdError;
use std::fmt;

/// An error produced while parsing or serializing XML.
///
/// Parse errors carry the 1-based line and column where the problem was
/// detected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlError {
    /// The parser hit the end of input while expecting more.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        context: &'static str,
    },
    /// A structural error at a known position.
    Syntax {
        /// Human-readable description of the violation.
        message: String,
        /// 1-based line.
        line: usize,
        /// 1-based column.
        column: usize,
    },
    /// A closing tag did not match the open element.
    MismatchedTag {
        /// The element that was open.
        expected: String,
        /// The closing name actually found.
        found: String,
        /// 1-based line of the close tag.
        line: usize,
        /// 1-based column of the close tag.
        column: usize,
    },
    /// An entity reference could not be resolved.
    UnknownEntity {
        /// The entity text between `&` and `;`.
        entity: String,
    },
    /// A name (element or attribute) was empty or contained an invalid
    /// character.
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// The document contained content after the root element or no root
    /// element at all.
    BadDocumentStructure {
        /// Description of the structural problem.
        message: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            XmlError::Syntax {
                message,
                line,
                column,
            } => write!(f, "syntax error at {line}:{column}: {message}"),
            XmlError::MismatchedTag {
                expected,
                found,
                line,
                column,
            } => write!(
                f,
                "mismatched close tag at {line}:{column}: expected </{expected}>, found </{found}>"
            ),
            XmlError::UnknownEntity { entity } => write!(f, "unknown entity &{entity};"),
            XmlError::InvalidName { name } => write!(f, "invalid xml name {name:?}"),
            XmlError::BadDocumentStructure { message } => {
                write!(f, "bad document structure: {message}")
            }
        }
    }
}

impl StdError for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let err = XmlError::Syntax {
            message: "expected '>'".into(),
            line: 3,
            column: 17,
        };
        assert_eq!(err.to_string(), "syntax error at 3:17: expected '>'");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: StdError + Send + Sync + 'static>() {}
        assert_traits::<XmlError>();
    }
}
