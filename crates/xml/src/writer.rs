//! Serializing a [`Document`] back to XML text.

use crate::document::{Document, Element, Node};
use crate::escape::{escape_attr, escape_text};

/// Controls how a document is serialized.
///
/// # Examples
///
/// ```
/// use mine_xml::{Element, WriteOptions, write_document, Document};
///
/// let doc = Document::new(Element::new("a").with_child(Element::new("b")));
/// let compact = write_document(&doc, &WriteOptions::compact());
/// assert!(compact.contains("<a><b/></a>"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOptions {
    /// Indent nested elements; `None` writes everything on one line.
    pub indent: Option<usize>,
    /// Collapse empty elements to `<name/>` instead of `<name></name>`.
    pub self_close_empty: bool,
}

impl WriteOptions {
    /// Pretty output: two-space indent, self-closing empties.
    #[must_use]
    pub fn pretty() -> Self {
        Self {
            indent: Some(2),
            self_close_empty: true,
        }
    }

    /// Compact single-line output.
    #[must_use]
    pub fn compact() -> Self {
        Self {
            indent: None,
            self_close_empty: true,
        }
    }
}

impl Default for WriteOptions {
    fn default() -> Self {
        Self::pretty()
    }
}

/// Serializes a document into any [`std::io::Write`] (a `&mut` reference
/// works too, per the standard blanket impl).
///
/// # Errors
///
/// Returns [`std::io::Error`] from the underlying writer.
pub fn write_document_to<W: std::io::Write>(
    doc: &Document,
    options: &WriteOptions,
    mut writer: W,
) -> std::io::Result<()> {
    // The tree writer builds bounded chunks; reuse it and stream the
    // result. Documents the workspace produces are small (packages are
    // per-problem files), so a single buffer is the simplest correct
    // strategy.
    writer.write_all(write_document(doc, options).as_bytes())
}

/// Serializes a document to a string.
#[must_use]
pub fn write_document(doc: &Document, options: &WriteOptions) -> String {
    let mut out = String::new();
    if doc.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        newline(&mut out, options);
    }
    for node in &doc.prolog {
        write_misc_node(&mut out, node, options);
    }
    write_element(&mut out, &doc.root, 0, options);
    for node in &doc.epilog {
        newline(&mut out, options);
        write_misc_node(&mut out, node, options);
    }
    out
}

fn newline(out: &mut String, options: &WriteOptions) {
    if options.indent.is_some() {
        out.push('\n');
    }
}

fn pad(out: &mut String, depth: usize, options: &WriteOptions) {
    if let Some(width) = options.indent {
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_misc_node(out: &mut String, node: &Node, options: &WriteOptions) {
    match node {
        Node::Comment(text) => {
            out.push_str("<!--");
            out.push_str(text);
            out.push_str("-->");
        }
        Node::ProcessingInstruction { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
        // Text outside the root is not legal XML; drop silently (the
        // parser never produces it).
        Node::Text(_) | Node::CData(_) | Node::Element(_) => {}
    }
    newline(out, options);
}

fn write_element(out: &mut String, el: &Element, depth: usize, options: &WriteOptions) {
    pad(out, depth, options);
    out.push('<');
    out.push_str(&el.name);
    for (name, value) in &el.attributes {
        out.push(' ');
        out.push_str(name);
        out.push_str("=\"");
        out.push_str(&escape_attr(value));
        out.push('"');
    }
    if el.children.is_empty() {
        if options.self_close_empty {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str("</");
            out.push_str(&el.name);
            out.push('>');
        }
        return;
    }

    out.push('>');

    // A "simple" element (only text children) is written inline so text
    // round-trips exactly even in pretty mode.
    let simple = el
        .children
        .iter()
        .all(|c| matches!(c, Node::Text(_) | Node::CData(_)));
    if simple {
        for child in &el.children {
            write_inline_text(out, child);
        }
    } else {
        for child in &el.children {
            match child {
                Node::Element(nested) => {
                    newline(out, options);
                    write_element(out, nested, depth + 1, options);
                }
                Node::Comment(text) => {
                    newline(out, options);
                    pad(out, depth + 1, options);
                    out.push_str("<!--");
                    out.push_str(text);
                    out.push_str("-->");
                }
                Node::ProcessingInstruction { target, data } => {
                    newline(out, options);
                    pad(out, depth + 1, options);
                    out.push_str("<?");
                    out.push_str(target);
                    if !data.is_empty() {
                        out.push(' ');
                        out.push_str(data);
                    }
                    out.push_str("?>");
                }
                text_node => write_inline_text(out, text_node),
            }
        }
        newline(out, options);
        pad(out, depth, options);
    }
    out.push_str("</");
    out.push_str(&el.name);
    out.push('>');
}

fn write_inline_text(out: &mut String, node: &Node) {
    match node {
        Node::Text(text) => out.push_str(&escape_text(text)),
        Node::CData(text) => {
            out.push_str("<![CDATA[");
            out.push_str(text);
            out.push_str("]]>");
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_output_indents_nested_elements() {
        let doc = Document::new(
            Element::new("root")
                .with_child(Element::new("leaf").with_text("x"))
                .with_child(Element::new("empty")),
        );
        let text = doc.to_xml_string();
        assert_eq!(
            text,
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<root>\n  <leaf>x</leaf>\n  <empty/>\n</root>"
        );
    }

    #[test]
    fn compact_output_single_line() {
        let doc = Document::new(Element::new("a").with_child(Element::new("b").with_text("t")));
        let text = doc.to_xml_with(&WriteOptions::compact());
        assert_eq!(
            text,
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a><b>t</b></a>"
        );
    }

    #[test]
    fn attributes_are_escaped() {
        let el = Element::new("e").with_attr("msg", "a<b & \"c\"");
        assert_eq!(
            el.to_xml_string(),
            "<e msg=\"a&lt;b &amp; &quot;c&quot;\"/>"
        );
    }

    #[test]
    fn text_is_escaped_cdata_is_not() {
        let el = Element::new("e")
            .with_text("1 < 2")
            .with_child(Node::CData("3 < 4".into()));
        assert_eq!(el.to_xml_string(), "<e>1 &lt; 2<![CDATA[3 < 4]]></e>");
    }

    #[test]
    fn comments_and_pis_in_prolog() {
        let mut doc = Document::new(Element::new("r"));
        doc.prolog.push(Node::Comment(" header ".into()));
        doc.prolog.push(Node::ProcessingInstruction {
            target: "xml-stylesheet".into(),
            data: "href=\"s.xsl\"".into(),
        });
        let text = doc.to_xml_string();
        assert!(text.contains("<!-- header -->"));
        assert!(text.contains("<?xml-stylesheet href=\"s.xsl\"?>"));
        assert!(text.ends_with("<r/>"));
    }

    #[test]
    fn no_self_close_option() {
        let options = WriteOptions {
            indent: None,
            self_close_empty: false,
        };
        let doc = Document {
            declaration: false,
            prolog: vec![],
            root: Element::new("e"),
            epilog: vec![],
        };
        assert_eq!(doc.to_xml_with(&options), "<e></e>");
    }

    #[test]
    fn write_document_to_streams_into_any_writer() {
        let doc = Document::new(Element::new("a").with_child(Element::new("b")));
        let mut buffer = Vec::new();
        write_document_to(&doc, &WriteOptions::compact(), &mut buffer).unwrap();
        assert_eq!(
            String::from_utf8(buffer).unwrap(),
            doc.to_xml_with(&WriteOptions::compact())
        );
    }

    #[test]
    fn mixed_content_keeps_text_inline() {
        let el = Element::new("p")
            .with_text("before ")
            .with_child(Element::new("b").with_text("bold"))
            .with_text(" after");
        let text = el.to_xml_string();
        assert!(text.contains("before "));
        assert!(text.contains("<b>bold</b>"));
        assert!(text.contains(" after"));
    }
}
