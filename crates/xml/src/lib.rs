//! A from-scratch XML toolkit for the MINE assessment system.
//!
//! The SCORM packaging (§5.5 of the paper) and the QTI-style interchange
//! both read and write real XML text. The sanctioned offline dependency
//! set has no XML crate, so this crate provides the minimal, well-tested
//! subset the workspace needs:
//!
//! * [`Element`]/[`Node`] — an owned document tree with builder helpers,
//! * [`write_document`]/[`Element::to_xml_string`] — a configurable writer,
//! * [`parse_document`] — a non-validating recursive-descent parser with
//!   positions in errors,
//! * entity escaping/unescaping for text and attribute values.
//!
//! Scope: elements, attributes, text, CDATA, comments, processing
//! instructions, the XML declaration, numeric and the five predefined
//! entities. Out of scope: DTD validation (DOCTYPE is skipped), namespaces
//! beyond plain prefixed names, and encodings other than UTF-8.
//!
//! # Examples
//!
//! ```
//! use mine_xml::{parse_document, Element};
//!
//! let doc = Element::new("manifest")
//!     .with_attr("identifier", "MANIFEST1")
//!     .with_child(Element::new("organizations"));
//! let text = doc.to_xml_string();
//! let parsed = parse_document(&text)?;
//! assert_eq!(parsed.root.attr("identifier"), Some("MANIFEST1"));
//! # Ok::<(), mine_xml::XmlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod document;
pub mod error;
pub mod escape;
pub mod parser;
pub mod writer;

pub use document::{Descendants, Document, Element, Node};
pub use error::XmlError;
pub use parser::parse_document;
pub use writer::{write_document, write_document_to, WriteOptions};
