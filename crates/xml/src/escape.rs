//! Entity escaping and unescaping.
//!
//! Text content escapes `&`, `<`, `>`; attribute values additionally
//! escape `"` and `'`. Unescaping resolves the five predefined entities
//! plus decimal (`&#65;`) and hexadecimal (`&#x41;`) character references.

use crate::error::XmlError;

/// Escapes a string for use as element text content.
///
/// # Examples
///
/// ```
/// assert_eq!(mine_xml::escape::escape_text("a < b & c"), "a &lt; b &amp; c");
/// ```
#[must_use]
pub fn escape_text(raw: &str) -> String {
    escape(raw, false)
}

/// Escapes a string for use inside a double-quoted attribute value.
///
/// # Examples
///
/// ```
/// assert_eq!(mine_xml::escape::escape_attr("say \"hi\""), "say &quot;hi&quot;");
/// ```
#[must_use]
pub fn escape_attr(raw: &str) -> String {
    escape(raw, true)
}

fn escape(raw: &str, attr: bool) -> String {
    // Fast path: nothing to escape.
    if !raw
        .chars()
        .any(|c| matches!(c, '&' | '<' | '>') || (attr && matches!(c, '"' | '\'')))
    {
        return raw.to_string();
    }
    let mut out = String::with_capacity(raw.len() + 8);
    for c in raw.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\'' if attr => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Resolves one entity body (the text between `&` and `;`).
///
/// # Errors
///
/// Returns [`XmlError::UnknownEntity`] for anything that is not one of the
/// five predefined entities or a valid numeric character reference.
pub fn resolve_entity(entity: &str) -> Result<char, XmlError> {
    match entity {
        "amp" => return Ok('&'),
        "lt" => return Ok('<'),
        "gt" => return Ok('>'),
        "quot" => return Ok('"'),
        "apos" => return Ok('\''),
        _ => {}
    }
    let code = if let Some(hex) = entity
        .strip_prefix("#x")
        .or_else(|| entity.strip_prefix("#X"))
    {
        u32::from_str_radix(hex, 16).ok()
    } else if let Some(dec) = entity.strip_prefix('#') {
        dec.parse::<u32>().ok()
    } else {
        None
    };
    code.and_then(char::from_u32)
        .ok_or_else(|| XmlError::UnknownEntity {
            entity: entity.to_string(),
        })
}

/// Unescapes entity references in a text or attribute slice.
///
/// # Errors
///
/// Returns [`XmlError::UnknownEntity`] on unresolvable or unterminated
/// entity references.
pub fn unescape(raw: &str) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        let after = &rest[pos + 1..];
        let Some(end) = after.find(';') else {
            return Err(XmlError::UnknownEntity {
                entity: after.chars().take(16).collect(),
            });
        };
        out.push(resolve_entity(&after[..end])?);
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_text_minimally() {
        assert_eq!(escape_text("plain"), "plain");
        assert_eq!(
            escape_text("<tag> & \"quote\""),
            "&lt;tag&gt; &amp; \"quote\""
        );
    }

    #[test]
    fn escapes_attr_quotes() {
        assert_eq!(escape_attr("a'b\"c"), "a&apos;b&quot;c");
    }

    #[test]
    fn unescape_round_trips_text() {
        for sample in ["", "plain", "a<b>&c", "\"mixed' &#entities;-ish < text >"] {
            // The raw sample may itself contain '&'-like text; escape first.
            let escaped = escape_attr(sample);
            assert_eq!(unescape(&escaped).unwrap(), sample, "sample {sample:?}");
        }
    }

    #[test]
    fn numeric_references_decimal_and_hex() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
        assert_eq!(unescape("&#x4e2d;&#x6587;").unwrap(), "中文");
    }

    #[test]
    fn unknown_entities_error() {
        assert!(unescape("&nbsp;").is_err());
        assert!(unescape("&unterminated").is_err());
        assert!(unescape("&#xZZ;").is_err());
        assert!(unescape("&#1114112;").is_err()); // above U+10FFFF
        assert!(unescape("&#xD800;").is_err()); // surrogate
    }

    #[test]
    fn resolve_predefined() {
        assert_eq!(resolve_entity("amp").unwrap(), '&');
        assert_eq!(resolve_entity("lt").unwrap(), '<');
        assert_eq!(resolve_entity("gt").unwrap(), '>');
        assert_eq!(resolve_entity("quot").unwrap(), '"');
        assert_eq!(resolve_entity("apos").unwrap(), '\'');
    }
}
