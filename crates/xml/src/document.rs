//! The owned XML document tree.

use std::fmt;

use crate::error::XmlError;
use crate::writer::{write_document, WriteOptions};

/// A whole XML document: an optional declaration plus a single root
/// element (comments/PIs outside the root are preserved in order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Whether the document carries an `<?xml version="1.0" …?>`
    /// declaration (always written as version 1.0, UTF-8).
    pub declaration: bool,
    /// Nodes appearing before the root element (comments, PIs).
    pub prolog: Vec<Node>,
    /// The root element.
    pub root: Element,
    /// Nodes appearing after the root element (comments, PIs).
    pub epilog: Vec<Node>,
}

impl Document {
    /// Wraps a root element into a document with an XML declaration.
    #[must_use]
    pub fn new(root: Element) -> Self {
        Self {
            declaration: true,
            prolog: Vec::new(),
            root,
            epilog: Vec::new(),
        }
    }

    /// Serializes the document with the given options.
    #[must_use]
    pub fn to_xml_with(&self, options: &WriteOptions) -> String {
        write_document(self, options)
    }

    /// Serializes the document with default (pretty) options.
    #[must_use]
    pub fn to_xml_string(&self) -> String {
        self.to_xml_with(&WriteOptions::default())
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml_string())
    }
}

/// A node of the document tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (stored unescaped).
    Text(String),
    /// A CDATA section (stored raw).
    CData(String),
    /// A comment (without the `<!--`/`-->` delimiters).
    Comment(String),
    /// A processing instruction: target and data.
    ProcessingInstruction {
        /// The PI target (e.g. `xml-stylesheet`).
        target: String,
        /// The PI body.
        data: String,
    },
}

impl Node {
    /// The contained element, if this node is one.
    #[must_use]
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(el) => Some(el),
            _ => None,
        }
    }

    /// The textual content of a text or CDATA node.
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) | Node::CData(t) => Some(t),
            _ => None,
        }
    }
}

impl From<Element> for Node {
    fn from(el: Element) -> Self {
        Node::Element(el)
    }
}

impl From<&str> for Node {
    fn from(text: &str) -> Self {
        Node::Text(text.to_string())
    }
}

impl From<String> for Node {
    fn from(text: String) -> Self {
        Node::Text(text)
    }
}

/// An XML element: a name, ordered attributes, and ordered child nodes.
///
/// Attribute order is preserved (SCORM manifests are conventionally
/// written in a fixed attribute order, and stable output makes tests
/// deterministic).
///
/// # Examples
///
/// ```
/// use mine_xml::Element;
///
/// let item = Element::new("item")
///     .with_attr("identifier", "ITEM1")
///     .with_child(Element::new("title").with_text("Quiz 1"));
/// assert_eq!(item.child("title").unwrap().text(), "Quiz 1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Element name (may carry a `prefix:` part).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an empty element.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: adds (or replaces) an attribute and returns `self`.
    #[must_use]
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder: appends a child node and returns `self`.
    #[must_use]
    pub fn with_child(mut self, child: impl Into<Node>) -> Self {
        self.children.push(child.into());
        self
    }

    /// Builder: appends a text child and returns `self`.
    #[must_use]
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Builder: appends `children` and returns `self`.
    #[must_use]
    pub fn with_children<I, N>(mut self, children: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<Node>,
    {
        self.children.extend(children.into_iter().map(Into::into));
        self
    }

    /// Sets an attribute, replacing any existing value for the same name.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// Looks up an attribute value by name.
    #[must_use]
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Appends a child node.
    pub fn push(&mut self, child: impl Into<Node>) {
        self.children.push(child.into());
    }

    /// The first child element with the given name.
    #[must_use]
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|el| el.name == name)
    }

    /// Iterates over child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |el| el.name == name)
    }

    /// Iterates over all child elements (skipping text/comment nodes).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Walks a path of child element names, returning the first match.
    ///
    /// # Examples
    ///
    /// ```
    /// use mine_xml::Element;
    ///
    /// let doc = Element::new("a")
    ///     .with_child(Element::new("b").with_child(Element::new("c").with_text("leaf")));
    /// assert_eq!(doc.find_path(&["b", "c"]).unwrap().text(), "leaf");
    /// assert!(doc.find_path(&["b", "missing"]).is_none());
    /// ```
    #[must_use]
    pub fn find_path(&self, path: &[&str]) -> Option<&Element> {
        let mut current = self;
        for segment in path {
            current = current.child(segment)?;
        }
        Some(current)
    }

    /// Concatenated text of all direct text/CDATA children (unescaped).
    #[must_use]
    pub fn text(&self) -> String {
        let mut out = String::new();
        for child in &self.children {
            if let Some(t) = child.as_text() {
                out.push_str(t);
            }
        }
        out
    }

    /// Text of the first child element with the given name, if present.
    #[must_use]
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.child(name).map(Element::text)
    }

    /// The element's local name (after any `prefix:`).
    #[must_use]
    pub fn local_name(&self) -> &str {
        self.name.rsplit(':').next().unwrap_or(&self.name)
    }

    /// Iterates over every element in the subtree in document order,
    /// starting with `self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mine_xml::Element;
    ///
    /// let doc = Element::new("a")
    ///     .with_child(Element::new("b").with_child(Element::new("c")))
    ///     .with_child(Element::new("d"));
    /// let names: Vec<&str> = doc.descendants().map(|e| e.name.as_str()).collect();
    /// assert_eq!(names, vec!["a", "b", "c", "d"]);
    /// ```
    pub fn descendants(&self) -> Descendants<'_> {
        Descendants { stack: vec![self] }
    }

    /// Total number of elements in this subtree (including `self`).
    #[must_use]
    pub fn subtree_size(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_size)
            .sum::<usize>()
    }

    /// Serializes just this element (no declaration) with default pretty
    /// options.
    #[must_use]
    pub fn to_xml_string(&self) -> String {
        let doc = Document {
            declaration: false,
            prolog: Vec::new(),
            root: self.clone(),
            epilog: Vec::new(),
        };
        write_document(&doc, &WriteOptions::default())
    }

    /// Checks that this element and every descendant has a well-formed
    /// name.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError::InvalidName`] for the first bad element or
    /// attribute name found.
    pub fn validate_names(&self) -> Result<(), XmlError> {
        fn name_ok(name: &str) -> bool {
            let mut chars = name.chars();
            match chars.next() {
                Some(c) if c.is_alphabetic() || c == '_' => {}
                _ => return false,
            }
            chars.all(|c| c.is_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'))
        }
        if !name_ok(&self.name) {
            return Err(XmlError::InvalidName {
                name: self.name.clone(),
            });
        }
        for (attr, _) in &self.attributes {
            if !name_ok(attr) {
                return Err(XmlError::InvalidName { name: attr.clone() });
            }
        }
        for child in self.child_elements() {
            child.validate_names()?;
        }
        Ok(())
    }
}

/// Iterator over a subtree's elements in document order (see
/// [`Element::descendants`]).
#[derive(Debug, Clone)]
pub struct Descendants<'a> {
    stack: Vec<&'a Element>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = &'a Element;

    fn next(&mut self) -> Option<Self::Item> {
        let next = self.stack.pop()?;
        // Push children reversed so the leftmost child pops first.
        for child in next.child_elements().collect::<Vec<_>>().into_iter().rev() {
            self.stack.push(child);
        }
        Some(next)
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("exam")
            .with_attr("id", "midterm")
            .with_attr("version", "1")
            .with_child(
                Element::new("problem")
                    .with_attr("id", "q1")
                    .with_child(Element::new("stem").with_text("What is 1+1?")),
            )
            .with_child(Element::new("problem").with_attr("id", "q2"))
            .with_child(Node::Comment("trailing".into()))
    }

    #[test]
    fn attr_lookup_and_replace() {
        let mut el = sample();
        assert_eq!(el.attr("id"), Some("midterm"));
        assert_eq!(el.attr("missing"), None);
        el.set_attr("id", "final");
        assert_eq!(el.attr("id"), Some("final"));
        // replacing does not duplicate
        assert_eq!(el.attributes.iter().filter(|(n, _)| n == "id").count(), 1);
    }

    #[test]
    fn children_named_filters() {
        let el = sample();
        assert_eq!(el.children_named("problem").count(), 2);
        assert_eq!(el.child("problem").unwrap().attr("id"), Some("q1"));
        assert!(el.child("absent").is_none());
    }

    #[test]
    fn find_path_walks_depth() {
        let el = sample();
        let stem = el.find_path(&["problem", "stem"]).unwrap();
        assert_eq!(stem.text(), "What is 1+1?");
    }

    #[test]
    fn text_concatenates_text_and_cdata() {
        let el = Element::new("t")
            .with_text("a")
            .with_child(Node::CData("b".into()))
            .with_child(Node::Comment("not text".into()))
            .with_text("c");
        assert_eq!(el.text(), "abc");
    }

    #[test]
    fn local_name_strips_prefix() {
        assert_eq!(Element::new("adlcp:location").local_name(), "location");
        assert_eq!(Element::new("plain").local_name(), "plain");
    }

    #[test]
    fn subtree_size_counts_elements() {
        assert_eq!(sample().subtree_size(), 4);
    }

    #[test]
    fn validate_names_accepts_and_rejects() {
        assert!(sample().validate_names().is_ok());
        assert!(Element::new("1bad").validate_names().is_err());
        assert!(Element::new("ok")
            .with_attr("bad attr", "v")
            .validate_names()
            .is_err());
        assert!(Element::new("").validate_names().is_err());
        let nested_bad = Element::new("ok").with_child(Element::new("<nope>"));
        assert!(nested_bad.validate_names().is_err());
    }

    #[test]
    fn node_conversions() {
        let n: Node = "text".into();
        assert_eq!(n.as_text(), Some("text"));
        let n: Node = Element::new("e").into();
        assert!(n.as_element().is_some());
        assert!(n.as_text().is_none());
    }

    #[test]
    fn descendants_walk_document_order() {
        let el = sample();
        let names: Vec<&str> = el.descendants().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["exam", "problem", "stem", "problem"]);
        assert_eq!(el.descendants().count(), el.subtree_size());
        // Find by predicate across the whole tree.
        let stems: Vec<&Element> = el.descendants().filter(|e| e.name == "stem").collect();
        assert_eq!(stems.len(), 1);
    }

    #[test]
    fn child_text_helper() {
        let el = sample();
        let problem = el.child("problem").unwrap();
        assert_eq!(problem.child_text("stem").unwrap(), "What is 1+1?");
        assert!(problem.child_text("hint").is_none());
    }
}
