//! A non-validating recursive-descent XML parser.
//!
//! Supports elements, attributes (single- or double-quoted), text with
//! entity references, CDATA, comments, processing instructions, an XML
//! declaration, and skips `<!DOCTYPE …>` (including an internal subset).
//!
//! Whitespace policy: a text node consisting only of whitespace is
//! dropped when its parent also has element children (it is treated as
//! indentation), and kept otherwise. This makes
//! `parse(write_pretty(doc)) == doc` hold for documents without mixed
//! content.

use crate::document::{Document, Element, Node};
use crate::error::XmlError;
use crate::escape::unescape;

/// Parses a complete XML document.
///
/// # Errors
///
/// Returns an [`XmlError`] describing the first structural problem, with
/// 1-based line/column positions where available.
///
/// # Examples
///
/// ```
/// let doc = mine_xml::parse_document("<a x='1'><b>hi</b></a>")?;
/// assert_eq!(doc.root.attr("x"), Some("1"));
/// assert_eq!(doc.root.child("b").unwrap().text(), "hi");
/// # Ok::<(), mine_xml::XmlError>(())
/// ```
pub fn parse_document(input: &str) -> Result<Document, XmlError> {
    let mut parser = Parser::new(input.strip_prefix('\u{feff}').unwrap_or(input));
    parser.document()
}

struct Parser<'a> {
    input: &'a str,
    /// Byte offset into `input`.
    pos: usize,
    line: usize,
    column: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input,
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.rest().starts_with(prefix)
    }

    fn eat(&mut self, prefix: &str) -> bool {
        if self.starts_with(prefix) {
            for _ in prefix.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn syntax(&self, message: impl Into<String>) -> XmlError {
        XmlError::Syntax {
            message: message.into(),
            line: self.line,
            column: self.column,
        }
    }

    fn expect(&mut self, token: &str, context: &'static str) -> Result<(), XmlError> {
        if self.eat(token) {
            Ok(())
        } else if self.rest().is_empty() {
            Err(XmlError::UnexpectedEof { context })
        } else {
            Err(self.syntax(format!("expected {token:?} while reading {context}")))
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    /// Reads characters up to (not including) `stop`, failing at EOF.
    fn read_until(&mut self, stop: &str, context: &'static str) -> Result<&'a str, XmlError> {
        let start = self.pos;
        match self.rest().find(stop) {
            Some(offset) => {
                let end = start + offset;
                while self.pos < end {
                    self.bump();
                }
                Ok(&self.input[start..end])
            }
            None => Err(XmlError::UnexpectedEof { context }),
        }
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' => {
                self.bump();
            }
            Some(_) => return Err(self.syntax("expected a name")),
            None => return Err(XmlError::UnexpectedEof { context: "name" }),
        }
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'))
        {
            self.bump();
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn document(&mut self) -> Result<Document, XmlError> {
        let mut declaration = false;
        let mut prolog = Vec::new();
        self.skip_whitespace();
        if self.starts_with("<?xml") {
            declaration = true;
            self.read_until("?>", "xml declaration")?;
            self.expect("?>", "xml declaration")?;
        }

        let root = loop {
            self.skip_whitespace();
            if self.rest().is_empty() {
                return Err(XmlError::BadDocumentStructure {
                    message: "document has no root element".into(),
                });
            }
            if self.starts_with("<!--") {
                prolog.push(self.comment()?);
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.starts_with("<?") {
                prolog.push(self.processing_instruction()?);
            } else if self.starts_with("<") {
                break self.element()?;
            } else {
                return Err(self.syntax("text content before the root element"));
            }
        };

        let mut epilog = Vec::new();
        loop {
            self.skip_whitespace();
            if self.rest().is_empty() {
                break;
            }
            if self.starts_with("<!--") {
                epilog.push(self.comment()?);
            } else if self.starts_with("<?") {
                epilog.push(self.processing_instruction()?);
            } else {
                return Err(XmlError::BadDocumentStructure {
                    message: "content after the root element".into(),
                });
            }
        }

        Ok(Document {
            declaration,
            prolog,
            root,
            epilog,
        })
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        self.expect("<!DOCTYPE", "doctype")?;
        let mut depth = 0usize;
        loop {
            match self.bump() {
                Some('[') => depth += 1,
                Some(']') => depth = depth.saturating_sub(1),
                Some('>') if depth == 0 => return Ok(()),
                Some(_) => {}
                None => return Err(XmlError::UnexpectedEof { context: "doctype" }),
            }
        }
    }

    fn comment(&mut self) -> Result<Node, XmlError> {
        self.expect("<!--", "comment")?;
        let body = self.read_until("-->", "comment")?.to_string();
        self.expect("-->", "comment")?;
        Ok(Node::Comment(body))
    }

    fn processing_instruction(&mut self) -> Result<Node, XmlError> {
        self.expect("<?", "processing instruction")?;
        let target = self.read_name()?;
        let body = self
            .read_until("?>", "processing instruction")?
            .trim_start()
            .to_string();
        self.expect("?>", "processing instruction")?;
        Ok(Node::ProcessingInstruction { target, data: body })
    }

    fn element(&mut self) -> Result<Element, XmlError> {
        self.expect("<", "element open tag")?;
        let name = self.read_name()?;
        let mut element = Element::new(name);

        loop {
            self.skip_whitespace();
            match self.peek() {
                Some('/') => {
                    self.bump();
                    self.expect(">", "self-closing tag")?;
                    return Ok(element);
                }
                Some('>') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let (attr, value) = self.attribute()?;
                    if element.attr(&attr).is_some() {
                        return Err(self.syntax(format!("duplicate attribute {attr:?}")));
                    }
                    element.attributes.push((attr, value));
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        context: "element open tag",
                    })
                }
            }
        }

        self.children_into(&mut element)?;
        Ok(element)
    }

    fn attribute(&mut self) -> Result<(String, String), XmlError> {
        let name = self.read_name()?;
        self.skip_whitespace();
        self.expect("=", "attribute")?;
        self.skip_whitespace();
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            Some(_) => return Err(self.syntax("attribute value must be quoted")),
            None => {
                return Err(XmlError::UnexpectedEof {
                    context: "attribute",
                })
            }
        };
        let raw = self
            .read_until(if quote == '"' { "\"" } else { "'" }, "attribute value")?
            .to_string();
        self.bump(); // closing quote
        Ok((name, unescape(&raw)?))
    }

    fn children_into(&mut self, parent: &mut Element) -> Result<(), XmlError> {
        loop {
            if self.starts_with("</") {
                self.eat("</");
                let close_line = self.line;
                let close_column = self.column;
                let name = self.read_name()?;
                self.skip_whitespace();
                self.expect(">", "close tag")?;
                if name != parent.name {
                    return Err(XmlError::MismatchedTag {
                        expected: parent.name.clone(),
                        found: name,
                        line: close_line,
                        column: close_column,
                    });
                }
                prune_indentation(parent);
                return Ok(());
            }
            if self.rest().is_empty() {
                return Err(XmlError::UnexpectedEof {
                    context: "element content",
                });
            }
            if self.starts_with("<!--") {
                let comment = self.comment()?;
                parent.children.push(comment);
            } else if self.starts_with("<![CDATA[") {
                self.eat("<![CDATA[");
                let body = self.read_until("]]>", "cdata section")?.to_string();
                self.expect("]]>", "cdata section")?;
                parent.children.push(Node::CData(body));
            } else if self.starts_with("<?") {
                let pi = self.processing_instruction()?;
                parent.children.push(pi);
            } else if self.starts_with("<") {
                let child = self.element()?;
                parent.children.push(Node::Element(child));
            } else {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == '<' {
                        break;
                    }
                    self.bump();
                }
                let raw = &self.input[start..self.pos];
                let text = unescape(raw)?;
                if !text.is_empty() {
                    parent.children.push(Node::Text(text));
                }
            }
        }
    }
}

/// Drops whitespace-only text nodes from elements that also contain
/// element children (indentation produced by pretty printers).
fn prune_indentation(parent: &mut Element) {
    let has_elements = parent
        .children
        .iter()
        .any(|c| matches!(c, Node::Element(_)));
    if has_elements {
        parent.children.retain(|c| match c {
            Node::Text(t) => !t.chars().all(char::is_whitespace),
            _ => true,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use crate::writer::WriteOptions;

    #[test]
    fn parses_minimal_document() {
        let doc = parse_document("<root/>").unwrap();
        assert!(!doc.declaration);
        assert_eq!(doc.root.name, "root");
        assert!(doc.root.children.is_empty());
    }

    #[test]
    fn parses_declaration_and_doctype() {
        let doc =
            parse_document("<?xml version=\"1.0\"?>\n<!DOCTYPE html [ <!ENTITY x \"y\"> ]>\n<r/>")
                .unwrap();
        assert!(doc.declaration);
        assert_eq!(doc.root.name, "r");
    }

    #[test]
    fn parses_attributes_both_quote_styles() {
        let doc = parse_document("<e a=\"1\" b='two' c=\"a &amp; b\"/>").unwrap();
        assert_eq!(doc.root.attr("a"), Some("1"));
        assert_eq!(doc.root.attr("b"), Some("two"));
        assert_eq!(doc.root.attr("c"), Some("a & b"));
    }

    #[test]
    fn rejects_duplicate_attributes() {
        assert!(parse_document("<e a=\"1\" a=\"2\"/>").is_err());
    }

    #[test]
    fn parses_nested_elements_and_text() {
        let doc = parse_document("<a><b>one</b><b>two</b><c/></a>").unwrap();
        let texts: Vec<_> = doc.root.children_named("b").map(|b| b.text()).collect();
        assert_eq!(texts, vec!["one", "two"]);
        assert!(doc.root.child("c").is_some());
    }

    #[test]
    fn entity_references_in_text() {
        let doc = parse_document("<t>1 &lt; 2 &amp;&amp; 3 &gt; 2 &#x41;</t>").unwrap();
        assert_eq!(doc.root.text(), "1 < 2 && 3 > 2 A");
    }

    #[test]
    fn cdata_preserves_raw_markup() {
        let doc = parse_document("<t><![CDATA[<not-a-tag> & raw]]></t>").unwrap();
        assert_eq!(doc.root.text(), "<not-a-tag> & raw");
    }

    #[test]
    fn comments_inside_elements_are_kept() {
        let doc = parse_document("<t><!-- note --><x/></t>").unwrap();
        assert!(matches!(doc.root.children[0], Node::Comment(ref c) if c == " note "));
    }

    #[test]
    fn processing_instructions() {
        let doc = parse_document("<?pi some data?><r><?inner?></r>").unwrap();
        assert_eq!(doc.prolog.len(), 1);
        assert!(matches!(
            &doc.prolog[0],
            Node::ProcessingInstruction { target, data } if target == "pi" && data == "some data"
        ));
        assert!(matches!(
            &doc.root.children[0],
            Node::ProcessingInstruction { target, .. } if target == "inner"
        ));
    }

    #[test]
    fn mismatched_close_tag_reports_both_names() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        match err {
            XmlError::MismatchedTag {
                expected, found, ..
            } => {
                assert_eq!(expected, "b");
                assert_eq!(found, "a");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn truncated_input_reports_eof() {
        assert!(matches!(
            parse_document("<a><b>").unwrap_err(),
            XmlError::UnexpectedEof { .. }
        ));
        assert!(matches!(
            parse_document("<a x=").unwrap_err(),
            XmlError::UnexpectedEof { .. }
        ));
        assert!(matches!(
            parse_document("<a><!-- unclosed").unwrap_err(),
            XmlError::UnexpectedEof { .. }
        ));
    }

    #[test]
    fn content_after_root_is_an_error() {
        assert!(matches!(
            parse_document("<a/><b/>").unwrap_err(),
            XmlError::BadDocumentStructure { .. }
        ));
        assert!(parse_document("<a/> <!-- ok -->").is_ok());
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(
            parse_document("").unwrap_err(),
            XmlError::BadDocumentStructure { .. }
        ));
        assert!(matches!(
            parse_document("   \n  ").unwrap_err(),
            XmlError::BadDocumentStructure { .. }
        ));
    }

    #[test]
    fn error_positions_are_one_based() {
        let err = parse_document("<a>\n  <1bad/>\n</a>").unwrap_err();
        match err {
            XmlError::Syntax { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bom_is_skipped() {
        let doc = parse_document("\u{feff}<r/>").unwrap();
        assert_eq!(doc.root.name, "r");
    }

    #[test]
    fn unicode_names_and_text() {
        let doc = parse_document("<題目 科目=\"網路\">中文內容</題目>").unwrap();
        assert_eq!(doc.root.name, "題目");
        assert_eq!(doc.root.attr("科目"), Some("網路"));
        assert_eq!(doc.root.text(), "中文內容");
    }

    #[test]
    fn pretty_round_trip_is_lossless_for_structured_documents() {
        let original = Document::new(
            crate::Element::new("manifest")
                .with_attr("identifier", "M1")
                .with_child(
                    crate::Element::new("metadata")
                        .with_child(crate::Element::new("schema").with_text("ADL SCORM")),
                )
                .with_child(crate::Element::new("resources")),
        );
        for options in [WriteOptions::pretty(), WriteOptions::compact()] {
            let text = original.to_xml_with(&options);
            let parsed = parse_document(&text).unwrap();
            assert_eq!(parsed, original, "options {options:?}");
        }
    }

    #[test]
    fn whitespace_only_text_kept_in_leaf_elements() {
        let doc = parse_document("<t>   </t>").unwrap();
        assert_eq!(doc.root.text(), "   ");
    }

    #[test]
    fn indentation_between_elements_is_pruned() {
        let doc = parse_document("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(doc.root.children.len(), 2);
    }
}
