//! Role-based access control over the authoring system.
//!
//! §5 names the actors: "Authors, instructors and tutors use the
//! assessment authoring system to edit problems or exam … Administrator
//! control the database and learning management (LMS) monitor function.
//! Learners take the exam." This module gives those roles teeth: a
//! [`RolePolicy`] registered on the system decides which [`Action`]s an
//! actor may perform.
//!
//! Enforcement is opt-in — a fresh [`RolePolicy`] with no registrations
//! permits everything, so embedding code that does not care about roles
//! keeps working.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// The §5 actor roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Writes problems and templates.
    Author,
    /// Assembles exams, runs analyses, publishes packages.
    Instructor,
    /// Reads and searches; assists learners.
    Tutor,
    /// "Controls the database": everything, including deletion.
    Administrator,
    /// Takes exams; no authoring rights.
    Learner,
}

/// The operations the policy gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Action {
    /// Create or edit a problem or template.
    AuthorContent,
    /// Create or edit an exam.
    AuthorExam,
    /// Delete problems/templates from the database.
    Delete,
    /// Export/publish/import packages.
    Exchange,
    /// Run analyses and write indices back.
    Analyze,
    /// Sit an exam.
    TakeExam,
}

impl Role {
    /// Whether the role may perform an action (the default matrix).
    #[must_use]
    pub fn may(self, action: Action) -> bool {
        match self {
            Role::Administrator => true,
            Role::Author => matches!(
                action,
                Action::AuthorContent | Action::AuthorExam | Action::Exchange | Action::TakeExam
            ),
            Role::Instructor => matches!(
                action,
                Action::AuthorContent
                    | Action::AuthorExam
                    | Action::Exchange
                    | Action::Analyze
                    | Action::TakeExam
            ),
            Role::Tutor => matches!(action, Action::Analyze | Action::TakeExam),
            Role::Learner => matches!(action, Action::TakeExam),
        }
    }
}

/// An actor registry with opt-in enforcement.
///
/// Cloning shares the registry.
#[derive(Debug, Clone, Default)]
pub struct RolePolicy {
    inner: Arc<RwLock<PolicyInner>>,
}

#[derive(Debug, Default)]
struct PolicyInner {
    roles: BTreeMap<String, Role>,
    enforcing: bool,
}

/// Why an action was denied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Denied {
    /// The actor that was denied.
    pub actor: String,
    /// The action attempted.
    pub action: Action,
    /// The actor's role, when registered.
    pub role: Option<Role>,
}

impl std::fmt::Display for Denied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.role {
            Some(role) => write!(
                f,
                "actor {:?} with role {role:?} may not {:?}",
                self.actor, self.action
            ),
            None => write!(f, "actor {:?} is not registered", self.actor),
        }
    }
}

impl std::error::Error for Denied {}

impl RolePolicy {
    /// Creates a permissive (non-enforcing) policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) an actor's role.
    pub fn register(&self, actor: impl Into<String>, role: Role) {
        self.inner.write().roles.insert(actor.into(), role);
    }

    /// Turns enforcement on: unregistered actors are denied everything.
    pub fn enforce(&self) {
        self.inner.write().enforcing = true;
    }

    /// Whether enforcement is on.
    #[must_use]
    pub fn is_enforcing(&self) -> bool {
        self.inner.read().enforcing
    }

    /// The registered role of an actor.
    #[must_use]
    pub fn role_of(&self, actor: &str) -> Option<Role> {
        self.inner.read().roles.get(actor).copied()
    }

    /// Checks an action; `Ok` when permitted.
    ///
    /// # Errors
    ///
    /// Returns [`Denied`] when enforcement is on and the actor is
    /// unregistered or its role forbids the action.
    pub fn check(&self, actor: &str, action: Action) -> Result<(), Denied> {
        let inner = self.inner.read();
        if !inner.enforcing {
            return Ok(());
        }
        match inner.roles.get(actor) {
            Some(role) if role.may(action) => Ok(()),
            role => Err(Denied {
                actor: actor.to_string(),
                action,
                role: role.copied(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matrix_matches_the_paper_roles() {
        assert!(Role::Administrator.may(Action::Delete));
        assert!(!Role::Author.may(Action::Delete));
        assert!(!Role::Instructor.may(Action::Delete));
        assert!(Role::Instructor.may(Action::Analyze));
        assert!(!Role::Author.may(Action::Analyze));
        assert!(Role::Tutor.may(Action::Analyze));
        assert!(!Role::Tutor.may(Action::AuthorContent));
        assert!(Role::Learner.may(Action::TakeExam));
        assert!(!Role::Learner.may(Action::AuthorExam));
    }

    #[test]
    fn permissive_by_default() {
        let policy = RolePolicy::new();
        assert!(policy.check("anyone", Action::Delete).is_ok());
        assert!(!policy.is_enforcing());
    }

    #[test]
    fn enforcement_denies_unregistered_actors() {
        let policy = RolePolicy::new();
        policy.enforce();
        let denied = policy.check("ghost", Action::TakeExam).unwrap_err();
        assert_eq!(denied.role, None);
        assert!(denied.to_string().contains("not registered"));
    }

    #[test]
    fn enforcement_applies_the_matrix() {
        let policy = RolePolicy::new();
        policy.register("hung", Role::Author);
        policy.register("admin", Role::Administrator);
        policy.enforce();
        assert!(policy.check("hung", Action::AuthorContent).is_ok());
        let denied = policy.check("hung", Action::Delete).unwrap_err();
        assert_eq!(denied.role, Some(Role::Author));
        assert!(policy.check("admin", Action::Delete).is_ok());
    }

    #[test]
    fn reregistration_changes_the_role() {
        let policy = RolePolicy::new();
        policy.register("x", Role::Learner);
        policy.enforce();
        assert!(policy.check("x", Action::AuthorExam).is_err());
        policy.register("x", Role::Instructor);
        assert!(policy.check("x", Action::AuthorExam).is_ok());
        assert_eq!(policy.role_of("x"), Some(Role::Instructor));
    }

    #[test]
    fn clones_share_registrations() {
        let policy = RolePolicy::new();
        let clone = policy.clone();
        clone.register("y", Role::Tutor);
        clone.enforce();
        assert!(policy.is_enforcing());
        assert_eq!(policy.role_of("y"), Some(Role::Tutor));
    }
}
