//! The authoring system facade.

use mine_analysis::{AnalysisConfig, ExamAnalysis};
use mine_core::{ExamId, ExamRecord, ProblemId, StudentId, TemplateId};
use mine_delivery::{DeliveryOptions, ExamSession, Monitor, MonitorHub, SnapshotPolicy};
use mine_itembank::{Exam, Problem, Query, Repository, SearchHit, Template};
use mine_metadata::{DifficultyIndex, DiscriminationIndex, IndividualTestMeta};
use mine_qti::QtiAssessment;
use mine_scorm::ContentPackage;
use mine_xml::Document;

use crate::audit::AuditLog;
use crate::error::AuthoringError;
use crate::external::ExternalRepository;
use crate::history::HistoryStore;
use crate::roles::{Action, RolePolicy};

/// Outcome of importing a package (§5 reuse flow).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ImportReport {
    /// Problems newly inserted.
    pub imported_problems: Vec<ProblemId>,
    /// Problems skipped because the id already existed.
    pub skipped_problems: Vec<ProblemId>,
    /// The exam imported, if the package carried one and it did not
    /// collide.
    pub imported_exam: Option<ExamId>,
}

/// The assessment authoring system: repository + monitor hub + audit log
/// behind one API.
///
/// Cheap to clone; clones share all state.
#[derive(Debug, Clone, Default)]
pub struct AuthoringSystem {
    repository: Repository,
    monitor_hub: std::sync::Arc<MonitorHub>,
    audit: AuditLog,
    policy: RolePolicy,
    history: HistoryStore,
}

impl AuthoringSystem {
    /// Creates a system with an empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying problem & exam database.
    #[must_use]
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// The proctor's monitor hub.
    #[must_use]
    pub fn monitor_hub(&self) -> &MonitorHub {
        &self.monitor_hub
    }

    /// The audit trail.
    #[must_use]
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The role policy (§5 actors). Permissive until
    /// [`RolePolicy::enforce`] is called.
    #[must_use]
    pub fn policy(&self) -> &RolePolicy {
        &self.policy
    }

    /// The longitudinal administration history (appended by
    /// [`AuthoringSystem::apply_analysis`]).
    #[must_use]
    pub fn history(&self) -> &HistoryStore {
        &self.history
    }

    // ----- problem authoring (§5.1–5.2) ------------------------------

    /// Authors a new problem.
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Bank`] for duplicates or invalid bodies.
    pub fn author_problem(&self, actor: &str, problem: Problem) -> Result<(), AuthoringError> {
        self.policy.check(actor, Action::AuthorContent)?;
        let id = problem.id().clone();
        self.repository.insert_problem(problem)?;
        self.audit.record(actor, "author-problem", id.as_str());
        Ok(())
    }

    /// Edits an existing problem under the write lock.
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Bank`] when absent or the edit fails
    /// validation.
    pub fn edit_problem<F>(
        &self,
        actor: &str,
        id: &ProblemId,
        edit: F,
    ) -> Result<u64, AuthoringError>
    where
        F: FnOnce(&mut Problem) -> Result<(), mine_itembank::BankError>,
    {
        self.policy.check(actor, Action::AuthorContent)?;
        let version = self.repository.update_problem(id, edit)?;
        self.audit.record(actor, "edit-problem", id.as_str());
        Ok(version)
    }

    /// Deletes a problem (administrator action).
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Bank`] when absent.
    pub fn delete_problem(&self, actor: &str, id: &ProblemId) -> Result<Problem, AuthoringError> {
        self.policy.check(actor, Action::Delete)?;
        let problem = self.repository.remove_problem(id)?;
        self.audit.record(actor, "delete-problem", id.as_str());
        Ok(problem)
    }

    // ----- search (§5) ------------------------------------------------

    /// "Search similar or specific subject or related problems from
    /// problem & exam database."
    #[must_use]
    pub fn search_problems(&self, query: &Query) -> Vec<SearchHit> {
        self.repository.search(query)
    }

    /// Problems similar to a given one.
    #[must_use]
    pub fn similar_problems(&self, id: &ProblemId, limit: usize) -> Vec<SearchHit> {
        self.repository.similar_to(id, limit)
    }

    // ----- templates (§5.3) -------------------------------------------

    /// Adds a presentation template.
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Bank`] for a duplicate id.
    pub fn add_template(&self, actor: &str, template: Template) -> Result<(), AuthoringError> {
        self.policy.check(actor, Action::AuthorContent)?;
        let id = template.id().clone();
        self.repository.insert_template(template)?;
        self.audit.record(actor, "add-template", id.as_str());
        Ok(())
    }

    /// Duplicates a template for reuse ("he wanted to copy the problem
    /// structure for reuse").
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Bank`] when the source is absent or the
    /// new id is taken.
    pub fn duplicate_template(
        &self,
        actor: &str,
        source: &TemplateId,
        new_id: TemplateId,
        new_name: &str,
    ) -> Result<(), AuthoringError> {
        let template = self.repository.template(source)?;
        let copy = template.duplicate(new_id.clone(), new_name);
        self.repository.insert_template(copy)?;
        self.audit
            .record(actor, "duplicate-template", new_id.as_str());
        Ok(())
    }

    /// Deletes a template.
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Bank`] when absent.
    pub fn delete_template(&self, actor: &str, id: &TemplateId) -> Result<(), AuthoringError> {
        self.policy.check(actor, Action::Delete)?;
        self.repository.remove_template(id)?;
        self.audit.record(actor, "delete-template", id.as_str());
        Ok(())
    }

    // ----- exam authoring (§5.4) --------------------------------------

    /// Authors a new exam (every referenced problem must exist).
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Bank`] for duplicates or dangling
    /// references.
    pub fn author_exam(&self, actor: &str, exam: Exam) -> Result<(), AuthoringError> {
        self.policy.check(actor, Action::AuthorExam)?;
        let id = exam.id().clone();
        self.repository.insert_exam(exam)?;
        self.audit.record(actor, "author-exam", id.as_str());
        Ok(())
    }

    /// Edits an exam under the write lock.
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Bank`] when absent or invalid.
    pub fn edit_exam<F>(&self, actor: &str, id: &ExamId, edit: F) -> Result<u64, AuthoringError>
    where
        F: FnOnce(&mut Exam) -> Result<(), mine_itembank::BankError>,
    {
        self.policy.check(actor, Action::AuthorExam)?;
        let version = self.repository.update_exam(id, edit)?;
        self.audit.record(actor, "edit-exam", id.as_str());
        Ok(version)
    }

    /// Assembles and stores a new exam from a blueprint: the bank must
    /// supply every (concept × cognition level) cell the blueprint
    /// demands (the Table 4 coverage check, run *before* the exam is
    /// given instead of after).
    ///
    /// # Errors
    ///
    /// * [`AuthoringError::Forbidden`] under role enforcement,
    /// * [`AuthoringError::ImportConflict`] when the blueprint cannot be
    ///   satisfied (the message lists every deficient cell),
    /// * [`AuthoringError::Bank`] when the exam id is taken.
    pub fn assemble_exam(
        &self,
        actor: &str,
        exam_id: &str,
        title: &str,
        blueprint: &mine_itembank::Blueprint,
    ) -> Result<Exam, AuthoringError> {
        self.policy.check(actor, Action::AuthorExam)?;
        let bank: Vec<Problem> = self
            .repository
            .problem_ids()
            .into_iter()
            .filter_map(|id| self.repository.problem(&id).ok())
            .collect();
        let chosen = mine_itembank::assemble_from_blueprint(&bank, blueprint).map_err(|err| {
            AuthoringError::ImportConflict {
                reason: err.to_string(),
            }
        })?;
        let mut builder = Exam::builder(exam_id)?.title(title);
        for problem in chosen {
            builder = builder.entry(problem);
        }
        let exam = builder.build()?;
        self.repository.insert_exam(exam.clone())?;
        self.audit.record(actor, "assemble-exam", exam_id);
        Ok(exam)
    }

    // ----- SCORM output / reuse (§5.5) --------------------------------

    /// The SCORM format output service: packages an exam with all its
    /// problems and descriptors.
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Bank`] for an unknown exam and
    /// [`AuthoringError::Scorm`] for packaging failures.
    pub fn export_scorm(
        &self,
        actor: &str,
        exam_id: &ExamId,
    ) -> Result<ContentPackage, AuthoringError> {
        self.policy.check(actor, Action::Exchange)?;
        let (exam, problems) = self.repository.resolve_exam(exam_id)?;
        let package = ContentPackage::builder(format!("PKG-{exam_id}"))
            .exam(exam)
            .problems(problems)
            .build()?;
        self.audit.record(actor, "export-scorm", exam_id.as_str());
        Ok(package)
    }

    /// Publishes an exam's package to an external repository.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AuthoringSystem::export_scorm`].
    pub fn publish(
        &self,
        actor: &str,
        exam_id: &ExamId,
        external: &ExternalRepository,
        name: &str,
    ) -> Result<(), AuthoringError> {
        let package = self.export_scorm(actor, exam_id)?;
        external.publish(name, package);
        self.audit.record(actor, "publish", name);
        Ok(())
    }

    /// Imports a package's problems (and exam, when present) into the
    /// database — the §5 reuse flow. Problems whose ids already exist are
    /// skipped; a colliding exam id is an error.
    ///
    /// # Errors
    ///
    /// * [`AuthoringError::Scorm`] when extraction fails,
    /// * [`AuthoringError::ImportConflict`] when the package's exam id is
    ///   already taken.
    pub fn import_package(
        &self,
        actor: &str,
        package: &ContentPackage,
    ) -> Result<ImportReport, AuthoringError> {
        self.policy.check(actor, Action::Exchange)?;
        let mut report = ImportReport::default();
        for problem in package.extract_problems()? {
            let id = problem.id().clone();
            match self.repository.insert_problem(problem) {
                Ok(()) => report.imported_problems.push(id),
                Err(mine_itembank::BankError::Duplicate { .. }) => {
                    report.skipped_problems.push(id);
                }
                Err(err) => return Err(err.into()),
            }
        }
        if let Some(exam) = package.extract_exam()? {
            let id = exam.id().clone();
            match self.repository.insert_exam(exam) {
                Ok(()) => report.imported_exam = Some(id),
                Err(mine_itembank::BankError::Duplicate { .. }) => {
                    return Err(AuthoringError::ImportConflict {
                        reason: format!("exam {id} already exists"),
                    })
                }
                Err(err) => return Err(err.into()),
            }
        }
        self.audit
            .record(actor, "import-package", &package.manifest.identifier);
        Ok(report)
    }

    // ----- QTI interchange (§2.3) --------------------------------------

    /// Exports an exam as a QTI `questestinterop` document.
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Bank`] for an unknown exam and
    /// [`AuthoringError::Qti`] for encoding failures.
    pub fn export_qti(&self, actor: &str, exam_id: &ExamId) -> Result<Document, AuthoringError> {
        self.policy.check(actor, Action::Exchange)?;
        let (exam, problems) = self.repository.resolve_exam(exam_id)?;
        let doc = mine_qti::assessment_to_qti(&exam, &problems)?;
        self.audit.record(actor, "export-qti", exam_id.as_str());
        Ok(doc)
    }

    /// Imports a QTI document: problems are inserted (skipping
    /// duplicates) and the assessment becomes an exam.
    ///
    /// # Errors
    ///
    /// * [`AuthoringError::Qti`] for decoding failures,
    /// * [`AuthoringError::ImportConflict`] when the exam id is taken.
    pub fn import_qti(&self, actor: &str, doc: &Document) -> Result<ImportReport, AuthoringError> {
        self.policy.check(actor, Action::Exchange)?;
        let QtiAssessment { exam, problems } = mine_qti::assessment_from_qti(doc)?;
        let mut report = ImportReport::default();
        for problem in problems {
            let id = problem.id().clone();
            match self.repository.insert_problem(problem) {
                Ok(()) => report.imported_problems.push(id),
                Err(mine_itembank::BankError::Duplicate { .. }) => {
                    report.skipped_problems.push(id);
                }
                Err(err) => return Err(err.into()),
            }
        }
        let id = exam.id().clone();
        match self.repository.insert_exam(exam) {
            Ok(()) => report.imported_exam = Some(id),
            Err(mine_itembank::BankError::Duplicate { .. }) => {
                return Err(AuthoringError::ImportConflict {
                    reason: format!("exam {id} already exists"),
                })
            }
            Err(err) => return Err(err.into()),
        }
        self.audit.record(
            actor,
            "import-qti",
            report.imported_exam.as_ref().map_or("-", ExamId::as_str),
        );
        Ok(report)
    }

    /// Exports a graded sitting as a QTI results report.
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Forbidden`] under role enforcement.
    pub fn export_results_qti(
        &self,
        actor: &str,
        record: &ExamRecord,
    ) -> Result<Document, AuthoringError> {
        self.policy.check(actor, Action::Exchange)?;
        let doc = mine_qti::results_to_qti(record);
        self.audit
            .record(actor, "export-results", record.exam.as_str());
        Ok(doc)
    }

    // ----- delivery + monitor (§5) -------------------------------------

    /// Starts a monitored exam session for a learner.
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Bank`] for an unknown exam and
    /// [`AuthoringError::Delivery`] for session failures.
    pub fn deliver(
        &self,
        exam_id: &ExamId,
        student: StudentId,
        options: DeliveryOptions,
    ) -> Result<(ExamSession, Monitor), AuthoringError> {
        let (exam, problems) = self.repository.resolve_exam(exam_id)?;
        let session = ExamSession::start(&exam, problems, student.clone(), options)?;
        let monitor =
            self.monitor_hub
                .monitor(session.id().clone(), student, SnapshotPolicy::default());
        Ok((session, monitor))
    }

    // ----- the analysis loop (§4) --------------------------------------

    /// Runs the §4 analysis for a sitting of a stored exam.
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Bank`] for an unknown exam and
    /// [`AuthoringError::Analysis`] for analysis failures.
    pub fn analyze(
        &self,
        exam_id: &ExamId,
        record: &ExamRecord,
        config: &AnalysisConfig,
    ) -> Result<ExamAnalysis, AuthoringError> {
        let (_, problems) = self.repository.resolve_exam(exam_id)?;
        Ok(ExamAnalysis::analyze(record, &problems, config)?)
    }

    /// Writes the measured indices back into problem metadata and the
    /// measured average time into the exam metadata — closing the
    /// paper's loop where "teachers can see the analysis of test result
    /// and fix problematic questions".
    ///
    /// # Errors
    ///
    /// Returns [`AuthoringError::Bank`] when the exam or a problem
    /// vanished between analysis and write-back.
    pub fn apply_analysis(
        &self,
        actor: &str,
        exam_id: &ExamId,
        analysis: &ExamAnalysis,
    ) -> Result<(), AuthoringError> {
        self.policy.check(actor, Action::Analyze)?;
        self.history.record_analysis(analysis);
        for question in &analysis.questions {
            let difficulty = DifficultyIndex::new(question.indices.difficulty.value())
                .expect("index already validated");
            let discrimination = DiscriminationIndex::new(question.indices.discrimination.value())
                .expect("index already validated");
            let mut notes = vec![question.advice.clone()];
            notes.extend(question.distractors.iter().map(|d| d.describe()));
            self.repository
                .update_problem(&question.indices.problem, move |problem| {
                    let test = problem
                        .metadata_mut()
                        .individual_test
                        .get_or_insert_with(IndividualTestMeta::default);
                    test.difficulty = Some(difficulty);
                    test.discrimination = Some(discrimination);
                    test.distraction = notes;
                    Ok(())
                })?;
        }
        let average_time = analysis.statistics.average_time;
        self.repository.update_exam(exam_id, move |exam| {
            exam.meta_mut().average_time = Some(average_time);
            Ok(())
        })?;
        self.audit.record(actor, "apply-analysis", exam_id.as_str());
        Ok(())
    }

    // ----- persistence --------------------------------------------------

    /// Saves the whole database (problems, exams, templates) to a JSON
    /// snapshot file.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on filesystem or encoding failure.
    pub fn save_database(
        &self,
        actor: &str,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<()> {
        let snapshot = mine_itembank::RepositorySnapshot::capture(&self.repository);
        snapshot.save(&path)?;
        self.audit
            .record(actor, "save-database", path.as_ref().display().to_string());
        Ok(())
    }

    /// Loads a database snapshot file into a fresh authoring system.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on filesystem/decoding failure, or when
    /// the snapshot's contents fail item-bank validation.
    pub fn load_database(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let snapshot = mine_itembank::RepositorySnapshot::load(path)?;
        let repository = snapshot
            .restore()
            .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string()))?;
        Ok(Self {
            repository,
            monitor_hub: std::sync::Arc::new(MonitorHub::new()),
            audit: AuditLog::new(),
            policy: RolePolicy::new(),
            history: HistoryStore::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::OptionKey;
    use mine_itembank::ChoiceOption;
    use mine_simulator::{CohortSpec, Simulation};

    fn system_with_exam() -> (AuthoringSystem, ExamId) {
        let system = AuthoringSystem::new();
        for i in 0..5 {
            system
                .author_problem(
                    "hung",
                    Problem::multiple_choice(
                        format!("q{i}"),
                        format!("Question {i} about networking"),
                        OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("{k}"))),
                        OptionKey::A,
                    )
                    .unwrap()
                    .with_subject("networking"),
                )
                .unwrap();
        }
        let mut builder = Exam::builder("midterm").unwrap().title("Midterm");
        for i in 0..5 {
            builder = builder.entry(format!("q{i}").parse().unwrap());
        }
        system.author_exam("lin", builder.build().unwrap()).unwrap();
        (system, "midterm".parse().unwrap())
    }

    #[test]
    fn authoring_records_audit_entries() {
        let (system, _) = system_with_exam();
        assert_eq!(system.audit().len(), 6);
        assert_eq!(system.audit().by_actor("lin").len(), 1);
    }

    #[test]
    fn search_finds_authored_problems() {
        let (system, _) = system_with_exam();
        let hits = system.search_problems(&Query::text("networking"));
        assert_eq!(hits.len(), 5);
        let similar = system.similar_problems(&"q0".parse().unwrap(), 3);
        assert_eq!(similar.len(), 3);
    }

    #[test]
    fn scorm_export_publish_import_round_trip() {
        let (system, exam_id) = system_with_exam();
        let external = ExternalRepository::new();
        system
            .publish("lin", &exam_id, &external, "midterm-pkg")
            .unwrap();
        let fetched = external.fetch("midterm-pkg").unwrap();

        // A fresh system imports everything.
        let other = AuthoringSystem::new();
        let report = other.import_package("chen", &fetched).unwrap();
        assert_eq!(report.imported_problems.len(), 5);
        assert!(report.skipped_problems.is_empty());
        assert_eq!(report.imported_exam, Some(exam_id.clone()));
        assert_eq!(other.repository().problem_count(), 5);
        assert_eq!(other.repository().exam_count(), 1);

        // Importing again skips problems and conflicts on the exam.
        let err = other.import_package("chen", &fetched).unwrap_err();
        assert!(matches!(err, AuthoringError::ImportConflict { .. }));
    }

    #[test]
    fn qti_export_import_round_trip() {
        let (system, exam_id) = system_with_exam();
        let doc = system.export_qti("lin", &exam_id).unwrap();
        let text = doc.to_xml_string();
        let parsed = mine_xml::parse_document(&text).unwrap();
        let other = AuthoringSystem::new();
        let report = other.import_qti("chen", &parsed).unwrap();
        assert_eq!(report.imported_problems.len(), 5);
        assert_eq!(report.imported_exam, Some(exam_id));
    }

    #[test]
    fn deliver_attaches_monitor() {
        let (system, exam_id) = system_with_exam();
        let (mut session, _monitor) = system
            .deliver(
                &exam_id,
                "alice".parse().unwrap(),
                DeliveryOptions::default(),
            )
            .unwrap();
        session
            .answer(
                mine_core::Answer::Choice(OptionKey::A),
                std::time::Duration::from_secs(5),
            )
            .unwrap();
        let events = system.monitor_hub().drain();
        assert!(!events.is_empty());
    }

    #[test]
    fn analysis_loop_writes_back_metadata() {
        let (system, exam_id) = system_with_exam();
        let (exam, problems) = system.repository().resolve_exam(&exam_id).unwrap();
        let record = Simulation::new(exam, problems)
            .cohort(CohortSpec::new(44).seed(5))
            .run()
            .unwrap();
        let analysis = system
            .analyze(&exam_id, &record, &AnalysisConfig::default())
            .unwrap();
        system.apply_analysis("lin", &exam_id, &analysis).unwrap();

        let q0 = system.repository().problem(&"q0".parse().unwrap()).unwrap();
        let test = q0.metadata().individual_test.as_ref().unwrap();
        assert!(test.difficulty.is_some());
        assert!(test.discrimination.is_some());
        assert!(!test.distraction.is_empty());
        let exam = system.repository().exam(&exam_id).unwrap();
        assert!(exam.meta().average_time.is_some());
    }

    #[test]
    fn template_workflows() {
        let system = AuthoringSystem::new();
        let template = Template::new("t1".parse().unwrap(), "base layout");
        system.add_template("hung", template).unwrap();
        system
            .duplicate_template(
                "hung",
                &"t1".parse().unwrap(),
                "t2".parse().unwrap(),
                "copy",
            )
            .unwrap();
        assert_eq!(system.repository().template_count(), 2);
        system
            .delete_template("admin", &"t2".parse().unwrap())
            .unwrap();
        assert_eq!(system.repository().template_count(), 1);
        assert!(system
            .delete_template("admin", &"t2".parse().unwrap())
            .is_err());
    }

    #[test]
    fn edit_problem_bumps_version() {
        let (system, _) = system_with_exam();
        let id: ProblemId = "q0".parse().unwrap();
        let version = system
            .edit_problem("hung", &id, |p| {
                p.set_subject("transport");
                Ok(())
            })
            .unwrap();
        assert_eq!(version, 2);
        assert_eq!(
            system.repository().problem(&id).unwrap().subject().as_str(),
            "transport"
        );
    }

    #[test]
    fn assemble_exam_from_blueprint() {
        use mine_core::CognitionLevel;
        let (system, _) = system_with_exam();
        // Give the fixture problems cognition levels so the blueprint
        // cells resolve: q0-q2 Knowledge, q3-q4 Comprehension.
        for i in 0..5 {
            system
                .edit_problem("hung", &format!("q{i}").parse().unwrap(), |p| {
                    p.set_cognition_level(if i < 3 {
                        CognitionLevel::Knowledge
                    } else {
                        CognitionLevel::Comprehension
                    });
                    Ok(())
                })
                .unwrap();
        }
        let blueprint = mine_itembank::Blueprint::new()
            .require("networking", CognitionLevel::Knowledge, 2)
            .require("networking", CognitionLevel::Comprehension, 1);
        let exam = system
            .assemble_exam("lin", "blueprinted", "Blueprinted exam", &blueprint)
            .unwrap();
        assert_eq!(exam.len(), 3);
        assert_eq!(system.repository().exam_count(), 2);

        // Unsatisfiable blueprint reports the cells.
        let impossible =
            mine_itembank::Blueprint::new().require("networking", CognitionLevel::Evaluation, 1);
        let err = system
            .assemble_exam("lin", "impossible", "x", &impossible)
            .unwrap_err();
        assert!(err.to_string().contains("networking × F"), "{err}");
    }

    #[test]
    fn role_enforcement_gates_operations() {
        use crate::roles::Role;
        let (system, exam_id) = system_with_exam();
        system.policy().register("hung", Role::Author);
        system.policy().register("lin", Role::Instructor);
        system.policy().register("boss", Role::Administrator);
        system.policy().register("kid", Role::Learner);
        system.policy().enforce();

        // Author can add content but not delete or analyze.
        assert!(system
            .author_problem("hung", Problem::true_false("extra", "x", true).unwrap())
            .is_ok());
        assert!(matches!(
            system.delete_problem("hung", &"extra".parse().unwrap()),
            Err(AuthoringError::Forbidden(_))
        ));
        // Learner can do none of the authoring actions.
        assert!(matches!(
            system.author_exam("kid", Exam::builder("nope").unwrap().build().unwrap()),
            Err(AuthoringError::Forbidden(_))
        ));
        assert!(matches!(
            system.export_scorm("kid", &exam_id),
            Err(AuthoringError::Forbidden(_))
        ));
        // Unregistered actors are denied once enforcing.
        assert!(matches!(
            system.author_problem("ghost", Problem::true_false("g", "x", true).unwrap()),
            Err(AuthoringError::Forbidden(_))
        ));
        // Administrator can delete.
        assert!(system
            .delete_problem("boss", &"extra".parse().unwrap())
            .is_ok());
        // Instructor can export.
        assert!(system.export_scorm("lin", &exam_id).is_ok());
    }

    #[test]
    fn apply_analysis_appends_history() {
        let (system, exam_id) = system_with_exam();
        let (exam, problems) = system.repository().resolve_exam(&exam_id).unwrap();
        for seed in [5u64, 6] {
            let record = Simulation::new(exam.clone(), problems.clone())
                .cohort(CohortSpec::new(44).seed(seed))
                .run()
                .unwrap();
            let analysis = system
                .analyze(&exam_id, &record, &AnalysisConfig::default())
                .unwrap();
            system.apply_analysis("lin", &exam_id, &analysis).unwrap();
        }
        let history = system.history().history(&"q0".parse().unwrap());
        assert_eq!(history.len(), 2);
        assert_eq!(history[1].sequence, 1);
    }

    #[test]
    fn database_save_load_round_trip() {
        let (system, exam_id) = system_with_exam();
        let dir = std::env::temp_dir().join(format!("mine-auth-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        system.save_database("admin", &path).unwrap();
        let loaded = AuthoringSystem::load_database(&path).unwrap();
        assert_eq!(loaded.repository().problem_count(), 5);
        assert_eq!(loaded.repository().exam_count(), 1);
        let (exam, problems) = loaded.repository().resolve_exam(&exam_id).unwrap();
        assert_eq!(exam.len(), 5);
        assert_eq!(problems.len(), 5);
        // Search index is rebuilt on restore.
        assert_eq!(loaded.search_problems(&Query::text("networking")).len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_database_rejects_corrupt_files() {
        let dir = std::env::temp_dir().join(format!("mine-auth-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(AuthoringSystem::load_database(&path).is_err());
        assert!(AuthoringSystem::load_database(dir.join("missing.json")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_problem_then_exam_resolution_fails() {
        let (system, exam_id) = system_with_exam();
        system
            .delete_problem("admin", &"q0".parse().unwrap())
            .unwrap();
        assert!(system.repository().resolve_exam(&exam_id).is_err());
    }
}
