//! Longitudinal item history: how P and D move across administrations.
//!
//! The paper's loop ("teachers can see the analysis of test result and
//! fix problematic questions") repeats every term. The history store
//! keeps each administration's measured indices per question so the
//! teacher can see *trends* — an item drifting easier (leaked? taught to
//! the test?) or losing discrimination (stale distractors) — instead of
//! only the latest snapshot.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use mine_analysis::ExamAnalysis;
use mine_core::ProblemId;

/// One administration's measurements for one question.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdministrationStats {
    /// 0-based administration sequence number (per problem).
    pub sequence: u64,
    /// Class size of the sitting.
    pub class_size: usize,
    /// Measured Item Difficulty Index `P`.
    pub difficulty: f64,
    /// Measured Item Discrimination Index `D`.
    pub discrimination: f64,
}

/// The direction an item's index is moving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trend {
    /// Fewer than two administrations — nothing to compare.
    Insufficient,
    /// Change within the tolerance band.
    Stable,
    /// The index rose beyond tolerance.
    Rising,
    /// The index fell beyond tolerance.
    Falling,
}

/// Shared store of administration histories (clones share state).
#[derive(Debug, Clone, Default)]
pub struct HistoryStore {
    inner: Arc<RwLock<BTreeMap<ProblemId, Vec<AdministrationStats>>>>,
}

impl HistoryStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends every question of an analysis as a new administration.
    pub fn record_analysis(&self, analysis: &ExamAnalysis) {
        let mut inner = self.inner.write();
        for question in &analysis.questions {
            let entries = inner.entry(question.indices.problem.clone()).or_default();
            entries.push(AdministrationStats {
                sequence: entries.len() as u64,
                class_size: analysis.statistics.class_size,
                difficulty: question.indices.difficulty.value(),
                discrimination: question.indices.discrimination.value(),
            });
        }
    }

    /// The administrations of one problem, oldest first.
    #[must_use]
    pub fn history(&self, problem: &ProblemId) -> Vec<AdministrationStats> {
        self.inner.read().get(problem).cloned().unwrap_or_default()
    }

    /// Number of problems with any history.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Trend of the difficulty index: compares the latest administration
    /// against the mean of all earlier ones, with `tolerance` as the
    /// dead band (e.g. 0.1).
    #[must_use]
    pub fn difficulty_trend(&self, problem: &ProblemId, tolerance: f64) -> Trend {
        self.trend_of(problem, tolerance, |s| s.difficulty)
    }

    /// Trend of the discrimination index (same comparison rule).
    #[must_use]
    pub fn discrimination_trend(&self, problem: &ProblemId, tolerance: f64) -> Trend {
        self.trend_of(problem, tolerance, |s| s.discrimination)
    }

    fn trend_of(
        &self,
        problem: &ProblemId,
        tolerance: f64,
        value: impl Fn(&AdministrationStats) -> f64,
    ) -> Trend {
        let history = self.history(problem);
        if history.len() < 2 {
            return Trend::Insufficient;
        }
        let (earlier, latest) = history.split_at(history.len() - 1);
        let baseline = earlier.iter().map(&value).sum::<f64>() / earlier.len() as f64;
        let delta = value(&latest[0]) - baseline;
        if delta > tolerance {
            Trend::Rising
        } else if delta < -tolerance {
            Trend::Falling
        } else {
            Trend::Stable
        }
    }

    /// Problems whose difficulty rose beyond `tolerance` on the latest
    /// administration — candidates for leak/staleness review.
    #[must_use]
    pub fn drifting_easier(&self, tolerance: f64) -> Vec<ProblemId> {
        self.inner
            .read()
            .keys()
            .filter(|problem| self.difficulty_trend(problem, tolerance) == Trend::Rising)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_analysis::AnalysisConfig;
    use mine_core::OptionKey;
    use mine_itembank::{ChoiceOption, Exam, Problem};
    use mine_simulator::{CohortSpec, ItemParams, Simulation};

    fn analysis(ability: f64, seed: u64) -> ExamAnalysis {
        let problems: Vec<Problem> = (0..4)
            .map(|i| {
                Problem::multiple_choice(
                    format!("q{i}"),
                    format!("Q{i}"),
                    OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("{k}"))),
                    OptionKey::A,
                )
                .unwrap()
            })
            .collect();
        let mut builder = Exam::builder("hist").unwrap();
        for i in 0..4 {
            builder = builder.entry(format!("q{i}").parse().unwrap());
        }
        let mut simulation = Simulation::new(builder.build().unwrap(), problems.clone())
            .cohort(CohortSpec::new(120).ability(ability, 0.5).seed(seed));
        for i in 0..4 {
            simulation = simulation.item_params(
                format!("q{i}").parse().unwrap(),
                ItemParams::multiple_choice(1.2, 0.0, 4),
            );
        }
        let record = simulation.run().unwrap();
        ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default()).unwrap()
    }

    #[test]
    fn records_accumulate_in_sequence() {
        let store = HistoryStore::new();
        store.record_analysis(&analysis(0.0, 1));
        store.record_analysis(&analysis(0.0, 2));
        let history = store.history(&"q0".parse().unwrap());
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].sequence, 0);
        assert_eq!(history[1].sequence, 1);
        assert_eq!(history[0].class_size, 120);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn single_administration_is_insufficient() {
        let store = HistoryStore::new();
        store.record_analysis(&analysis(0.0, 1));
        assert_eq!(
            store.difficulty_trend(&"q0".parse().unwrap(), 0.1),
            Trend::Insufficient
        );
        assert_eq!(
            store.difficulty_trend(&"ghost".parse().unwrap(), 0.1),
            Trend::Insufficient
        );
    }

    #[test]
    fn leaked_item_reads_as_rising_difficulty_index() {
        // Same items, but the second cohort is far stronger — as if the
        // answers leaked. P (ease) rises sharply.
        let store = HistoryStore::new();
        store.record_analysis(&analysis(-0.5, 1));
        store.record_analysis(&analysis(2.5, 2));
        let q0: ProblemId = "q0".parse().unwrap();
        assert_eq!(store.difficulty_trend(&q0, 0.1), Trend::Rising);
        assert!(!store.drifting_easier(0.1).is_empty());
    }

    #[test]
    fn comparable_cohorts_read_stable() {
        let store = HistoryStore::new();
        store.record_analysis(&analysis(0.0, 1));
        store.record_analysis(&analysis(0.0, 2));
        let q0: ProblemId = "q0".parse().unwrap();
        assert_eq!(store.difficulty_trend(&q0, 0.15), Trend::Stable);
    }

    #[test]
    fn falling_difficulty_detected() {
        let store = HistoryStore::new();
        store.record_analysis(&analysis(2.0, 1));
        store.record_analysis(&analysis(-2.0, 2));
        let q0: ProblemId = "q0".parse().unwrap();
        assert_eq!(store.difficulty_trend(&q0, 0.1), Trend::Falling);
        assert!(store.drifting_easier(0.1).is_empty());
    }

    #[test]
    fn clones_share_history() {
        let store = HistoryStore::new();
        store.clone().record_analysis(&analysis(0.0, 1));
        assert!(!store.is_empty());
    }
}
