//! Error type of the authoring facade.

use std::error::Error as StdError;
use std::fmt;

use mine_analysis::AnalysisError;
use mine_delivery::DeliveryError;
use mine_itembank::BankError;
use mine_qti::QtiError;
use mine_scorm::ScormError;

/// Errors surfaced by the authoring system.
#[derive(Debug)]
#[non_exhaustive]
pub enum AuthoringError {
    /// Item bank operation failed.
    Bank(BankError),
    /// SCORM packaging failed.
    Scorm(ScormError),
    /// QTI interchange failed.
    Qti(QtiError),
    /// Exam delivery failed.
    Delivery(DeliveryError),
    /// Analysis failed.
    Analysis(AnalysisError),
    /// A package to import collided with existing content.
    ImportConflict {
        /// What collided.
        reason: String,
    },
    /// The role policy denied the action.
    Forbidden(crate::roles::Denied),
}

impl fmt::Display for AuthoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthoringError::Bank(err) => write!(f, "item bank: {err}"),
            AuthoringError::Scorm(err) => write!(f, "scorm: {err}"),
            AuthoringError::Qti(err) => write!(f, "qti: {err}"),
            AuthoringError::Delivery(err) => write!(f, "delivery: {err}"),
            AuthoringError::Analysis(err) => write!(f, "analysis: {err}"),
            AuthoringError::ImportConflict { reason } => write!(f, "import conflict: {reason}"),
            AuthoringError::Forbidden(denied) => write!(f, "forbidden: {denied}"),
        }
    }
}

impl StdError for AuthoringError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            AuthoringError::Bank(err) => Some(err),
            AuthoringError::Scorm(err) => Some(err),
            AuthoringError::Qti(err) => Some(err),
            AuthoringError::Delivery(err) => Some(err),
            AuthoringError::Analysis(err) => Some(err),
            AuthoringError::ImportConflict { .. } => None,
            AuthoringError::Forbidden(denied) => Some(denied),
        }
    }
}

impl From<BankError> for AuthoringError {
    fn from(err: BankError) -> Self {
        AuthoringError::Bank(err)
    }
}

impl From<ScormError> for AuthoringError {
    fn from(err: ScormError) -> Self {
        AuthoringError::Scorm(err)
    }
}

impl From<QtiError> for AuthoringError {
    fn from(err: QtiError) -> Self {
        AuthoringError::Qti(err)
    }
}

impl From<DeliveryError> for AuthoringError {
    fn from(err: DeliveryError) -> Self {
        AuthoringError::Delivery(err)
    }
}

impl From<AnalysisError> for AuthoringError {
    fn from(err: AnalysisError) -> Self {
        AuthoringError::Analysis(err)
    }
}

impl From<crate::roles::Denied> for AuthoringError {
    fn from(denied: crate::roles::Denied) -> Self {
        AuthoringError::Forbidden(denied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_layer() {
        let bank: AuthoringError = BankError::NotFound {
            kind: "problem",
            id: "x".into(),
        }
        .into();
        assert!(bank.source().is_some());
        assert!(bank.to_string().starts_with("item bank"));
        let conflict = AuthoringError::ImportConflict {
            reason: "problem q1 exists".into(),
        };
        assert!(conflict.source().is_none());
        assert!(conflict.to_string().contains("q1"));
    }
}
