//! The SCORM-compatible external repository (§5).
//!
//! "In order to share the material of our problem and exam, our system
//! provides SCORM format package output service … Other instructors may
//! reuse the problem and exam files from SCORM compatible external
//! repository." This is that repository, simulated in-process: packages
//! travel as their file maps (exactly what would be zipped and uploaded),
//! so publishing and fetching exercise the full serialize → parse path.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use mine_scorm::{ContentPackage, ScormError};

/// A shared store of published SCORM packages.
#[derive(Debug, Clone, Default)]
pub struct ExternalRepository {
    packages: Arc<RwLock<BTreeMap<String, BTreeMap<String, String>>>>,
}

impl ExternalRepository {
    /// Creates an empty repository.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a package under a name. The package is stored as its
    /// file map — the wire format — and re-parsed on fetch.
    ///
    /// Republishing a name replaces the stored package.
    pub fn publish(&self, name: impl Into<String>, package: ContentPackage) {
        self.packages
            .write()
            .insert(name.into(), package.into_files());
    }

    /// Fetches and re-validates a package.
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::MissingManifest`] when the name is unknown,
    /// or any parse/validation error from the stored files.
    pub fn fetch(&self, name: &str) -> Result<ContentPackage, ScormError> {
        let files = self
            .packages
            .read()
            .get(name)
            .cloned()
            .ok_or(ScormError::MissingManifest)?;
        ContentPackage::from_files(files)
    }

    /// Names of all published packages.
    #[must_use]
    pub fn list(&self) -> Vec<String> {
        self.packages.read().keys().cloned().collect()
    }

    /// Removes a published package; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.packages.write().remove(name).is_some()
    }

    /// Number of published packages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.packages.read().len()
    }

    /// Whether the repository is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.packages.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_itembank::Problem;

    fn package() -> ContentPackage {
        ContentPackage::builder("PKG-1")
            .problem(Problem::true_false("q1", "shared?", true).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn publish_fetch_round_trip() {
        let repo = ExternalRepository::new();
        repo.publish("networking-quiz", package());
        assert_eq!(repo.list(), vec!["networking-quiz".to_string()]);
        let fetched = repo.fetch("networking-quiz").unwrap();
        assert_eq!(fetched.manifest.identifier, "PKG-1");
        assert_eq!(fetched.extract_problems().unwrap().len(), 1);
    }

    #[test]
    fn unknown_name_errors() {
        let repo = ExternalRepository::new();
        assert!(matches!(
            repo.fetch("ghost"),
            Err(ScormError::MissingManifest)
        ));
    }

    #[test]
    fn republish_replaces() {
        let repo = ExternalRepository::new();
        repo.publish("quiz", package());
        let other = ContentPackage::builder("PKG-2")
            .problem(Problem::true_false("q2", "other", false).unwrap())
            .build()
            .unwrap();
        repo.publish("quiz", other);
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.fetch("quiz").unwrap().manifest.identifier, "PKG-2");
    }

    #[test]
    fn remove_and_empty() {
        let repo = ExternalRepository::new();
        assert!(repo.is_empty());
        repo.publish("quiz", package());
        assert!(repo.remove("quiz"));
        assert!(!repo.remove("quiz"));
        assert!(repo.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let repo = ExternalRepository::new();
        repo.clone().publish("quiz", package());
        assert_eq!(repo.len(), 1);
    }
}
