//! The assessment authoring system (§5) — the facade over the whole
//! workspace.
//!
//! The paper's architecture (Figure 3's surrounding text) names the
//! pieces: "assessment authoring system includes problem search, exam
//! authoring, problem authoring and SCORM format output service. Another
//! one is on-line exam monitor subsystem … Authors, instructors and
//! tutors use the assessment authoring system to edit problems or exam …
//! Administrator control the database … Learners take the exam."
//!
//! [`AuthoringSystem`] wires those pieces together over the
//! [`mine_itembank::Repository`]:
//!
//! * problem/exam/template authoring with validation and audit trail,
//! * problem search and similar-problem lookup,
//! * SCORM format output service + a simulated
//!   [`ExternalRepository`] for package exchange,
//! * QTI export/import,
//! * exam delivery with the monitor subsystem attached,
//! * the analysis loop: run the §4 model and write the measured
//!   difficulty/discrimination back into problem metadata.
//!
//! # Examples
//!
//! ```
//! use mine_authoring::AuthoringSystem;
//! use mine_itembank::Problem;
//!
//! let system = AuthoringSystem::new();
//! system.author_problem(
//!     "hung",
//!     Problem::true_false("q1", "SCORM is an ADL standard.", true)?,
//! )?;
//! assert_eq!(system.repository().problem_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod error;
pub mod external;
pub mod history;
pub mod roles;
pub mod system;

pub use audit::{AuditEntry, AuditLog};
pub use error::AuthoringError;
pub use external::ExternalRepository;
pub use history::{AdministrationStats, HistoryStore, Trend};
pub use roles::{Action, Denied, Role, RolePolicy};
pub use system::{AuthoringSystem, ImportReport};
