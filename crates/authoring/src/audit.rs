//! The audit trail: who did what in the authoring system.
//!
//! The paper distinguishes authors, instructors, tutors, administrators
//! and learners (§5); the audit log records each actor's mutating
//! actions so an administrator "controls the database" with visibility.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One recorded action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Who acted (free-form actor name).
    pub actor: String,
    /// The action verb (e.g. `author-problem`, `export-scorm`).
    pub action: String,
    /// The entity acted on.
    pub target: String,
}

/// A shared, append-only audit log.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    entries: Arc<Mutex<Vec<AuditEntry>>>,
}

impl AuditLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry, returning its sequence number.
    pub fn record(
        &self,
        actor: impl Into<String>,
        action: impl Into<String>,
        target: impl Into<String>,
    ) -> u64 {
        let mut entries = self.entries.lock();
        let seq = entries.len() as u64;
        entries.push(AuditEntry {
            seq,
            actor: actor.into(),
            action: action.into(),
            target: target.into(),
        });
        seq
    }

    /// A snapshot of all entries.
    #[must_use]
    pub fn entries(&self) -> Vec<AuditEntry> {
        self.entries.lock().clone()
    }

    /// Entries by one actor.
    #[must_use]
    pub fn by_actor(&self, actor: &str) -> Vec<AuditEntry> {
        self.entries
            .lock()
            .iter()
            .filter(|e| e.actor == actor)
            .cloned()
            .collect()
    }

    /// Number of recorded entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_monotonic() {
        let log = AuditLog::new();
        assert_eq!(log.record("hung", "author-problem", "q1"), 0);
        assert_eq!(log.record("lin", "author-exam", "midterm"), 1);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn by_actor_filters() {
        let log = AuditLog::new();
        log.record("hung", "a", "x");
        log.record("lin", "b", "y");
        log.record("hung", "c", "z");
        let entries = log.by_actor("hung");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].action, "c");
    }

    #[test]
    fn clones_share_the_log() {
        let log = AuditLog::new();
        let clone = log.clone();
        clone.record("admin", "delete-problem", "q9");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn concurrent_appends_do_not_lose_entries() {
        let log = AuditLog::new();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        log.record(format!("actor{t}"), "act", format!("target{i}"));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(log.len(), 400);
        // Sequence numbers are unique.
        let mut seqs: Vec<u64> = log.entries().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 400);
    }
}
