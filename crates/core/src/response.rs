//! Answer and response records flowing from delivery into analysis.
//!
//! A completed exam produces one [`StudentRecord`] per learner; the set of
//! records for a class is an [`ExamRecord`], the input to the paper's
//! analysis model (§4).

use std::fmt;
use std::str::FromStr;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::id::{ExamId, ProblemId, StudentId};

/// A choice-option key: `A`, `B`, `C`, …
///
/// The paper's option matrices (Table 1) use five options `A`–`E`; the
/// type supports up to `Z` so larger multiple-choice items still work.
///
/// # Examples
///
/// ```
/// use mine_core::OptionKey;
///
/// assert_eq!(OptionKey::from_index(2).unwrap(), OptionKey::C);
/// assert_eq!(OptionKey::E.index(), 4);
/// assert_eq!("D".parse::<OptionKey>().unwrap(), OptionKey::D);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct OptionKey(u8);

impl OptionKey {
    /// Option `A` (index 0).
    pub const A: OptionKey = OptionKey(0);
    /// Option `B` (index 1).
    pub const B: OptionKey = OptionKey(1);
    /// Option `C` (index 2).
    pub const C: OptionKey = OptionKey(2);
    /// Option `D` (index 3).
    pub const D: OptionKey = OptionKey(3);
    /// Option `E` (index 4).
    pub const E: OptionKey = OptionKey(4);

    /// Highest supported zero-based index (`Z` = 25).
    pub const MAX_INDEX: usize = 25;

    /// Builds a key from a zero-based index.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptionKey`] when `index > 25`.
    pub fn from_index(index: usize) -> Result<Self, CoreError> {
        if index <= Self::MAX_INDEX {
            Ok(Self(index as u8))
        } else {
            Err(CoreError::InvalidOptionKey(index.to_string()))
        }
    }

    /// Builds a key from its letter (`'A'`–`'Z'`, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptionKey`] for non-letters.
    pub fn from_letter(letter: char) -> Result<Self, CoreError> {
        let upper = letter.to_ascii_uppercase();
        if upper.is_ascii_uppercase() {
            Ok(Self(upper as u8 - b'A'))
        } else {
            Err(CoreError::InvalidOptionKey(letter.to_string()))
        }
    }

    /// Zero-based index of the option.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Letter of the option (`'A'`…).
    #[must_use]
    pub fn letter(self) -> char {
        (b'A' + self.0) as char
    }

    /// Iterates over the first `count` option keys (`A`, `B`, …).
    ///
    /// # Panics
    ///
    /// Panics if `count > 26`.
    pub fn first(count: usize) -> impl Iterator<Item = OptionKey> {
        assert!(count <= Self::MAX_INDEX + 1, "at most 26 options supported");
        (0..count).map(|i| OptionKey(i as u8))
    }
}

impl fmt::Display for OptionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

impl FromStr for OptionKey {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut chars = s.trim().chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Self::from_letter(c),
            _ => Err(CoreError::InvalidOptionKey(s.to_string())),
        }
    }
}

impl TryFrom<String> for OptionKey {
    type Error = CoreError;

    fn try_from(value: String) -> Result<Self, Self::Error> {
        value.parse()
    }
}

impl From<OptionKey> for String {
    fn from(key: OptionKey) -> String {
        key.letter().to_string()
    }
}

/// A learner's answer to one problem.
///
/// Variants mirror the paper's question styles (§3.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Answer {
    /// A selected option of a multiple-choice problem.
    Choice(OptionKey),
    /// Several selected options (multiple-response problems).
    MultiChoice(Vec<OptionKey>),
    /// A true/false judgement.
    TrueFalse(bool),
    /// Free text for essay or short-answer problems.
    Text(String),
    /// Blank values for completion (fill-in / cloze) problems, in blank order.
    Completion(Vec<String>),
    /// Pairings for match problems: `matches[i]` is the chosen right-hand
    /// index for left-hand entry `i`.
    Match(Vec<usize>),
    /// The learner skipped the problem.
    Skipped,
}

impl Answer {
    /// Whether the learner actually attempted the problem.
    #[must_use]
    pub fn is_attempted(&self) -> bool {
        !matches!(self, Answer::Skipped)
    }

    /// The chosen option, when the answer is a single choice.
    #[must_use]
    pub fn chosen_option(&self) -> Option<OptionKey> {
        match self {
            Answer::Choice(key) => Some(*key),
            _ => None,
        }
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Answer::Choice(key) => write!(f, "choice {key}"),
            Answer::MultiChoice(keys) => {
                write!(f, "choices ")?;
                for (i, key) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{key}")?;
                }
                Ok(())
            }
            Answer::TrueFalse(value) => write!(f, "{value}"),
            Answer::Text(text) => write!(f, "text {text:?}"),
            Answer::Completion(blanks) => write!(f, "completion {blanks:?}"),
            Answer::Match(pairs) => write!(f, "match {pairs:?}"),
            Answer::Skipped => write!(f, "skipped"),
        }
    }
}

/// One graded response to one problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemResponse {
    /// The problem answered.
    pub problem: ProblemId,
    /// What the learner answered.
    pub answer: Answer,
    /// Whether the grader judged the answer correct.
    pub is_correct: bool,
    /// Points awarded by the grader.
    pub points_awarded: f64,
    /// Maximum points the problem is worth.
    pub points_possible: f64,
    /// Time the learner spent on this problem.
    pub time_spent: Duration,
    /// Offset from exam start at which the answer was committed, if known.
    pub answered_at: Option<Duration>,
}

impl ItemResponse {
    /// Builds a correct full-credit response (test/simulation helper).
    #[must_use]
    pub fn correct(problem: ProblemId, answer: Answer, points: f64) -> Self {
        Self {
            problem,
            answer,
            is_correct: true,
            points_awarded: points,
            points_possible: points,
            time_spent: Duration::ZERO,
            answered_at: None,
        }
    }

    /// Builds an incorrect zero-credit response (test/simulation helper).
    #[must_use]
    pub fn incorrect(problem: ProblemId, answer: Answer, points_possible: f64) -> Self {
        Self {
            problem,
            answer,
            is_correct: false,
            points_awarded: 0.0,
            points_possible,
            time_spent: Duration::ZERO,
            answered_at: None,
        }
    }
}

/// All of one student's graded responses for one exam sitting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudentRecord {
    /// The learner.
    pub student: StudentId,
    /// Graded responses in presentation order.
    pub responses: Vec<ItemResponse>,
    /// Total wall-clock time of the sitting.
    pub total_time: Duration,
}

impl StudentRecord {
    /// Creates a record; `total_time` defaults to the sum of per-item times.
    #[must_use]
    pub fn new(student: StudentId, responses: Vec<ItemResponse>) -> Self {
        let total_time = responses.iter().map(|r| r.time_spent).sum();
        Self {
            student,
            responses,
            total_time,
        }
    }

    /// Total points awarded across all responses.
    #[must_use]
    pub fn score(&self) -> f64 {
        self.responses.iter().map(|r| r.points_awarded).sum()
    }

    /// Total points possible across all responses.
    #[must_use]
    pub fn max_score(&self) -> f64 {
        self.responses.iter().map(|r| r.points_possible).sum()
    }

    /// Number of responses judged correct.
    #[must_use]
    pub fn correct_count(&self) -> usize {
        self.responses.iter().filter(|r| r.is_correct).count()
    }

    /// Number of attempted (non-skipped) responses.
    #[must_use]
    pub fn attempted_count(&self) -> usize {
        self.responses
            .iter()
            .filter(|r| r.answer.is_attempted())
            .count()
    }

    /// Looks up the response to a particular problem.
    #[must_use]
    pub fn response_to(&self, problem: &ProblemId) -> Option<&ItemResponse> {
        self.responses.iter().find(|r| &r.problem == problem)
    }
}

/// The whole class's records for one exam — the unit the analysis model
/// consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExamRecord {
    /// Which exam was sat.
    pub exam: ExamId,
    /// One record per learner.
    pub students: Vec<StudentRecord>,
}

impl ExamRecord {
    /// Creates an exam record.
    #[must_use]
    pub fn new(exam: ExamId, students: Vec<StudentRecord>) -> Self {
        Self { exam, students }
    }

    /// Number of learners in the record.
    #[must_use]
    pub fn class_size(&self) -> usize {
        self.students.len()
    }

    /// Validates internal consistency: every student answered the same set
    /// of problems, no duplicate students.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InconsistentRecord`] describing the first
    /// violation found.
    pub fn validate(&self) -> Result<(), CoreError> {
        let mut seen = std::collections::HashSet::new();
        for record in &self.students {
            if !seen.insert(&record.student) {
                return Err(CoreError::InconsistentRecord(format!(
                    "duplicate student {}",
                    record.student
                )));
            }
        }
        if let Some(first) = self.students.first() {
            let reference: Vec<_> = first.responses.iter().map(|r| &r.problem).collect();
            for record in &self.students[1..] {
                let mut problems: Vec<_> = record.responses.iter().map(|r| &r.problem).collect();
                let mut expect = reference.clone();
                problems.sort();
                expect.sort();
                if problems != expect {
                    return Err(CoreError::InconsistentRecord(format!(
                        "student {} answered a different problem set",
                        record.student
                    )));
                }
            }
        }
        Ok(())
    }

    /// The distinct problems of the exam, in the first student's order.
    #[must_use]
    pub fn problems(&self) -> Vec<ProblemId> {
        self.students
            .first()
            .map(|s| s.responses.iter().map(|r| r.problem.clone()).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(s: &str) -> ProblemId {
        ProblemId::new(s).unwrap()
    }

    fn sid(s: &str) -> StudentId {
        StudentId::new(s).unwrap()
    }

    #[test]
    fn option_key_letters_and_indices() {
        assert_eq!(OptionKey::A.letter(), 'A');
        assert_eq!(OptionKey::E.index(), 4);
        assert_eq!(OptionKey::from_letter('z').unwrap().index(), 25);
        assert!(OptionKey::from_index(26).is_err());
        assert!(OptionKey::from_letter('3').is_err());
    }

    #[test]
    fn option_key_first_yields_prefix() {
        let keys: Vec<_> = OptionKey::first(5).collect();
        assert_eq!(
            keys,
            vec![
                OptionKey::A,
                OptionKey::B,
                OptionKey::C,
                OptionKey::D,
                OptionKey::E
            ]
        );
    }

    #[test]
    #[should_panic(expected = "at most 26")]
    fn option_key_first_panics_past_alphabet() {
        let _ = OptionKey::first(27).count();
    }

    #[test]
    fn option_key_parse_round_trip() {
        for key in OptionKey::first(26) {
            let s = key.to_string();
            assert_eq!(s.parse::<OptionKey>().unwrap(), key);
        }
        assert!("AB".parse::<OptionKey>().is_err());
        assert!("".parse::<OptionKey>().is_err());
    }

    #[test]
    fn answer_attempted_and_chosen() {
        assert!(Answer::Choice(OptionKey::B).is_attempted());
        assert!(!Answer::Skipped.is_attempted());
        assert_eq!(
            Answer::Choice(OptionKey::B).chosen_option(),
            Some(OptionKey::B)
        );
        assert_eq!(Answer::TrueFalse(true).chosen_option(), None);
    }

    #[test]
    fn answer_display_is_never_empty() {
        let answers = [
            Answer::Choice(OptionKey::A),
            Answer::MultiChoice(vec![OptionKey::A, OptionKey::C]),
            Answer::TrueFalse(false),
            Answer::Text("essay".into()),
            Answer::Completion(vec!["tcp".into()]),
            Answer::Match(vec![1, 0]),
            Answer::Skipped,
        ];
        for answer in answers {
            assert!(!answer.to_string().is_empty());
        }
    }

    #[test]
    fn student_record_scores() {
        let record = StudentRecord::new(
            sid("s1"),
            vec![
                ItemResponse::correct(pid("q1"), Answer::Choice(OptionKey::A), 2.0),
                ItemResponse::incorrect(pid("q2"), Answer::Choice(OptionKey::B), 3.0),
                ItemResponse::incorrect(pid("q3"), Answer::Skipped, 1.0),
            ],
        );
        assert_eq!(record.score(), 2.0);
        assert_eq!(record.max_score(), 6.0);
        assert_eq!(record.correct_count(), 1);
        assert_eq!(record.attempted_count(), 2);
        assert!(record.response_to(&pid("q2")).is_some());
        assert!(record.response_to(&pid("q9")).is_none());
    }

    #[test]
    fn total_time_defaults_to_sum_of_item_times() {
        let mut r1 = ItemResponse::correct(pid("q1"), Answer::TrueFalse(true), 1.0);
        r1.time_spent = Duration::from_secs(30);
        let mut r2 = ItemResponse::incorrect(pid("q2"), Answer::TrueFalse(false), 1.0);
        r2.time_spent = Duration::from_secs(45);
        let record = StudentRecord::new(sid("s"), vec![r1, r2]);
        assert_eq!(record.total_time, Duration::from_secs(75));
    }

    #[test]
    fn exam_record_validate_catches_duplicates() {
        let mk = |name: &str| {
            StudentRecord::new(
                sid(name),
                vec![ItemResponse::correct(
                    pid("q1"),
                    Answer::TrueFalse(true),
                    1.0,
                )],
            )
        };
        let good = ExamRecord::new(ExamId::new("e").unwrap(), vec![mk("a"), mk("b")]);
        assert!(good.validate().is_ok());
        let bad = ExamRecord::new(ExamId::new("e").unwrap(), vec![mk("a"), mk("a")]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn exam_record_validate_catches_mismatched_problem_sets() {
        let a = StudentRecord::new(
            sid("a"),
            vec![ItemResponse::correct(
                pid("q1"),
                Answer::TrueFalse(true),
                1.0,
            )],
        );
        let b = StudentRecord::new(
            sid("b"),
            vec![ItemResponse::correct(
                pid("q2"),
                Answer::TrueFalse(true),
                1.0,
            )],
        );
        let record = ExamRecord::new(ExamId::new("e").unwrap(), vec![a, b]);
        assert!(record.validate().is_err());
    }

    #[test]
    fn exam_record_same_problems_different_order_is_consistent() {
        let a = StudentRecord::new(
            sid("a"),
            vec![
                ItemResponse::correct(pid("q1"), Answer::TrueFalse(true), 1.0),
                ItemResponse::correct(pid("q2"), Answer::TrueFalse(true), 1.0),
            ],
        );
        let b = StudentRecord::new(
            sid("b"),
            vec![
                ItemResponse::correct(pid("q2"), Answer::TrueFalse(true), 1.0),
                ItemResponse::correct(pid("q1"), Answer::TrueFalse(true), 1.0),
            ],
        );
        let record = ExamRecord::new(ExamId::new("e").unwrap(), vec![a, b]);
        assert!(record.validate().is_ok());
        assert_eq!(record.problems(), vec![pid("q1"), pid("q2")]);
        assert_eq!(record.class_size(), 2);
    }

    #[test]
    fn empty_exam_record_is_valid_with_no_problems() {
        let record = ExamRecord::new(ExamId::new("e").unwrap(), vec![]);
        assert!(record.validate().is_ok());
        assert!(record.problems().is_empty());
    }
}
