//! Score-group fractions for high/low group splits (§4.1.1).
//!
//! The paper's single-question analysis sorts the class by total score and
//! takes the top and bottom `f` of students as the *high* and *low* score
//! groups. The paper fixes `f = 25 %`; it cites Kelly (1939) for the
//! optimum of 27 % and an acceptable band of 25–33 %.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// The fraction of the class placed in each of the high and low score
/// groups.
///
/// The value is validated on construction to lie in `(0, 0.5]` — any more
/// than half the class in each group would make the groups overlap.
///
/// # Examples
///
/// ```
/// use mine_core::GroupFraction;
///
/// let kelly = GroupFraction::KELLY_OPTIMAL;
/// assert_eq!(kelly.value(), 0.27);
/// assert!(kelly.is_acceptable());
///
/// // Each group of a 44-student class at the paper's 25 % holds 11 students.
/// assert_eq!(GroupFraction::PAPER.group_size(44), 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct GroupFraction(f64);

impl GroupFraction {
    /// The fraction the paper fixes: 25 %.
    pub const PAPER: GroupFraction = GroupFraction(0.25);

    /// Kelly's (1939) optimal fraction: 27 %.
    pub const KELLY_OPTIMAL: GroupFraction = GroupFraction(0.27);

    /// Lower edge of Kelly's acceptable band: 25 %.
    pub const ACCEPTABLE_MIN: GroupFraction = GroupFraction(0.25);

    /// Upper edge of Kelly's acceptable band: 33 %.
    pub const ACCEPTABLE_MAX: GroupFraction = GroupFraction(0.33);

    /// Creates a validated fraction.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidGroupFraction`] unless
    /// `0 < fraction <= 0.5` (NaN is rejected).
    pub fn new(fraction: f64) -> Result<Self, CoreError> {
        if fraction.is_finite() && fraction > 0.0 && fraction <= 0.5 {
            Ok(Self(fraction))
        } else {
            Err(CoreError::InvalidGroupFraction(fraction.into()))
        }
    }

    /// The raw fraction in `(0, 0.5]`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether the fraction falls in Kelly's acceptable 25–33 % band.
    #[must_use]
    pub fn is_acceptable(self) -> bool {
        (Self::ACCEPTABLE_MIN.0..=Self::ACCEPTABLE_MAX.0).contains(&self.0)
    }

    /// How many students land in each group for a class of `class_size`.
    ///
    /// The count is rounded to the nearest integer but always at least 1
    /// for a non-empty class, matching the paper's worked example where a
    /// 44-student class at 25 % yields groups of 11.
    #[must_use]
    pub fn group_size(self, class_size: usize) -> usize {
        if class_size == 0 {
            return 0;
        }
        let raw = (class_size as f64 * self.0).round() as usize;
        let half = (class_size / 2).max(1);
        raw.clamp(1, half).min(class_size)
    }
}

impl Default for GroupFraction {
    /// Defaults to the paper's 25 %.
    fn default() -> Self {
        Self::PAPER
    }
}

impl fmt::Display for GroupFraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}%", self.0 * 100.0)
    }
}

impl TryFrom<f64> for GroupFraction {
    type Error = CoreError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

impl From<GroupFraction> for f64 {
    fn from(fraction: GroupFraction) -> f64 {
        fraction.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_44_students_gives_groups_of_11() {
        assert_eq!(GroupFraction::PAPER.group_size(44), 11);
    }

    #[test]
    fn paper_example_40_students_gives_groups_of_10() {
        // Examples 1-4 in §4.1.2 assume high = low = 20 for an 80-student
        // class; at 25 % that is exactly 80 * 0.25 = 20.
        assert_eq!(GroupFraction::PAPER.group_size(80), 20);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(GroupFraction::new(0.0).is_err());
        assert!(GroupFraction::new(-0.1).is_err());
        assert!(GroupFraction::new(0.51).is_err());
        assert!(GroupFraction::new(f64::NAN).is_err());
        assert!(GroupFraction::new(f64::INFINITY).is_err());
        assert!(GroupFraction::new(0.5).is_ok());
        assert!(GroupFraction::new(1e-9).is_ok());
    }

    #[test]
    fn acceptable_band_matches_kelly() {
        assert!(GroupFraction::PAPER.is_acceptable());
        assert!(GroupFraction::KELLY_OPTIMAL.is_acceptable());
        assert!(GroupFraction::new(0.33).unwrap().is_acceptable());
        assert!(!GroupFraction::new(0.34).unwrap().is_acceptable());
        assert!(!GroupFraction::new(0.2).unwrap().is_acceptable());
    }

    #[test]
    fn group_size_never_exceeds_half_the_class() {
        for class in 1..200 {
            for f in [0.25, 0.27, 0.33, 0.5] {
                let size = GroupFraction::new(f).unwrap().group_size(class);
                assert!(size >= 1);
                assert!(size <= class.div_ceil(2), "class={class} f={f} size={size}");
            }
        }
    }

    #[test]
    fn group_size_of_empty_class_is_zero() {
        assert_eq!(GroupFraction::PAPER.group_size(0), 0);
    }

    #[test]
    fn display_shows_percentage() {
        assert_eq!(GroupFraction::KELLY_OPTIMAL.to_string(), "27%");
    }

    #[test]
    fn serde_rejects_invalid_fraction() {
        assert!(serde_json::from_str::<GroupFraction>("0.27").is_ok());
        assert!(serde_json::from_str::<GroupFraction>("0.75").is_err());
    }
}
