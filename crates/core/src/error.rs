//! The common error type shared across the workspace.

use std::error::Error as StdError;
use std::fmt;

/// Convenience alias for results whose error is [`CoreError`].
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// Errors raised by the core vocabulary types.
///
/// Higher-level crates define their own error enums and wrap `CoreError`
/// via `From` where they surface core validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A cognition level letter, name, or index was out of range.
    InvalidCognitionLevel(String),
    /// A group fraction was outside `(0, 0.5]`.
    InvalidGroupFraction(FloatBits),
    /// An option key index exceeded the supported alphabet (`A`–`Z`).
    InvalidOptionKey(String),
    /// An identifier was empty or contained forbidden characters.
    InvalidIdentifier {
        /// Which identifier type rejected the input.
        kind: &'static str,
        /// The offending input.
        value: String,
    },
    /// A response record was internally inconsistent.
    InconsistentRecord(String),
}

/// An `f64` stored by bit pattern so the error enum can be `Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloatBits(u64);

impl FloatBits {
    /// Wraps a float.
    #[must_use]
    pub fn new(value: f64) -> Self {
        Self(value.to_bits())
    }

    /// Recovers the float.
    #[must_use]
    pub fn value(self) -> f64 {
        f64::from_bits(self.0)
    }
}

impl From<f64> for FloatBits {
    fn from(value: f64) -> Self {
        Self::new(value)
    }
}

impl fmt::Display for FloatBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value())
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidCognitionLevel(input) => {
                write!(f, "invalid cognition level: {input:?}")
            }
            CoreError::InvalidGroupFraction(bits) => write!(
                f,
                "group fraction {bits} is outside the open-closed interval (0, 0.5]"
            ),
            CoreError::InvalidOptionKey(input) => write!(f, "invalid option key: {input:?}"),
            CoreError::InvalidIdentifier { kind, value } => {
                write!(f, "invalid {kind} identifier: {value:?}")
            }
            CoreError::InconsistentRecord(reason) => {
                write!(f, "inconsistent response record: {reason}")
            }
        }
    }
}

impl StdError for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_trailing_punctuation() {
        let errors = [
            CoreError::InvalidCognitionLevel("G".into()),
            CoreError::InvalidGroupFraction(0.9.into()),
            CoreError::InvalidOptionKey("?".into()),
            CoreError::InvalidIdentifier {
                kind: "problem",
                value: String::new(),
            },
            CoreError::InconsistentRecord("zero students".into()),
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(!text.ends_with('.'), "no trailing period: {text}");
            assert!(
                text.chars().next().unwrap().is_lowercase(),
                "starts lowercase: {text}"
            );
        }
    }

    #[test]
    fn float_bits_round_trips_including_nan() {
        assert_eq!(FloatBits::new(0.27).value(), 0.27);
        let nan = FloatBits::new(f64::NAN);
        assert!(nan.value().is_nan());
        assert_eq!(nan, FloatBits::new(f64::NAN));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: StdError + Send + Sync + 'static>() {}
        assert_traits::<CoreError>();
    }
}
