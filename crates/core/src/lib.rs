//! Shared vocabulary for the MINE cognition assessment system.
//!
//! This crate holds the types that every other crate in the workspace speaks:
//! identifiers, Bloom-taxonomy [`CognitionLevel`]s, answer/response records,
//! score-group fractions, and the common error type.
//!
//! The model follows Hung et al., *A Cognition Assessment Authoring System
//! for E-Learning* (ICDCS 2004 Workshops). Section references in the
//! documentation (e.g. "§3.1") point into that paper.
//!
//! # Examples
//!
//! ```
//! use mine_core::{CognitionLevel, GroupFraction, OptionKey};
//!
//! // Bloom's cognitive domain is ordered from Knowledge (A) to Evaluation (F).
//! assert!(CognitionLevel::Knowledge < CognitionLevel::Evaluation);
//! assert_eq!(CognitionLevel::Application.letter(), 'C');
//!
//! // The paper splits score groups at 25 %; Kelly (1939) recommends 27 %.
//! let paper = GroupFraction::PAPER;
//! assert!(paper.is_acceptable());
//! assert_eq!(OptionKey::A.letter(), 'A');
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cognition;
pub mod error;
pub mod fraction;
pub mod id;
pub mod response;
pub mod subject;

pub use cognition::CognitionLevel;
pub use error::{CoreError, Result};
pub use fraction::GroupFraction;
pub use id::{ConceptId, ExamId, GroupId, ProblemId, SessionId, StudentId, TemplateId};
pub use response::{Answer, ExamRecord, ItemResponse, OptionKey, StudentRecord};
pub use subject::{Concept, Subject};
