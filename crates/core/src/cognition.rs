//! Bloom's taxonomy of the cognitive domain (§3.1 of the paper).
//!
//! The paper adopts the six levels of Bloom's cognitive domain and names
//! them `A` through `F` in its two-way specification table (§4.2.2):
//! Knowledge, Comprehension, Application, Analysis, Synthesis, Evaluation.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// One of the six levels of Bloom's cognitive domain.
///
/// Levels are totally ordered from the shallowest ([`Knowledge`]) to the
/// deepest ([`Evaluation`]); the paper's whole-test analysis (§4.2.3) checks
/// that a well-formed exam asks *at least as many* questions at each
/// shallower level as at the next deeper one.
///
/// # Examples
///
/// ```
/// use mine_core::CognitionLevel;
///
/// let all: Vec<_> = CognitionLevel::ALL.to_vec();
/// assert_eq!(all.len(), 6);
/// assert_eq!(CognitionLevel::Knowledge.letter(), 'A');
/// assert_eq!("Synthesis".parse::<CognitionLevel>().unwrap(), CognitionLevel::Synthesis);
/// ```
///
/// [`Knowledge`]: CognitionLevel::Knowledge
/// [`Evaluation`]: CognitionLevel::Evaluation
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum CognitionLevel {
    /// Recall of facts and terminology (level `A`).
    #[default]
    Knowledge,
    /// Grasping the meaning of material (level `B`).
    Comprehension,
    /// Using learned material in new situations (level `C`).
    Application,
    /// Breaking material into its parts (level `D`).
    Analysis,
    /// Putting parts together into a new whole (level `E`).
    Synthesis,
    /// Judging the value of material (level `F`).
    Evaluation,
}

impl CognitionLevel {
    /// All six levels, ordered `A` → `F`.
    pub const ALL: [CognitionLevel; 6] = [
        CognitionLevel::Knowledge,
        CognitionLevel::Comprehension,
        CognitionLevel::Application,
        CognitionLevel::Analysis,
        CognitionLevel::Synthesis,
        CognitionLevel::Evaluation,
    ];

    /// The number of levels in the taxonomy.
    pub const COUNT: usize = 6;

    /// The single-letter code (`'A'`–`'F'`) used by the paper's two-way
    /// specification table (§4.2.2, definition 1).
    ///
    /// ```
    /// use mine_core::CognitionLevel;
    /// assert_eq!(CognitionLevel::Evaluation.letter(), 'F');
    /// ```
    #[must_use]
    pub fn letter(self) -> char {
        (b'A' + self.index() as u8) as char
    }

    /// Zero-based position of the level (`Knowledge` = 0 … `Evaluation` = 5).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a level from its zero-based index.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCognitionLevel`] when `index > 5`.
    pub fn from_index(index: usize) -> Result<Self, CoreError> {
        Self::ALL
            .get(index)
            .copied()
            .ok_or(CoreError::InvalidCognitionLevel(index.to_string()))
    }

    /// Builds a level from its letter code (`'A'`–`'F'`, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCognitionLevel`] for letters outside
    /// `A`–`F`.
    pub fn from_letter(letter: char) -> Result<Self, CoreError> {
        let upper = letter.to_ascii_uppercase();
        if !upper.is_ascii_uppercase() {
            return Err(CoreError::InvalidCognitionLevel(letter.to_string()));
        }
        Self::from_index((upper as u8).wrapping_sub(b'A') as usize)
            .map_err(|_| CoreError::InvalidCognitionLevel(letter.to_string()))
    }

    /// The next deeper level, or `None` at `Evaluation`.
    ///
    /// ```
    /// use mine_core::CognitionLevel;
    /// assert_eq!(
    ///     CognitionLevel::Knowledge.deeper(),
    ///     Some(CognitionLevel::Comprehension)
    /// );
    /// assert_eq!(CognitionLevel::Evaluation.deeper(), None);
    /// ```
    #[must_use]
    pub fn deeper(self) -> Option<Self> {
        Self::from_index(self.index() + 1).ok()
    }

    /// The next shallower level, or `None` at `Knowledge`.
    #[must_use]
    pub fn shallower(self) -> Option<Self> {
        self.index()
            .checked_sub(1)
            .and_then(|i| Self::from_index(i).ok())
    }

    /// The canonical English name used in the paper ("Knowledge", …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CognitionLevel::Knowledge => "Knowledge",
            CognitionLevel::Comprehension => "Comprehension",
            CognitionLevel::Application => "Application",
            CognitionLevel::Analysis => "Analysis",
            CognitionLevel::Synthesis => "Synthesis",
            CognitionLevel::Evaluation => "Evaluation",
        }
    }
}

impl fmt::Display for CognitionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CognitionLevel {
    type Err = CoreError;

    /// Parses either the full English name (case-insensitive) or the
    /// single-letter code.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        if trimmed.len() == 1 {
            return Self::from_letter(trimmed.chars().next().expect("len checked"));
        }
        Self::ALL
            .iter()
            .copied()
            .find(|level| level.name().eq_ignore_ascii_case(trimmed))
            .ok_or_else(|| CoreError::InvalidCognitionLevel(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_shallow_to_deep() {
        for pair in CognitionLevel::ALL.windows(2) {
            assert!(
                pair[0] < pair[1],
                "{:?} should precede {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn letters_span_a_to_f() {
        let letters: String = CognitionLevel::ALL.iter().map(|l| l.letter()).collect();
        assert_eq!(letters, "ABCDEF");
    }

    #[test]
    fn from_letter_accepts_lowercase() {
        assert_eq!(
            CognitionLevel::from_letter('d').unwrap(),
            CognitionLevel::Analysis
        );
    }

    #[test]
    fn from_letter_rejects_out_of_range() {
        assert!(CognitionLevel::from_letter('G').is_err());
        assert!(CognitionLevel::from_letter('1').is_err());
        assert!(CognitionLevel::from_letter('@').is_err());
    }

    #[test]
    fn from_index_round_trips() {
        for level in CognitionLevel::ALL {
            assert_eq!(CognitionLevel::from_index(level.index()).unwrap(), level);
        }
        assert!(CognitionLevel::from_index(6).is_err());
    }

    #[test]
    fn parse_full_names_case_insensitive() {
        assert_eq!(
            "comprehension".parse::<CognitionLevel>().unwrap(),
            CognitionLevel::Comprehension
        );
        assert_eq!(
            "  Evaluation ".parse::<CognitionLevel>().unwrap(),
            CognitionLevel::Evaluation
        );
        assert!("Remembering".parse::<CognitionLevel>().is_err());
    }

    #[test]
    fn deeper_and_shallower_walk_the_chain() {
        let mut level = CognitionLevel::Knowledge;
        let mut seen = vec![level];
        while let Some(next) = level.deeper() {
            seen.push(next);
            level = next;
        }
        assert_eq!(seen, CognitionLevel::ALL);
        assert_eq!(CognitionLevel::Knowledge.shallower(), None);
        assert_eq!(
            CognitionLevel::Evaluation.shallower(),
            Some(CognitionLevel::Synthesis)
        );
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(CognitionLevel::Synthesis.to_string(), "Synthesis");
    }

    #[test]
    fn serde_round_trip() {
        for level in CognitionLevel::ALL {
            let json = serde_json::to_string(&level).unwrap();
            let back: CognitionLevel = serde_json::from_str(&json).unwrap();
            assert_eq!(back, level);
        }
    }

    #[test]
    fn default_is_knowledge() {
        assert_eq!(CognitionLevel::default(), CognitionLevel::Knowledge);
    }
}
