//! Subjects and concepts: what a question is *about* (§3.3-II, §4.2.2).
//!
//! The paper attaches a *subject* to each question and organizes the
//! whole-test analysis around *concepts* — the rows of the two-way
//! specification table (Table 4).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::id::ConceptId;

/// The main subject a problem belongs to (§3.3-II).
///
/// A thin wrapper over a display string; unlike the identifiers it is not
/// validated, since it is descriptive free text.
///
/// # Examples
///
/// ```
/// use mine_core::Subject;
///
/// let subject = Subject::new("TCP congestion control");
/// assert_eq!(subject.as_str(), "TCP congestion control");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Subject(String);

impl Subject {
    /// Wraps a subject string.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The subject text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Subject {
    fn from(value: &str) -> Self {
        Self::new(value)
    }
}

impl From<String> for Subject {
    fn from(value: String) -> Self {
        Self(value)
    }
}

impl AsRef<str> for Subject {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A teachable concept: one row of the two-way specification table.
///
/// Concepts are numbered 1…i in the paper (§4.2.2, definition 2); here
/// they carry an identifier plus a human-readable name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Concept {
    /// Stable identifier used to correlate questions with table rows.
    pub id: ConceptId,
    /// Display name of the concept.
    pub name: String,
}

impl Concept {
    /// Creates a concept.
    #[must_use]
    pub fn new(id: ConceptId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
        }
    }
}

impl fmt::Display for Concept {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subject_round_trips() {
        let s = Subject::from("routing");
        assert_eq!(s.as_str(), "routing");
        assert_eq!(s.to_string(), "routing");
        assert_eq!(Subject::from(String::from("routing")), s);
    }

    #[test]
    fn subject_default_is_empty_but_debug_nonempty() {
        let s = Subject::default();
        assert_eq!(s.as_str(), "");
        assert_eq!(format!("{s:?}"), "Subject(\"\")");
    }

    #[test]
    fn concept_display_includes_id_and_name() {
        let c = Concept::new(ConceptId::new("c1").unwrap(), "Sliding windows");
        assert_eq!(c.to_string(), "Sliding windows (c1)");
    }
}
