//! Newtype identifiers for the entities of the assessment system.
//!
//! Every identifier is a validated, non-empty string wrapper. Using
//! distinct newtypes keeps a `ProblemId` from ever being passed where an
//! `ExamId` is expected (C-NEWTYPE).

use std::borrow::Borrow;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// Checks the shared identifier grammar: non-empty, no control characters,
/// at most 128 bytes.
fn validate(kind: &'static str, value: &str) -> Result<(), CoreError> {
    let ok = !value.is_empty() && value.len() <= 128 && !value.chars().any(char::is_control);
    if ok {
        Ok(())
    } else {
        Err(CoreError::InvalidIdentifier {
            kind,
            value: value.to_string(),
        })
    }
}

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident, $kind:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(try_from = "String", into = "String")]
        pub struct $name(String);

        impl $name {
            /// Creates a validated identifier.
            ///
            /// # Errors
            ///
            /// Returns [`CoreError::InvalidIdentifier`] when the input is
            /// empty, longer than 128 bytes, or contains control
            /// characters.
            pub fn new(value: impl Into<String>) -> Result<Self, CoreError> {
                let value = value.into();
                validate($kind, &value)?;
                Ok(Self(value))
            }

            /// The identifier as a string slice.
            #[must_use]
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// Consumes the identifier, returning the underlying `String`.
            #[must_use]
            pub fn into_inner(self) -> String {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl FromStr for $name {
            type Err = CoreError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                Self::new(s)
            }
        }

        impl TryFrom<String> for $name {
            type Error = CoreError;

            fn try_from(value: String) -> Result<Self, Self::Error> {
                Self::new(value)
            }
        }

        impl TryFrom<&str> for $name {
            type Error = CoreError;

            fn try_from(value: &str) -> Result<Self, Self::Error> {
                Self::new(value)
            }
        }

        impl From<$name> for String {
            fn from(id: $name) -> String {
                id.0
            }
        }
    };
}

string_id!(
    /// Identifies a problem (a single question) in the item bank.
    ProblemId,
    "problem"
);
string_id!(
    /// Identifies an exam (an ordered collection of problems).
    ExamId,
    "exam"
);
string_id!(
    /// Identifies a student (learner) taking exams.
    StudentId,
    "student"
);
string_id!(
    /// Identifies a live or resumable delivery session.
    SessionId,
    "session"
);
string_id!(
    /// Identifies a content concept row of the two-way specification table.
    ConceptId,
    "concept"
);
string_id!(
    /// Identifies a reusable problem presentation template (§5.3).
    TemplateId,
    "template"
);
string_id!(
    /// Identifies a presentation-style group in exam authoring (§5.4).
    GroupId,
    "group"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_reasonable_identifiers() {
        assert!(ProblemId::new("prob-001").is_ok());
        assert!(ExamId::new("midterm 2004 §1").is_ok());
        assert!(StudentId::new("学生42").is_ok());
    }

    #[test]
    fn rejects_empty() {
        let err = ProblemId::new("").unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidIdentifier {
                kind: "problem",
                ..
            }
        ));
    }

    #[test]
    fn rejects_control_characters() {
        assert!(SessionId::new("abc\n").is_err());
        assert!(SessionId::new("a\tb").is_err());
        assert!(SessionId::new("nul\0").is_err());
    }

    #[test]
    fn rejects_over_long() {
        let long = "x".repeat(129);
        assert!(ConceptId::new(long).is_err());
        assert!(ConceptId::new("x".repeat(128)).is_ok());
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just confirm the values
        // compare within a type.
        let a = TemplateId::new("t1").unwrap();
        let b = TemplateId::new("t1").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_and_as_str_agree() {
        let id = GroupId::new("layout-2col").unwrap();
        assert_eq!(id.to_string(), "layout-2col");
        assert_eq!(id.as_str(), "layout-2col");
        assert_eq!(id.clone().into_inner(), "layout-2col");
    }

    #[test]
    fn from_str_and_try_from_round_trip() {
        let id: ProblemId = "q7".parse().unwrap();
        assert_eq!(String::from(id.clone()), "q7");
        assert_eq!(ProblemId::try_from("q7").unwrap(), id);
    }

    #[test]
    fn serde_validates_on_deserialize() {
        assert!(serde_json::from_str::<ProblemId>("\"ok\"").is_ok());
        assert!(serde_json::from_str::<ProblemId>("\"\"").is_err());
    }
}
