//! Fault-injection tests: the store must survive exactly the failures
//! a production crash produces — torn tails, kill -9 mid-append,
//! compaction interrupted halfway — and must refuse to silently accept
//! the one failure a crash cannot produce: corruption in the middle of
//! committed history.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use mine_store::{AppendFault, EventStore, StoreError, StoreOptions, SyncPolicy};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mine-store-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Paths of every WAL segment in `dir`, sorted by first sequence.
fn segment_paths(dir: &Path) -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy();
            name.starts_with("wal-") && name.ends_with(".log")
        })
        .collect();
    paths.sort();
    paths
}

fn total_segment_bytes(dir: &Path) -> u64 {
    segment_paths(dir)
        .iter()
        .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum()
}

#[test]
fn torn_tail_is_truncated_with_warning_and_the_log_stays_appendable() {
    let dir = temp_dir("torn-tail");
    {
        let (store, _) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..3 {
            store.append(format!("intact-{i}").as_bytes()).unwrap();
        }
    }
    // Simulate a crash mid-append: a partial frame at the end.
    let segment = segment_paths(&dir).pop().unwrap();
    let intact_len = std::fs::metadata(&segment).unwrap().len();
    let mut bytes = std::fs::read(&segment).unwrap();
    bytes.extend_from_slice(&[0x2A; 7]); // half a header
    std::fs::write(&segment, &bytes).unwrap();

    let (store, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(recovered.events.len(), 3);
    assert_eq!(recovered.warnings.len(), 1, "{:?}", recovered.warnings);
    assert!(
        recovered.warnings[0].contains("torn tail"),
        "{:?}",
        recovered.warnings
    );
    assert_eq!(
        std::fs::metadata(&segment).unwrap().len(),
        intact_len,
        "torn bytes must be physically truncated"
    );
    assert_eq!(store.append(b"after-repair").unwrap(), 4);
    drop(store);

    // A second recovery is clean: the repair left no scar.
    let (_, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(recovered.events.len(), 4);
    assert!(recovered.warnings.is_empty(), "{:?}", recovered.warnings);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flipped_record_mid_stream_is_a_hard_corruption_error() {
    let dir = temp_dir("bit-flip-mid");
    {
        let (store, _) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..4 {
            store.append(format!("record-{i}").as_bytes()).unwrap();
        }
    }
    let segment = segment_paths(&dir).pop().unwrap();
    let mut bytes = std::fs::read(&segment).unwrap();
    bytes[20] ^= 0x40; // inside the first record's payload
    std::fs::write(&segment, &bytes).unwrap();

    match EventStore::open(&dir, StoreOptions::default()) {
        Err(StoreError::Corrupt { offset, reason, .. }) => {
            assert_eq!(offset, 0);
            assert!(reason.contains("CRC"), "{reason}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flipped_final_record_is_repaired_like_a_torn_write() {
    let dir = temp_dir("bit-flip-tail");
    {
        let (store, _) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..4 {
            store.append(format!("record-{i}").as_bytes()).unwrap();
        }
    }
    let segment = segment_paths(&dir).pop().unwrap();
    let mut bytes = std::fs::read(&segment).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&segment, &bytes).unwrap();

    let (_, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(
        recovered.events.len(),
        3,
        "the damaged final record is dropped"
    );
    assert_eq!(recovered.warnings.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corruption_in_an_earlier_segment_is_never_repaired() {
    let dir = temp_dir("early-segment");
    let options = StoreOptions {
        max_segment_bytes: 64,
        ..StoreOptions::default()
    };
    {
        let (store, _) = EventStore::open(&dir, options.clone()).unwrap();
        for i in 0..10 {
            store.append(format!("record-{i}").as_bytes()).unwrap();
        }
    }
    let segments = segment_paths(&dir);
    assert!(segments.len() > 1, "need rotation for this test");
    // Truncate the FIRST segment: this is mid-history damage even
    // though within its own file it looks like a torn tail.
    let first = &segments[0];
    let len = std::fs::metadata(first).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(first)
        .unwrap()
        .set_len(len - 3)
        .unwrap();
    assert!(matches!(
        EventStore::open(&dir, options),
        Err(StoreError::Corrupt { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_segments_left_by_interrupted_compaction_are_skipped() {
    let dir = temp_dir("stale-compaction");
    {
        let (store, _) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..5 {
            store.append(format!("old-{i}").as_bytes()).unwrap();
        }
        // Keep a copy of the pre-compaction segment, snapshot (which
        // deletes it), then put it back — exactly the directory a crash
        // between snapshot rename and segment cleanup leaves behind.
        let old_segment = segment_paths(&dir).pop().unwrap();
        let old_bytes = std::fs::read(&old_segment).unwrap();
        store.snapshot(b"compacted-state").unwrap();
        std::fs::write(&old_segment, &old_bytes).unwrap();
        store.append(b"new-after-snapshot").unwrap();
    }

    let (_, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(
        recovered.snapshot.as_ref().unwrap().payload,
        b"compacted-state"
    );
    let payloads: Vec<&[u8]> = recovered
        .events
        .iter()
        .map(|r| r.payload.as_slice())
        .collect();
    assert_eq!(payloads, [b"new-after-snapshot".as_slice()]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sequence_gaps_in_committed_history_are_corruption() {
    let dir = temp_dir("seq-gap");
    {
        let (store, _) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..3 {
            store.append(format!("record-{i}").as_bytes()).unwrap();
        }
    }
    // Delete the middle record by splicing the segment image: frames
    // stay individually valid but seq 2 vanishes.
    let segment = segment_paths(&dir).pop().unwrap();
    let bytes = std::fs::read(&segment).unwrap();
    let frame_len = bytes.len() / 3;
    let mut spliced = bytes[..frame_len].to_vec();
    spliced.extend_from_slice(&bytes[2 * frame_len..]);
    std::fs::write(&segment, &spliced).unwrap();

    match EventStore::open(&dir, StoreOptions::default()) {
        Err(StoreError::Corrupt { reason, .. }) => {
            assert!(reason.contains("sequence gap"), "{reason}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disk_full_mid_append_never_exposes_a_half_frame() {
    let dir = temp_dir("disk-full");
    // Fail the 4th append after 9 bytes — mid-header, the nastiest
    // possible torn write — under the *interval* policy so the failed
    // frame was never individually fsynced either.
    let options = StoreOptions {
        sync: SyncPolicy::Interval(Duration::from_millis(50)),
        append_fault: Some(AppendFault {
            at_seq: 4,
            partial_bytes: 9,
        }),
        ..StoreOptions::default()
    };
    let (store, _) = EventStore::open(&dir, options).unwrap();
    for i in 0..3 {
        store
            .append(format!("durable-{i}").as_bytes())
            .expect("appends before the fault succeed");
    }
    let err = store.append(b"lost-to-enospc").unwrap_err();
    assert!(matches!(err, StoreError::Io(_)), "typed I/O error: {err}");
    // The retried append heals the truncated tail first, then re-hits
    // the persistent seq-keyed fault: a fresh I/O error each time, and
    // still no half-frame sneaks past the damage.
    assert!(matches!(
        store.append(b"after-the-fault"),
        Err(StoreError::Io(_))
    ));
    drop(store);

    // What recovery sees is exactly what replication would stream: the
    // three intact records, contiguous from seq 1, no repair needed.
    let (store, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(
        recovered.events.iter().map(|r| r.seq).collect::<Vec<_>>(),
        [1, 2, 3]
    );
    assert!(
        recovered.warnings.is_empty(),
        "half-frame should have been truncated at fault time, not repaired at recovery: {:?}",
        recovered.warnings
    );
    // The segment file itself holds no trace of the failed append.
    let on_disk: u64 = total_segment_bytes(&dir);
    let intact: u64 = recovered
        .events
        .iter()
        .map(|r| (mine_store::frame::HEADER_BYTES + r.payload.len()) as u64)
        .sum();
    assert_eq!(on_disk, intact, "no partial bytes beyond the intact frames");
    // And the reopened store resumes the sequence with no gap.
    assert_eq!(store.append(b"resumed").unwrap(), 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Re-exec helper: when `MINE_STORE_CRASH_DIR` is set this "test" is a
/// child process that appends records as fast as it can until its
/// parent kills it with SIGKILL. Without the variable it is a no-op.
#[test]
fn crash_child_appender() {
    let Some(dir) = std::env::var_os("MINE_STORE_CRASH_DIR") else {
        return;
    };
    let options = StoreOptions {
        // Small segments so the crash run exercises rotation too; the
        // OS page cache survives a process kill, so `Never` still
        // persists every completed write() while maximizing the chance
        // the kill lands mid-frame.
        sync: SyncPolicy::Never,
        max_segment_bytes: 4096,
        ..StoreOptions::default()
    };
    let (store, _) = EventStore::open(PathBuf::from(dir), options).unwrap();
    loop {
        let seq = store.next_seq();
        store.append(format!("event-{seq}").as_bytes()).unwrap();
    }
}

#[test]
fn kill_nine_mid_append_recovers_an_intact_contiguous_prefix() {
    let dir = temp_dir("kill-nine");
    std::fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(exe)
        .args(["crash_child_appender", "--exact", "--nocapture"])
        .env("MINE_STORE_CRASH_DIR", &dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Let the child write a meaningful amount of log, then kill -9 it
    // mid-flight.
    let deadline = Instant::now() + Duration::from_secs(10);
    while total_segment_bytes(&dir) < 64 * 1024 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        total_segment_bytes(&dir) > 0,
        "child never wrote anything before the deadline"
    );
    child.kill().unwrap(); // SIGKILL on unix: no destructors, no flushes
    child.wait().unwrap();

    let options = StoreOptions {
        max_segment_bytes: 4096,
        ..StoreOptions::default()
    };
    let (store, recovered) = EventStore::open(&dir, options.clone()).unwrap();
    assert!(
        !recovered.events.is_empty(),
        "expected a recoverable prefix of the child's appends"
    );
    for (index, record) in recovered.events.iter().enumerate() {
        let seq = index as u64 + 1;
        assert_eq!(
            record.seq, seq,
            "sequence numbers must be contiguous from 1"
        );
        assert_eq!(
            record.payload,
            format!("event-{seq}").as_bytes(),
            "payload of seq {seq} must match what the child wrote"
        );
    }
    // The repaired log accepts new appends exactly where the child
    // stopped.
    let next = store.next_seq();
    assert_eq!(next, recovered.events.len() as u64 + 1);
    assert_eq!(store.append(b"post-crash").unwrap(), next);
    drop(store);

    // And a second recovery agrees with the first plus the new record.
    let (_, again) = EventStore::open(&dir, options).unwrap();
    assert!(again.warnings.is_empty(), "{:?}", again.warnings);
    assert_eq!(again.events.len(), recovered.events.len() + 1);
    assert_eq!(again.events[..recovered.events.len()], recovered.events[..]);
    std::fs::remove_dir_all(&dir).unwrap();
}
