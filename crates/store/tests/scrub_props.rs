//! Property tests for the scrub pass.
//!
//! Two guarantees anti-entropy leans on:
//!
//! 1. **No false positives** — a scrub over any journal produced purely
//!    by clean appends (whatever the payloads, segment size, or
//!    snapshot cadence) never reports corruption, online or offline. A
//!    scrubber that cried wolf would quarantine healthy history.
//! 2. **Range hashes are content hashes** — two journals hash equal iff
//!    their `(seq, payload)` ranges are byte-equal, independent of how
//!    the records happen to be cut into segments.

use proptest::prelude::*;

use mine_store::{scrub_dir, EventStore, StoreOptions};

fn temp_dir(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mine-scrub-prop-{tag}-{case}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build(dir: &std::path::Path, payloads: &[Vec<u8>], max_segment_bytes: u64, snapshot_at: usize) {
    let options = StoreOptions {
        max_segment_bytes,
        ..StoreOptions::default()
    };
    let (store, _) = EventStore::open(dir, options).unwrap();
    for (index, payload) in payloads.iter().enumerate() {
        store.append(payload).unwrap();
        if index + 1 == snapshot_at {
            store.snapshot(b"mid-run snapshot image").unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A journal written only by successful appends scrubs clean, both
    /// online (active segment excluded) and offline.
    #[test]
    fn clean_journals_never_report_corruption(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..40),
        max_segment_bytes in 48_u64..512,
        snapshot_at in 0_usize..40,
        case in any::<u64>(),
    ) {
        let dir = temp_dir("clean", case);
        let options = StoreOptions { max_segment_bytes, ..StoreOptions::default() };
        let (store, _) = EventStore::open(&dir, options).unwrap();
        for (index, payload) in payloads.iter().enumerate() {
            store.append(payload).unwrap();
            if index + 1 == snapshot_at {
                store.snapshot(b"mid-run snapshot image").unwrap();
            }
        }
        let online = scrub_dir(&dir, Some(&store.active_segment())).unwrap();
        prop_assert!(online.is_clean(), "online: {online:?}");
        drop(store);
        let offline = scrub_dir(&dir, None).unwrap();
        prop_assert!(offline.is_clean(), "offline: {offline:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Range hashes are equal iff the `(seq, payload)` history is
    /// byte-equal — even when the two journals cut that history into
    /// differently sized segments.
    #[test]
    fn range_hashes_equal_iff_ranges_byte_equal(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..32), 1..24),
        seg_a in 48_u64..512,
        seg_b in 48_u64..512,
        mutate in proptest::option::of((any::<u64>(), any::<u64>(), any::<u8>())),
        case in any::<u64>(),
    ) {
        let dir_a = temp_dir("eq-a", case);
        let dir_b = temp_dir("eq-b", case);
        build(&dir_a, &payloads, seg_a, 0);
        let mut altered = payloads.clone();
        let mut expect_equal = true;
        if let Some((record_pick, byte_pick, xor)) = mutate {
            let record = usize::try_from(record_pick).unwrap_or(usize::MAX) % altered.len();
            let byte = usize::try_from(byte_pick).unwrap_or(usize::MAX) % altered[record].len();
            if xor != 0 {
                altered[record][byte] ^= xor;
                expect_equal = false;
            }
        }
        build(&dir_b, &altered, seg_b, 0);
        let a = scrub_dir(&dir_a, None).unwrap();
        let b = scrub_dir(&dir_b, None).unwrap();
        prop_assert!(a.is_clean() && b.is_clean());
        prop_assert_eq!(a.ranges == b.ranges, expect_equal);
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }
}
