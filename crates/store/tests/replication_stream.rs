//! Property tests for the replication stream's integrity rules: any
//! dropped, duplicated, or reordered WAL record is rejected with a
//! typed error *before* it is applied — a follower either mirrors the
//! primary's history exactly or stops.

use proptest::prelude::*;

use mine_store::replicate::{read_message, Message};
use mine_store::{ReplError, StreamCursor};

/// Drives a cursor over a stream of sequence numbers the way the
/// follower does: admit each in order, apply only on success.
fn apply_stream(start: u64, seqs: &[u64]) -> (Vec<u64>, Option<ReplError>) {
    let mut cursor = StreamCursor::new(1, start);
    let mut applied = Vec::new();
    for &seq in seqs {
        match cursor.admit(seq) {
            Ok(()) => applied.push(seq),
            Err(err) => return (applied, Some(err)),
        }
    }
    (applied, None)
}

/// A mutation a faulty network (or buggy primary) could inflict on an
/// otherwise perfect stream.
#[derive(Debug, Clone)]
enum Corruption {
    /// Remove the record at this index.
    Drop(usize),
    /// Repeat the record at this index immediately.
    Duplicate(usize),
    /// Swap the records at this index and the next.
    Swap(usize),
}

fn arb_corruption(len: usize) -> impl Strategy<Value = Corruption> {
    // Swapping needs a successor; clamp indices into range.
    prop_oneof![
        (0..len).prop_map(Corruption::Drop),
        (0..len).prop_map(Corruption::Duplicate),
        (0..len.saturating_sub(1).max(1)).prop_map(Corruption::Swap),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// An intact contiguous stream is fully applied.
    #[test]
    fn intact_streams_apply_completely(start in 1_u64..1_000, len in 0_usize..64) {
        let seqs: Vec<u64> = (start..start + len as u64).collect();
        let (applied, err) = apply_stream(start, &seqs);
        prop_assert!(err.is_none(), "{err:?}");
        prop_assert_eq!(applied, seqs);
    }

    /// Every single-fault corruption of a contiguous stream is caught
    /// with the matching typed error, and nothing at or past the fault
    /// is ever applied.
    #[test]
    fn corrupted_streams_are_rejected_before_application(
        start in 1_u64..1_000,
        len in 2_usize..64,
        corruption in (2_usize..64).prop_flat_map(arb_corruption),
    ) {
        let seqs: Vec<u64> = (start..start + len as u64).collect();
        let mut stream = seqs.clone();
        let fault_index = match corruption {
            Corruption::Drop(i) => {
                // Dropping the *final* record leaves a shorter but still
                // contiguous stream — the gap only becomes observable
                // when a later record arrives — so drop a non-final one.
                let i = i % (len - 1);
                stream.remove(i);
                i
            }
            Corruption::Duplicate(i) => {
                let i = i % len;
                stream.insert(i + 1, stream[i]);
                i + 1
            }
            Corruption::Swap(i) => {
                let i = i % (len - 1);
                stream.swap(i, i + 1);
                i
            }
        };
        let (applied, err) = apply_stream(start, &stream);
        // The error is typed by the direction of the violation.
        match corruption {
            Corruption::Drop(_) => {
                prop_assert!(matches!(err, Some(ReplError::SequenceGap { .. })), "{err:?}");
            }
            Corruption::Duplicate(_) => {
                prop_assert!(matches!(err, Some(ReplError::DuplicateRecord { .. })), "{err:?}");
            }
            Corruption::Swap(_) => {
                // The first out-of-order record jumps ahead: a gap.
                prop_assert!(matches!(err, Some(ReplError::SequenceGap { .. })), "{err:?}");
            }
        }
        // Everything before the fault applied; the fault and everything
        // after it did not.
        prop_assert_eq!(applied.as_slice(), &stream[..fault_index]);
        prop_assert_eq!(applied.as_slice(), &seqs[..fault_index]);
    }

    /// Wire frames round-trip for arbitrary record payloads, and any
    /// single flipped bit is caught by the CRC before decoding.
    #[test]
    fn record_frames_round_trip_and_detect_bit_flips(
        seq in 0_u64..u64::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        flip_bit in 0_usize..128,
    ) {
        let message = Message::Record { seq, payload };
        let frame = message.encode();
        let decoded = read_message(&mut &frame[..]).unwrap();
        prop_assert_eq!(&decoded, &message);

        let mut damaged = frame.clone();
        let bit = flip_bit % (damaged.len() * 8);
        damaged[bit / 8] ^= 1 << (bit % 8);
        match read_message(&mut &damaged[..]) {
            // Flips in the length field may manifest as a short read /
            // oversize refusal; anywhere else the CRC catches it. A
            // flip must never decode into a *different* valid message.
            Ok(same) => prop_assert_eq!(same, message, "damaged frame decoded differently"),
            Err(ReplError::Frame { .. } | ReplError::Io(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }
}
