//! Property tests for the replication stream's integrity rules: any
//! dropped, duplicated, or reordered WAL record is rejected with a
//! typed error *before* it is applied — a follower either mirrors the
//! primary's history exactly or stops.

use proptest::prelude::*;

use mine_store::replicate::{read_message, write_message, Message, MAX_BODY_BYTES};
use mine_store::{ReplError, StreamCursor};

/// An arbitrary message of every protocol variant, with bounded
/// payloads and ASCII text fields.
fn arb_message() -> impl Strategy<Value = Message> {
    let bytes = || proptest::collection::vec(any::<u8>(), 0..256);
    let text = || {
        proptest::collection::vec(0_u8..26, 0..32).prop_map(|letters| {
            letters
                .into_iter()
                .map(|l| char::from(b'a' + l))
                .collect::<String>()
        })
    };
    prop_oneof![
        (0_u64..u64::MAX, 0_u64..u64::MAX).prop_map(|(epoch, last_applied)| Message::Hello {
            epoch,
            last_applied
        }),
        (0_u64..u64::MAX, text())
            .prop_map(|(epoch, advertise)| Message::Welcome { epoch, advertise }),
        text().prop_map(|reason| Message::Reject { reason }),
        (0_u64..u64::MAX, bytes())
            .prop_map(|(last_seq, payload)| Message::Snapshot { last_seq, payload }),
        (0_u64..u64::MAX, bytes()).prop_map(|(seq, payload)| Message::Record { seq, payload }),
        (0_u64..u64::MAX, 0_u64..u64::MAX)
            .prop_map(|(epoch, head_seq)| Message::Heartbeat { epoch, head_seq }),
        (0_u64..u64::MAX).prop_map(|seq| Message::Ack { seq }),
    ]
}

/// Drives a cursor over a stream of sequence numbers the way the
/// follower does: admit each in order, apply only on success.
fn apply_stream(start: u64, seqs: &[u64]) -> (Vec<u64>, Option<ReplError>) {
    let mut cursor = StreamCursor::new(1, start);
    let mut applied = Vec::new();
    for &seq in seqs {
        match cursor.admit(seq) {
            Ok(()) => applied.push(seq),
            Err(err) => return (applied, Some(err)),
        }
    }
    (applied, None)
}

/// A mutation a faulty network (or buggy primary) could inflict on an
/// otherwise perfect stream.
#[derive(Debug, Clone)]
enum Corruption {
    /// Remove the record at this index.
    Drop(usize),
    /// Repeat the record at this index immediately.
    Duplicate(usize),
    /// Swap the records at this index and the next.
    Swap(usize),
}

fn arb_corruption(len: usize) -> impl Strategy<Value = Corruption> {
    // Swapping needs a successor; clamp indices into range.
    prop_oneof![
        (0..len).prop_map(Corruption::Drop),
        (0..len).prop_map(Corruption::Duplicate),
        (0..len.saturating_sub(1).max(1)).prop_map(Corruption::Swap),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// An intact contiguous stream is fully applied.
    #[test]
    fn intact_streams_apply_completely(start in 1_u64..1_000, len in 0_usize..64) {
        let seqs: Vec<u64> = (start..start + len as u64).collect();
        let (applied, err) = apply_stream(start, &seqs);
        prop_assert!(err.is_none(), "{err:?}");
        prop_assert_eq!(applied, seqs);
    }

    /// Every single-fault corruption of a contiguous stream is caught
    /// with the matching typed error, and nothing at or past the fault
    /// is ever applied.
    #[test]
    fn corrupted_streams_are_rejected_before_application(
        start in 1_u64..1_000,
        len in 2_usize..64,
        corruption in (2_usize..64).prop_flat_map(arb_corruption),
    ) {
        let seqs: Vec<u64> = (start..start + len as u64).collect();
        let mut stream = seqs.clone();
        let fault_index = match corruption {
            Corruption::Drop(i) => {
                // Dropping the *final* record leaves a shorter but still
                // contiguous stream — the gap only becomes observable
                // when a later record arrives — so drop a non-final one.
                let i = i % (len - 1);
                stream.remove(i);
                i
            }
            Corruption::Duplicate(i) => {
                let i = i % len;
                stream.insert(i + 1, stream[i]);
                i + 1
            }
            Corruption::Swap(i) => {
                let i = i % (len - 1);
                stream.swap(i, i + 1);
                i
            }
        };
        let (applied, err) = apply_stream(start, &stream);
        // The error is typed by the direction of the violation.
        match corruption {
            Corruption::Drop(_) => {
                prop_assert!(matches!(err, Some(ReplError::SequenceGap { .. })), "{err:?}");
            }
            Corruption::Duplicate(_) => {
                prop_assert!(matches!(err, Some(ReplError::DuplicateRecord { .. })), "{err:?}");
            }
            Corruption::Swap(_) => {
                // The first out-of-order record jumps ahead: a gap.
                prop_assert!(matches!(err, Some(ReplError::SequenceGap { .. })), "{err:?}");
            }
        }
        // Everything before the fault applied; the fault and everything
        // after it did not.
        prop_assert_eq!(applied.as_slice(), &stream[..fault_index]);
        prop_assert_eq!(applied.as_slice(), &seqs[..fault_index]);
    }

    /// Wire frames round-trip for arbitrary record payloads, and any
    /// single flipped bit is caught by the CRC before decoding.
    #[test]
    fn record_frames_round_trip_and_detect_bit_flips(
        seq in 0_u64..u64::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        flip_bit in 0_usize..128,
    ) {
        let message = Message::Record { seq, payload };
        let frame = message.encode();
        let decoded = read_message(&mut &frame[..]).unwrap();
        prop_assert_eq!(&decoded, &message);

        let mut damaged = frame.clone();
        let bit = flip_bit % (damaged.len() * 8);
        damaged[bit / 8] ^= 1 << (bit % 8);
        match read_message(&mut &damaged[..]) {
            // Flips in the length field may manifest as a short read /
            // oversize refusal; anywhere else the CRC catches it. A
            // flip must never decode into a *different* valid message.
            Ok(same) => prop_assert_eq!(same, message, "damaged frame decoded differently"),
            Err(ReplError::Frame { .. } | ReplError::Io(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }

    /// Every protocol variant round-trips through the public
    /// `write_message`/`read_message` pair.
    #[test]
    fn every_message_variant_round_trips(message in arb_message()) {
        let mut wire = Vec::new();
        write_message(&mut wire, &message).unwrap();
        let decoded = read_message(&mut &wire[..]).unwrap();
        prop_assert_eq!(decoded, message);
    }

    /// A frame truncated at any point — mid-header, mid-body, anywhere —
    /// fails with a clean typed error, never a panic, and a reader fed
    /// only a finite prefix cannot hang.
    #[test]
    fn truncated_tails_fail_with_typed_errors(
        message in arb_message(),
        cut_fraction in 0.0_f64..1.0,
    ) {
        let mut wire = Vec::new();
        write_message(&mut wire, &message).unwrap();
        let cut = (((wire.len() as f64) * cut_fraction) as usize).min(wire.len() - 1);
        match read_message(&mut &wire[..cut]) {
            Err(ReplError::Io(err)) => {
                prop_assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
            }
            Err(ReplError::Frame { .. }) => {}
            Ok(decoded) => prop_assert!(false, "truncated frame decoded: {decoded:?}"),
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }

    /// A length prefix beyond `MAX_BODY_BYTES` is refused from the
    /// header alone — before any body allocation or read — whatever
    /// junk follows it.
    #[test]
    fn oversized_length_prefixes_are_refused_from_the_header(
        excess in 1_u64..u32::MAX as u64 - MAX_BODY_BYTES as u64,
        crc in 0_u32..u32::MAX,
        junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let len = (MAX_BODY_BYTES as u64 + excess) as u32;
        let mut wire = Vec::new();
        wire.extend_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(&crc.to_le_bytes());
        wire.extend_from_slice(&junk);
        match read_message(&mut &wire[..]) {
            Err(ReplError::Frame { reason }) => {
                prop_assert!(reason.contains("exceeds"), "{reason}");
            }
            other => prop_assert!(false, "expected Frame refusal, got {other:?}"),
        }
    }
}
