//! Record framing: `[len][crc32][seq][payload]`, little-endian.
//!
//! Every appended record travels in one frame:
//!
//! ```text
//! offset  size  field
//!      0     4  payload length (u32 LE)
//!      4     4  CRC-32/IEEE over seq ‖ payload (u32 LE)
//!      8     8  sequence number (u64 LE)
//!     16     n  payload bytes
//! ```
//!
//! The CRC covers the sequence number as well as the payload, so a
//! frame copied to the wrong position (or a stale block exposed by a
//! torn write) fails verification even when its payload is intact.
//!
//! [`scan`] walks a whole segment image and classifies the first
//! damaged frame as either *torn* (the damage reaches the end of the
//! segment — the signature of a crash mid-append, repairable by
//! truncation) or *mid-stream corruption* (a damaged frame with more
//! data after it — bit rot or tampering, never repaired silently).

/// Frame header size in bytes.
pub const HEADER_BYTES: usize = 16;

/// Largest accepted payload. Events are small; this bound keeps a
/// garbage length field from triggering a gigantic allocation.
pub const MAX_PAYLOAD_BYTES: usize = 16 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected, init `0xFFFF_FFFF`, final xor
/// `0xFFFF_FFFF`) — the polynomial used by zip, PNG, and Ethernet.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFF_u32;
    for &byte in bytes {
        let index = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[index];
    }
    crc ^ 0xFFFF_FFFF
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0_u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC over the fields the frame protects: sequence number ‖ payload.
fn frame_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut protected = Vec::with_capacity(8 + payload.len());
    protected.extend_from_slice(&seq.to_le_bytes());
    protected.extend_from_slice(payload);
    crc32(&protected)
}

/// Serializes one frame.
#[must_use]
pub fn encode(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&frame_crc(seq, payload).to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// One decoded frame plus where the next one starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The record's sequence number.
    pub seq: u64,
    /// The record payload.
    pub payload: Vec<u8>,
    /// Offset of the byte just past this frame.
    pub end_offset: u64,
}

/// How a scan of a segment image ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanEnd {
    /// Every byte decoded into valid frames.
    Clean,
    /// The damage reaches the end of the segment — the shape a crash
    /// mid-append leaves behind. Truncating at `offset` repairs it.
    Torn {
        /// Offset of the first damaged byte.
        offset: u64,
        /// What made the tail undecodable.
        reason: String,
    },
    /// A damaged frame with intact data after it: not a torn write.
    Corrupt {
        /// Offset of the damaged frame.
        offset: u64,
        /// What failed verification.
        reason: String,
    },
}

/// Decodes every frame in a segment image, stopping at the first
/// damage and classifying it (see [`ScanEnd`]).
#[must_use]
pub fn scan(bytes: &[u8]) -> (Vec<Frame>, ScanEnd) {
    let mut frames = Vec::new();
    let mut offset = 0_usize;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            return (frames, ScanEnd::Clean);
        }
        if remaining < HEADER_BYTES {
            return (
                frames,
                ScanEnd::Torn {
                    offset: offset as u64,
                    reason: format!("incomplete frame header ({remaining} bytes)"),
                },
            );
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let stored_crc =
            u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let seq = u64::from_le_bytes(bytes[offset + 8..offset + 16].try_into().expect("8 bytes"));
        if len > MAX_PAYLOAD_BYTES {
            // A garbage length field: unparseable from here on. A crash
            // can tear the header itself, so this is repaired like a
            // torn tail (any valid data beyond it is unreachable
            // anyway — there is no resynchronization point).
            return (
                frames,
                ScanEnd::Torn {
                    offset: offset as u64,
                    reason: format!(
                        "frame length {len} exceeds the {MAX_PAYLOAD_BYTES}-byte limit"
                    ),
                },
            );
        }
        if remaining - HEADER_BYTES < len {
            return (
                frames,
                ScanEnd::Torn {
                    offset: offset as u64,
                    reason: format!(
                        "incomplete frame payload ({} of {len} bytes)",
                        remaining - HEADER_BYTES
                    ),
                },
            );
        }
        let payload = &bytes[offset + HEADER_BYTES..offset + HEADER_BYTES + len];
        let end = offset + HEADER_BYTES + len;
        if frame_crc(seq, payload) != stored_crc {
            // A complete frame that fails its checksum. When it is the
            // very last frame it is indistinguishable from a torn final
            // write (the crash may have landed mid-payload with the
            // right total length), so it is repaired; anywhere else it
            // is mid-stream corruption and must be surfaced.
            let end_kind = if end == bytes.len() {
                ScanEnd::Torn {
                    offset: offset as u64,
                    reason: "final frame failed CRC verification".to_string(),
                }
            } else {
                ScanEnd::Corrupt {
                    offset: offset as u64,
                    reason: format!("frame seq {seq} failed CRC verification"),
                }
            };
            return (frames, end_kind);
        }
        frames.push(Frame {
            seq,
            payload: payload.to_vec(),
            end_offset: end as u64,
        });
        offset = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32/IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_scan_round_trip() {
        let mut image = Vec::new();
        image.extend_from_slice(&encode(1, b"alpha"));
        image.extend_from_slice(&encode(2, b""));
        image.extend_from_slice(&encode(3, &[0xFF; 300]));
        let (frames, end) = scan(&image);
        assert_eq!(end, ScanEnd::Clean);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].seq, 1);
        assert_eq!(frames[0].payload, b"alpha");
        assert_eq!(frames[1].payload, b"");
        assert_eq!(frames[2].payload.len(), 300);
        assert_eq!(frames[2].end_offset, image.len() as u64);
    }

    #[test]
    fn truncated_header_and_payload_are_torn() {
        let full = encode(7, b"record");
        for cut in [1, HEADER_BYTES - 1, HEADER_BYTES + 2] {
            let (frames, end) = scan(&full[..cut]);
            assert!(frames.is_empty());
            assert!(
                matches!(end, ScanEnd::Torn { offset: 0, .. }),
                "cut {cut}: {end:?}"
            );
        }
        // A torn tail after a valid frame keeps the valid prefix.
        let mut image = encode(1, b"keep");
        image.extend_from_slice(&full[..5]);
        let (frames, end) = scan(&image);
        assert_eq!(frames.len(), 1);
        let torn_at = (HEADER_BYTES + 4) as u64;
        assert!(matches!(end, ScanEnd::Torn { offset, .. } if offset == torn_at));
    }

    #[test]
    fn bit_flip_in_final_frame_is_torn_but_mid_stream_is_corrupt() {
        let mut image = Vec::new();
        image.extend_from_slice(&encode(1, b"first"));
        image.extend_from_slice(&encode(2, b"second"));
        // Flip a payload bit in the *final* frame: repairable.
        let mut tail_flipped = image.clone();
        let last = tail_flipped.len() - 1;
        tail_flipped[last] ^= 0x01;
        let (frames, end) = scan(&tail_flipped);
        assert_eq!(frames.len(), 1);
        assert!(matches!(end, ScanEnd::Torn { .. }), "{end:?}");
        // Flip the same record's payload when data follows it: corrupt.
        let mut mid_flipped = image.clone();
        mid_flipped[HEADER_BYTES] ^= 0x01; // first frame's payload
        let (frames, end) = scan(&mid_flipped);
        assert!(frames.is_empty());
        assert!(matches!(end, ScanEnd::Corrupt { offset: 0, .. }), "{end:?}");
    }

    #[test]
    fn seq_is_covered_by_the_checksum() {
        let mut image = encode(5, b"payload");
        image.extend_from_slice(&encode(6, b"after"));
        image[8] ^= 0xFF; // first frame's seq field
        let (frames, end) = scan(&image);
        assert!(frames.is_empty());
        assert!(matches!(end, ScanEnd::Corrupt { .. }));
    }

    #[test]
    fn garbage_length_is_treated_as_torn() {
        let mut image = encode(1, b"ok");
        image.extend_from_slice(&u32::MAX.to_le_bytes());
        image.extend_from_slice(&[0_u8; 12]);
        image.extend_from_slice(&encode(2, b"unreachable"));
        let (frames, end) = scan(&image);
        assert_eq!(frames.len(), 1);
        assert!(matches!(end, ScanEnd::Torn { .. }));
    }
}
