//! The replication wire protocol and stream-integrity checks.
//!
//! A primary ships its WAL to followers over a length-prefixed,
//! CRC-protected TCP stream. This module owns the *format* and the
//! *integrity rules*; the server crate owns the sockets and threads.
//!
//! # Wire format
//!
//! Every message travels in one frame:
//!
//! ```text
//! offset  size  field
//!      0     4  body length (u32 LE)
//!      4     4  CRC-32/IEEE over the body (u32 LE)
//!      8     n  body: tag byte followed by the message fields
//! ```
//!
//! Integers are u64 LE; byte strings are `[len u32 LE][bytes]`. The CRC
//! reuses the WAL's [`crate::frame::crc32`], so a flipped bit anywhere
//! in transit is caught before a follower applies anything.
//!
//! # Session shape
//!
//! ```text
//! follower                          primary
//!    │ ── Hello{epoch, last_applied} ──▶ │
//!    │ ◀── Welcome{epoch, advertise} ─── │   (or Reject)
//!    │ ◀── Snapshot{last_seq, payload} ─ │   full bootstrap image
//!    │ ◀── Record{seq, payload} ──────── │   live tail, strictly ordered
//!    │ ─── Ack{seq} ───────────────────▶ │   after local flush
//!    │ ◀── Heartbeat{epoch, head_seq} ── │   idle keep-alive + lag probe
//! ```
//!
//! # Integrity rules
//!
//! [`StreamCursor`] enforces the two invariants a follower must never
//! relax: records arrive in *exactly* contiguous sequence order (a gap
//! means an acked write would be silently missing; a duplicate or
//! reordering means double-apply), and every record belongs to an epoch
//! at least as new as the follower's — a lower epoch is a deposed
//! primary still talking, and applying its records is split-brain.

use std::io::{Read, Write};

use crate::frame::crc32;

/// Largest accepted message body. Snapshots dominate: allow the WAL's
/// payload limit plus header slack.
pub const MAX_BODY_BYTES: usize = crate::frame::MAX_PAYLOAD_BYTES + 64;

/// Everything that can go wrong on the replication stream.
#[derive(Debug)]
pub enum ReplError {
    /// The underlying socket or file operation failed.
    Io(std::io::Error),
    /// A frame failed to decode: bad CRC, unknown tag, truncated or
    /// oversized body. The stream cannot be trusted past this point.
    Frame {
        /// What failed to check out.
        reason: String,
    },
    /// A record arrived with a sequence number *beyond* the next
    /// expected one: records were dropped in between. Applying it would
    /// silently lose acknowledged writes.
    SequenceGap {
        /// The sequence number the follower expected next.
        expected: u64,
        /// The sequence number that actually arrived.
        found: u64,
    },
    /// A record arrived with a sequence number *behind* the next
    /// expected one: a duplicate or a reordering. Applying it would
    /// double-apply history.
    DuplicateRecord {
        /// The sequence number the follower expected next.
        expected: u64,
        /// The sequence number that actually arrived.
        found: u64,
    },
    /// The remote claims an epoch older than ours: a deposed primary.
    /// Nothing it sends may be applied.
    StaleEpoch {
        /// The epoch the remote claimed.
        remote: u64,
        /// Our own durable epoch.
        local: u64,
    },
    /// The peer rejected the handshake, with its stated reason.
    Rejected {
        /// The reason carried in the [`Message::Reject`] frame.
        reason: String,
    },
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Io(err) => write!(f, "replication I/O error: {err}"),
            ReplError::Frame { reason } => write!(f, "bad replication frame: {reason}"),
            ReplError::SequenceGap { expected, found } => write!(
                f,
                "replication gap: expected seq {expected}, stream jumped to {found}"
            ),
            ReplError::DuplicateRecord { expected, found } => write!(
                f,
                "replication replay: expected seq {expected}, stream repeated {found}"
            ),
            ReplError::StaleEpoch { remote, local } => write!(
                f,
                "stale epoch {remote} (local epoch is {local}): refusing a deposed primary"
            ),
            ReplError::Rejected { reason } => write!(f, "peer rejected replication: {reason}"),
        }
    }
}

impl std::error::Error for ReplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReplError {
    fn from(err: std::io::Error) -> Self {
        ReplError::Io(err)
    }
}

/// One replication protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Follower → primary: who I am and how far I have applied.
    Hello {
        /// The follower's durable epoch.
        epoch: u64,
        /// Highest sequence number the follower has applied.
        last_applied: u64,
    },
    /// Primary → follower: handshake accepted; adopt this epoch.
    Welcome {
        /// The primary's durable epoch.
        epoch: u64,
        /// The primary's client-facing address, opaque to the protocol.
        /// Followers hand it to redirected writers so clients can find
        /// the leader without out-of-band configuration.
        advertise: String,
    },
    /// Either direction: handshake refused (stale epoch, wrong role).
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Primary → follower: full bootstrap image covering seq ≤ `last_seq`.
    Snapshot {
        /// Every record with seq ≤ this is captured by the payload.
        last_seq: u64,
        /// The caller's snapshot bytes ([`crate::Snapshot::payload`] format).
        payload: Vec<u8>,
    },
    /// Primary → follower: one WAL record, in strict sequence order.
    Record {
        /// The record's sequence number.
        seq: u64,
        /// The payload exactly as appended on the primary.
        payload: Vec<u8>,
    },
    /// Primary → follower: keep-alive carrying the primary's head.
    Heartbeat {
        /// The primary's durable epoch.
        epoch: u64,
        /// Highest sequence number the primary has appended.
        head_seq: u64,
    },
    /// Follower → primary: everything through `seq` is locally durable.
    Ack {
        /// Highest sequence number flushed on the follower.
        seq: u64,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_REJECT: u8 = 3;
const TAG_SNAPSHOT: u8 = 4;
const TAG_RECORD: u8 = 5;
const TAG_HEARTBEAT: u8 = 6;
const TAG_ACK: u8 = 7;

fn put_bytes(body: &mut Vec<u8>, bytes: &[u8]) {
    body.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    body.extend_from_slice(bytes);
}

struct BodyReader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> BodyReader<'a> {
    fn u64(&mut self) -> Result<u64, ReplError> {
        let end = self.offset + 8;
        let slice = self.bytes.get(self.offset..end).ok_or(ReplError::Frame {
            reason: "truncated integer field".to_string(),
        })?;
        self.offset = end;
        Ok(u64::from_le_bytes(slice.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ReplError> {
        let end = self.offset + 4;
        let len_slice = self.bytes.get(self.offset..end).ok_or(ReplError::Frame {
            reason: "truncated byte-string length".to_string(),
        })?;
        let len = u32::from_le_bytes(len_slice.try_into().expect("4 bytes")) as usize;
        self.offset = end;
        let end = self.offset + len;
        let slice = self.bytes.get(self.offset..end).ok_or(ReplError::Frame {
            reason: "truncated byte-string body".to_string(),
        })?;
        self.offset = end;
        Ok(slice.to_vec())
    }

    fn finish(self) -> Result<(), ReplError> {
        if self.offset == self.bytes.len() {
            Ok(())
        } else {
            Err(ReplError::Frame {
                reason: format!(
                    "{} trailing bytes after message body",
                    self.bytes.len() - self.offset
                ),
            })
        }
    }
}

impl Message {
    /// Serializes the message into one wire frame (header + body).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Message::Hello {
                epoch,
                last_applied,
            } => {
                body.push(TAG_HELLO);
                body.extend_from_slice(&epoch.to_le_bytes());
                body.extend_from_slice(&last_applied.to_le_bytes());
            }
            Message::Welcome { epoch, advertise } => {
                body.push(TAG_WELCOME);
                body.extend_from_slice(&epoch.to_le_bytes());
                put_bytes(&mut body, advertise.as_bytes());
            }
            Message::Reject { reason } => {
                body.push(TAG_REJECT);
                put_bytes(&mut body, reason.as_bytes());
            }
            Message::Snapshot { last_seq, payload } => {
                body.push(TAG_SNAPSHOT);
                body.extend_from_slice(&last_seq.to_le_bytes());
                put_bytes(&mut body, payload);
            }
            Message::Record { seq, payload } => {
                body.push(TAG_RECORD);
                body.extend_from_slice(&seq.to_le_bytes());
                put_bytes(&mut body, payload);
            }
            Message::Heartbeat { epoch, head_seq } => {
                body.push(TAG_HEARTBEAT);
                body.extend_from_slice(&epoch.to_le_bytes());
                body.extend_from_slice(&head_seq.to_le_bytes());
            }
            Message::Ack { seq } => {
                body.push(TAG_ACK);
                body.extend_from_slice(&seq.to_le_bytes());
            }
        }
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        frame
    }

    /// Decodes one message body (the bytes after the 8-byte header,
    /// already CRC-verified).
    ///
    /// # Errors
    ///
    /// Returns [`ReplError::Frame`] for unknown tags and malformed
    /// field encodings.
    pub fn decode_body(body: &[u8]) -> Result<Self, ReplError> {
        let (&tag, rest) = body.split_first().ok_or(ReplError::Frame {
            reason: "empty message body".to_string(),
        })?;
        let mut reader = BodyReader {
            bytes: rest,
            offset: 0,
        };
        let message = match tag {
            TAG_HELLO => Message::Hello {
                epoch: reader.u64()?,
                last_applied: reader.u64()?,
            },
            TAG_WELCOME => Message::Welcome {
                epoch: reader.u64()?,
                advertise: String::from_utf8_lossy(&reader.bytes()?).into_owned(),
            },
            TAG_REJECT => Message::Reject {
                reason: String::from_utf8_lossy(&reader.bytes()?).into_owned(),
            },
            TAG_SNAPSHOT => Message::Snapshot {
                last_seq: reader.u64()?,
                payload: reader.bytes()?,
            },
            TAG_RECORD => Message::Record {
                seq: reader.u64()?,
                payload: reader.bytes()?,
            },
            TAG_HEARTBEAT => Message::Heartbeat {
                epoch: reader.u64()?,
                head_seq: reader.u64()?,
            },
            TAG_ACK => Message::Ack { seq: reader.u64()? },
            other => {
                return Err(ReplError::Frame {
                    reason: format!("unknown message tag {other}"),
                })
            }
        };
        reader.finish()?;
        Ok(message)
    }
}

/// Writes one message to a stream (no explicit flush; callers flush or
/// rely on the socket).
///
/// # Errors
///
/// Returns [`ReplError::Io`] on write failure.
pub fn write_message(writer: &mut impl Write, message: &Message) -> Result<(), ReplError> {
    writer.write_all(&message.encode())?;
    Ok(())
}

/// Reads exactly one message from a stream, verifying length bounds and
/// the body CRC before decoding.
///
/// # Errors
///
/// Returns [`ReplError::Io`] on read failure (including clean EOF,
/// surfaced as `UnexpectedEof`) and [`ReplError::Frame`] when the frame
/// is oversized, fails its CRC, or decodes to no known message.
pub fn read_message(reader: &mut impl Read) -> Result<Message, ReplError> {
    let mut header = [0_u8; 8];
    reader.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let stored_crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_BODY_BYTES {
        return Err(ReplError::Frame {
            reason: format!("message body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
        });
    }
    let mut body = vec![0_u8; len];
    reader.read_exact(&mut body)?;
    if crc32(&body) != stored_crc {
        return Err(ReplError::Frame {
            reason: "message body failed CRC verification".to_string(),
        });
    }
    Message::decode_body(&body)
}

/// A follower's view of where the replication stream must continue.
///
/// The cursor admits records only in exactly contiguous sequence order
/// and only from the current (or a newer) epoch. Both checks happen
/// *before* anything is applied, so a violating record never touches
/// the local journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCursor {
    epoch: u64,
    next_seq: u64,
}

impl StreamCursor {
    /// A cursor expecting records from `epoch` starting at `next_seq`.
    #[must_use]
    pub fn new(epoch: u64, next_seq: u64) -> Self {
        Self { epoch, next_seq }
    }

    /// The epoch this cursor currently trusts.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The sequence number the next record must carry.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Checks a leader's claimed epoch. A newer epoch is adopted (a
    /// legitimate failover happened); an older one is refused — that
    /// leader was deposed and must not be followed.
    ///
    /// # Errors
    ///
    /// Returns [`ReplError::StaleEpoch`] when `remote` is behind.
    pub fn accept_epoch(&mut self, remote: u64) -> Result<(), ReplError> {
        if remote < self.epoch {
            return Err(ReplError::StaleEpoch {
                remote,
                local: self.epoch,
            });
        }
        self.epoch = remote;
        Ok(())
    }

    /// Admits one record sequence number, advancing the cursor.
    ///
    /// # Errors
    ///
    /// Returns [`ReplError::SequenceGap`] when records were skipped and
    /// [`ReplError::DuplicateRecord`] for duplicates or reordering. The
    /// cursor does not advance on error.
    pub fn admit(&mut self, seq: u64) -> Result<(), ReplError> {
        match seq.cmp(&self.next_seq) {
            std::cmp::Ordering::Equal => {
                self.next_seq += 1;
                Ok(())
            }
            std::cmp::Ordering::Greater => Err(ReplError::SequenceGap {
                expected: self.next_seq,
                found: seq,
            }),
            std::cmp::Ordering::Less => Err(ReplError::DuplicateRecord {
                expected: self.next_seq,
                found: seq,
            }),
        }
    }

    /// Fast-forwards the cursor past a snapshot covering seq ≤ `last_seq`.
    pub fn skip_to(&mut self, last_seq: u64) {
        self.next_seq = last_seq + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(message: Message) {
        let frame = message.encode();
        let mut cursor = &frame[..];
        let decoded = read_message(&mut cursor).unwrap();
        assert_eq!(decoded, message);
        assert!(cursor.is_empty(), "frame fully consumed");
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(Message::Hello {
            epoch: 3,
            last_applied: 812,
        });
        round_trip(Message::Welcome {
            epoch: 4,
            advertise: "127.0.0.1:7400".to_string(),
        });
        round_trip(Message::Reject {
            reason: "stale epoch".to_string(),
        });
        round_trip(Message::Snapshot {
            last_seq: 100,
            payload: b"image bytes".to_vec(),
        });
        round_trip(Message::Record {
            seq: 101,
            payload: vec![0xAB; 300],
        });
        round_trip(Message::Heartbeat {
            epoch: 4,
            head_seq: 105,
        });
        round_trip(Message::Ack { seq: 104 });
    }

    #[test]
    fn bit_flip_fails_crc() {
        let mut frame = Message::Record {
            seq: 7,
            payload: b"payload".to_vec(),
        }
        .encode();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        let err = read_message(&mut &frame[..]).unwrap_err();
        assert!(matches!(err, ReplError::Frame { .. }), "{err}");
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_rejected() {
        assert!(matches!(
            Message::decode_body(&[99]),
            Err(ReplError::Frame { .. })
        ));
        let mut body = vec![TAG_ACK];
        body.extend_from_slice(&5_u64.to_le_bytes());
        body.push(0); // trailing garbage
        assert!(matches!(
            Message::decode_body(&body),
            Err(ReplError::Frame { .. })
        ));
    }

    #[test]
    fn oversized_frame_is_refused_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        frame.extend_from_slice(&[0_u8; 4]);
        let err = read_message(&mut &frame[..]).unwrap_err();
        assert!(matches!(err, ReplError::Frame { .. }));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let frame = Message::Ack { seq: 1 }.encode();
        let err = read_message(&mut &frame[..frame.len() - 2]).unwrap_err();
        assert!(matches!(err, ReplError::Io(_)));
    }

    #[test]
    fn cursor_enforces_contiguity_and_epoch() {
        let mut cursor = StreamCursor::new(2, 10);
        cursor.admit(10).unwrap();
        cursor.admit(11).unwrap();
        assert!(matches!(
            cursor.admit(13),
            Err(ReplError::SequenceGap {
                expected: 12,
                found: 13
            })
        ));
        assert!(matches!(
            cursor.admit(11),
            Err(ReplError::DuplicateRecord {
                expected: 12,
                found: 11
            })
        ));
        // Failed admits never advance the cursor.
        cursor.admit(12).unwrap();

        assert!(matches!(
            cursor.accept_epoch(1),
            Err(ReplError::StaleEpoch {
                remote: 1,
                local: 2
            })
        ));
        cursor.accept_epoch(3).unwrap();
        assert_eq!(cursor.epoch(), 3);

        cursor.skip_to(100);
        assert_eq!(cursor.next_seq(), 101);
    }
}
