//! Deterministic fault injection: a seeded, replayable schedule of
//! disk and network failures.
//!
//! A [`FaultPlan`] is the single source of chaos for a node. It is
//! injected behind two seams:
//!
//! - **disk** — [`crate::EventStore`] consults it on every append and
//!   segment fsync (`disk.append_err`, `disk.torn`, `disk.fsync_err`),
//!   and the scrubber's injection seam consults it for data-at-rest
//!   corruption (`disk.bitrot`);
//! - **network** — the replication shipper consults it before every
//!   outgoing frame (`net.drop`, `net.dup`, `net.delay`,
//!   `net.partition`, `net.half_open`).
//!
//! Plans are either written out directive by directive, or derived
//! entirely from a seed (`seed=N` alone) via a splitmix64 hash — so a
//! chaos run is replayed exactly by re-running the same spec string,
//! which smoke scripts pass through the `MINE_FAULT_PLAN` environment
//! variable.
//!
//! ```
//! use mine_store::FaultPlan;
//!
//! let plan = FaultPlan::parse("seed=7;net.drop@3;disk.torn@5:9").unwrap();
//! assert_eq!(plan.seed(), 7);
//! // Round-trips through its canonical rendering.
//! let again = FaultPlan::parse(&plan.to_string()).unwrap();
//! assert_eq!(plan.to_string(), again.to_string());
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One scheduled disk failure, keyed by the sequence number of the
/// append it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The whole append fails (`EIO`-style): no frame bytes land.
    AppendError,
    /// A torn write: `bytes` of the frame land on disk, then the
    /// append fails as if the disk filled mid-frame.
    TornWrite {
        /// Frame bytes written before the failure.
        bytes: usize,
    },
}

/// One scheduled network failure, keyed by the global outgoing frame
/// number it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The frame silently vanishes.
    Drop,
    /// The frame is delivered twice back to back.
    Duplicate,
    /// The frame is delivered after sleeping this long.
    Delay(Duration),
    /// From this frame on, every send fails with an I/O error until
    /// the window elapses — a hard partition.
    Partition(Duration),
    /// From this frame on, every send silently vanishes until the
    /// window elapses — a half-open peer that looks alive but hears
    /// nothing.
    HalfOpen(Duration),
}

/// What the shipper should do with one outgoing frame, after the plan
/// has been consulted (and any blackout window accounted for).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetAction {
    /// Send normally.
    Deliver,
    /// Pretend to send; the frame vanishes.
    Drop,
    /// Send the frame twice.
    DeliverTwice,
    /// Sleep, then send.
    DelayThenDeliver(Duration),
    /// Fail the send with an I/O error.
    Fail,
}

/// An active partition/half-open window: until `until`, sends either
/// fail (`fail = true`, partition) or vanish (`fail = false`,
/// half-open).
#[derive(Debug, Clone, Copy)]
struct Blackout {
    until: Instant,
    fail: bool,
}

/// A deterministic, replayable schedule of disk and network faults.
///
/// Shared behind an `Arc` between the store (disk seam) and the
/// replication layer (network seam) of one node. Frame and fsync
/// counters are process-global so a fault fires exactly once per run
/// regardless of reconnects.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    disk: BTreeMap<u64, DiskFault>,
    /// Bit-rot schedule: flip `bytes` payload bytes of record `seq`
    /// once it sits in an *already-sealed* segment. Applied lazily by
    /// the scrubber's injection seam, not by the append path, because
    /// real bit rot strikes data at rest. The schedule is immutable so
    /// [`fmt::Display`] stays canonical; claims are tracked separately.
    bitrot: BTreeMap<u64, usize>,
    fsync_err_calls: BTreeMap<u64, ()>,
    net: BTreeMap<u64, NetFault>,
    fsync_calls: AtomicU64,
    frames: AtomicU64,
    blackout: Mutex<Option<Blackout>>,
    /// Sequence numbers whose bit-rot injection has already fired, so
    /// each scheduled flip strikes exactly once per process.
    bitrot_claimed: Mutex<BTreeSet<u64>>,
}

/// SplitMix64: a tiny, high-quality mixing step. Used to derive the
/// pseudo-random schedule from a seed without pulling in an RNG crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How many outgoing frames the seeded schedule covers; past this the
/// network runs clean so a chaos run always converges.
const SEEDED_FRAME_HORIZON: u64 = 64;

impl FaultPlan {
    /// An empty plan (no faults) recording only its seed.
    #[must_use]
    fn empty(seed: u64) -> Self {
        Self {
            seed,
            disk: BTreeMap::new(),
            bitrot: BTreeMap::new(),
            fsync_err_calls: BTreeMap::new(),
            net: BTreeMap::new(),
            fsync_calls: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            blackout: Mutex::new(None),
            bitrot_claimed: Mutex::new(BTreeSet::new()),
        }
    }

    /// Derives a pseudo-random *network* schedule from `seed`: over the
    /// first [`SEEDED_FRAME_HORIZON`] outgoing frames, roughly one in
    /// eight is dropped, one in sixteen duplicated, one in eight
    /// delayed 10–50 ms. Disk faults are never generated (they poison
    /// the writer, which a recover-and-converge chaos run cannot come
    /// back from) — schedule those explicitly.
    ///
    /// The same seed always yields the identical schedule.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        let mut plan = Self::empty(seed);
        let mut state = seed ^ 0x6D69_6E65_2D66_706C; // "mine-fpl"
        for frame in 1..=SEEDED_FRAME_HORIZON {
            let draw = splitmix64(&mut state);
            let fault = match draw % 16 {
                0 | 1 => Some(NetFault::Drop),
                2 => Some(NetFault::Duplicate),
                3 | 4 => {
                    let ms = 10 + (splitmix64(&mut state) % 41);
                    Some(NetFault::Delay(Duration::from_millis(ms)))
                }
                _ => None,
            };
            if let Some(fault) = fault {
                plan.net.insert(frame, fault);
            }
        }
        plan
    }

    /// Parses a plan spec: directives separated by `;` (or `,`).
    ///
    /// | Directive | Meaning |
    /// |---|---|
    /// | `seed=N` | record the seed; alone, derive the seeded schedule |
    /// | `disk.append_err@SEQ` | append of seq `SEQ` fails, no bytes land |
    /// | `disk.torn@SEQ:BYTES` | append of seq `SEQ` tears after `BYTES` bytes |
    /// | `disk.bitrot@SEQ:BYTES` | flip `BYTES` payload bytes of sealed record `SEQ` at rest |
    /// | `disk.fsync_err@CALL` | the `CALL`-th segment fsync fails |
    /// | `net.drop@FRAME` | outgoing frame `FRAME` vanishes |
    /// | `net.dup@FRAME` | outgoing frame `FRAME` is sent twice |
    /// | `net.delay@FRAME:MS` | outgoing frame `FRAME` is delayed `MS` ms |
    /// | `net.partition@FRAME:MS` | sends fail for `MS` ms starting at frame `FRAME` |
    /// | `net.half_open@FRAME:MS` | sends vanish for `MS` ms starting at frame `FRAME` |
    ///
    /// `seed=N` with no other directive expands to
    /// [`FaultPlan::seeded`]`(N)` — the replayable random schedule.
    ///
    /// # Errors
    ///
    /// Returns a message naming the directive that failed to parse.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut seed = 0_u64;
        let mut saw_seed = false;
        let mut explicit = Vec::new();
        for raw in spec.split([';', ',']) {
            let directive = raw.trim();
            if directive.is_empty() {
                continue;
            }
            if let Some(value) = directive.strip_prefix("seed=") {
                seed = value
                    .parse()
                    .map_err(|_| format!("bad seed in fault plan: {directive:?}"))?;
                saw_seed = true;
            } else {
                explicit.push(directive.to_string());
            }
        }
        if explicit.is_empty() {
            if saw_seed {
                return Ok(Self::seeded(seed));
            }
            return Ok(Self::empty(0));
        }
        let mut plan = Self::empty(seed);
        for directive in &explicit {
            plan.apply_directive(directive)?;
        }
        Ok(plan)
    }

    /// Reads and parses `MINE_FAULT_PLAN`. `Ok(None)` when unset or
    /// empty.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::parse`] errors, prefixed with the
    /// variable name.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var("MINE_FAULT_PLAN") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec)
                .map(Some)
                .map_err(|err| format!("MINE_FAULT_PLAN: {err}")),
            _ => Ok(None),
        }
    }

    fn apply_directive(&mut self, directive: &str) -> Result<(), String> {
        let bad = || format!("bad fault directive: {directive:?}");
        let (kind, at) = directive.split_once('@').ok_or_else(bad)?;
        let (at, arg) = match at.split_once(':') {
            Some((at, arg)) => (at, Some(arg)),
            None => (at, None),
        };
        let at: u64 = at.parse().map_err(|_| bad())?;
        let num = |value: Option<&str>| -> Result<u64, String> {
            value.ok_or_else(bad)?.parse().map_err(|_| bad())
        };
        match kind {
            "disk.append_err" => {
                self.disk.insert(at, DiskFault::AppendError);
            }
            "disk.torn" => {
                let bytes = usize::try_from(num(arg)?).map_err(|_| bad())?;
                self.disk.insert(at, DiskFault::TornWrite { bytes });
            }
            "disk.bitrot" => {
                let bytes = usize::try_from(num(arg)?).map_err(|_| bad())?;
                if bytes == 0 {
                    return Err(bad());
                }
                self.bitrot.insert(at, bytes);
            }
            "disk.fsync_err" => {
                self.fsync_err_calls.insert(at, ());
            }
            "net.drop" => {
                self.net.insert(at, NetFault::Drop);
            }
            "net.dup" => {
                self.net.insert(at, NetFault::Duplicate);
            }
            "net.delay" => {
                self.net
                    .insert(at, NetFault::Delay(Duration::from_millis(num(arg)?)));
            }
            "net.partition" => {
                self.net
                    .insert(at, NetFault::Partition(Duration::from_millis(num(arg)?)));
            }
            "net.half_open" => {
                self.net
                    .insert(at, NetFault::HalfOpen(Duration::from_millis(num(arg)?)));
            }
            _ => return Err(bad()),
        }
        Ok(())
    }

    /// The seed the plan was built from (0 when none was given).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the plan schedules no fault at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.disk.is_empty()
            && self.bitrot.is_empty()
            && self.fsync_err_calls.is_empty()
            && self.net.is_empty()
    }

    /// The disk fault scheduled for the append of `seq`, if any.
    #[must_use]
    pub fn disk_fault(&self, seq: u64) -> Option<DiskFault> {
        self.disk.get(&seq).copied()
    }

    /// The full bit-rot schedule: `(seq, bytes)` pairs, including ones
    /// already claimed. The injection seam iterates this to find
    /// records it can strike.
    #[must_use]
    pub fn bitrot_faults(&self) -> Vec<(u64, usize)> {
        self.bitrot
            .iter()
            .map(|(&seq, &bytes)| (seq, bytes))
            .collect()
    }

    /// Claims the bit-rot fault scheduled for `seq`: returns the byte
    /// count the first time, `None` on every later call (or when none
    /// is scheduled), so each scheduled flip fires exactly once.
    pub fn claim_bitrot(&self, seq: u64) -> Option<usize> {
        let bytes = *self.bitrot.get(&seq)?;
        let mut claimed = self.bitrot_claimed.lock().expect("fault plan mutex");
        if !claimed.insert(seq) {
            return None;
        }
        Some(bytes)
    }

    /// Counts one segment fsync and reports whether this one is
    /// scheduled to fail. Calls are numbered from 1.
    pub fn fsync_fails(&self) -> bool {
        let call = self.fsync_calls.fetch_add(1, Ordering::SeqCst) + 1;
        self.fsync_err_calls.contains_key(&call)
    }

    /// Counts one outgoing replication frame and returns what to do
    /// with it. Frames are numbered from 1 across the whole process, so
    /// a reconnect does not replay earlier faults.
    pub fn net_action(&self) -> NetAction {
        let frame = self.frames.fetch_add(1, Ordering::SeqCst) + 1;
        let mut blackout = self.blackout.lock().expect("fault plan mutex");
        if let Some(active) = *blackout {
            if Instant::now() < active.until {
                return if active.fail {
                    NetAction::Fail
                } else {
                    NetAction::Drop
                };
            }
            *blackout = None;
        }
        match self.net.get(&frame).copied() {
            None => NetAction::Deliver,
            Some(NetFault::Drop) => NetAction::Drop,
            Some(NetFault::Duplicate) => NetAction::DeliverTwice,
            Some(NetFault::Delay(by)) => NetAction::DelayThenDeliver(by),
            Some(NetFault::Partition(window)) => {
                *blackout = Some(Blackout {
                    until: Instant::now() + window,
                    fail: true,
                });
                NetAction::Fail
            }
            Some(NetFault::HalfOpen(window)) => {
                *blackout = Some(Blackout {
                    until: Instant::now() + window,
                    fail: false,
                });
                NetAction::Drop
            }
        }
    }
}

impl fmt::Display for FaultPlan {
    /// Canonical spec rendering: parseable by [`FaultPlan::parse`] and
    /// stable for a given schedule, so two plans built from the same
    /// seed render identically.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = vec![format!("seed={}", self.seed)];
        for (seq, fault) in &self.disk {
            match fault {
                DiskFault::AppendError => parts.push(format!("disk.append_err@{seq}")),
                DiskFault::TornWrite { bytes } => parts.push(format!("disk.torn@{seq}:{bytes}")),
            }
        }
        for (seq, bytes) in &self.bitrot {
            parts.push(format!("disk.bitrot@{seq}:{bytes}"));
        }
        for call in self.fsync_err_calls.keys() {
            parts.push(format!("disk.fsync_err@{call}"));
        }
        for (frame, fault) in &self.net {
            match fault {
                NetFault::Drop => parts.push(format!("net.drop@{frame}")),
                NetFault::Duplicate => parts.push(format!("net.dup@{frame}")),
                NetFault::Delay(by) => parts.push(format!("net.delay@{frame}:{}", by.as_millis())),
                NetFault::Partition(window) => {
                    parts.push(format!("net.partition@{frame}:{}", window.as_millis()));
                }
                NetFault::HalfOpen(window) => {
                    parts.push(format!("net.half_open@{frame}:{}", window.as_millis()));
                }
            }
        }
        write!(f, "{}", parts.join(";"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_directives_parse_and_round_trip() {
        let plan = FaultPlan::parse(
            "seed=9;disk.append_err@4;disk.torn@7:9;disk.fsync_err@2;\
             net.drop@3;net.dup@5;net.delay@6:25;net.partition@8:100;net.half_open@9:50",
        )
        .unwrap();
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.disk_fault(4), Some(DiskFault::AppendError));
        assert_eq!(plan.disk_fault(7), Some(DiskFault::TornWrite { bytes: 9 }));
        assert_eq!(plan.disk_fault(5), None);
        let rendered = plan.to_string();
        let reparsed = FaultPlan::parse(&rendered).unwrap();
        assert_eq!(rendered, reparsed.to_string());
    }

    #[test]
    fn seeded_schedules_are_reproducible_and_seed_sensitive() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        let c = FaultPlan::seeded(43);
        assert_eq!(a.to_string(), b.to_string());
        assert_ne!(a.to_string(), c.to_string());
        assert!(!a.is_empty(), "a seeded plan schedules some faults");
        // `seed=N` alone means the seeded schedule.
        let via_spec = FaultPlan::parse("seed=42").unwrap();
        assert_eq!(via_spec.to_string(), a.to_string());
    }

    #[test]
    fn bad_directives_are_rejected_with_a_message() {
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(FaultPlan::parse("disk.torn@5").is_err());
        assert!(FaultPlan::parse("disk.bitrot@5").is_err());
        assert!(FaultPlan::parse("disk.bitrot@5:0").is_err());
        assert!(FaultPlan::parse("net.warp@3").is_err());
        assert!(FaultPlan::parse("net.delay@3:abc").is_err());
    }

    #[test]
    fn bitrot_round_trips_and_is_claimed_exactly_once() {
        let plan = FaultPlan::parse("seed=3;disk.bitrot@7:2;disk.bitrot@4:1;net.drop@2").unwrap();
        assert_eq!(plan.bitrot_faults(), vec![(4, 1), (7, 2)]);
        let rendered = plan.to_string();
        assert_eq!(
            rendered,
            "seed=3;disk.bitrot@4:1;disk.bitrot@7:2;net.drop@2"
        );
        let reparsed = FaultPlan::parse(&rendered).unwrap();
        assert_eq!(rendered, reparsed.to_string());
        // Each scheduled flip fires exactly once.
        assert_eq!(plan.claim_bitrot(7), Some(2));
        assert_eq!(plan.claim_bitrot(7), None);
        assert_eq!(plan.claim_bitrot(5), None, "nothing scheduled for seq 5");
        // Claiming does not change the canonical rendering.
        assert_eq!(plan.to_string(), rendered);
    }

    #[test]
    fn fsync_calls_are_counted_from_one() {
        let plan = FaultPlan::parse("disk.fsync_err@2").unwrap();
        assert!(!plan.fsync_fails());
        assert!(plan.fsync_fails());
        assert!(!plan.fsync_fails());
    }

    #[test]
    fn net_actions_fire_once_per_global_frame() {
        let plan = FaultPlan::parse("net.drop@1;net.dup@2;net.delay@3:5").unwrap();
        assert_eq!(plan.net_action(), NetAction::Drop);
        assert_eq!(plan.net_action(), NetAction::DeliverTwice);
        assert_eq!(
            plan.net_action(),
            NetAction::DelayThenDeliver(Duration::from_millis(5))
        );
        assert_eq!(plan.net_action(), NetAction::Deliver);
    }

    #[test]
    fn partition_fails_sends_until_the_window_elapses() {
        let plan = FaultPlan::parse("net.partition@1:30").unwrap();
        assert_eq!(plan.net_action(), NetAction::Fail);
        assert_eq!(plan.net_action(), NetAction::Fail, "window still open");
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(plan.net_action(), NetAction::Deliver, "window healed");
    }

    #[test]
    fn half_open_swallows_sends_until_the_window_elapses() {
        let plan = FaultPlan::parse("net.half_open@1:30").unwrap();
        assert_eq!(plan.net_action(), NetAction::Drop);
        assert_eq!(plan.net_action(), NetAction::Drop, "window still open");
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(plan.net_action(), NetAction::Deliver, "window healed");
    }
}
