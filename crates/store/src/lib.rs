//! `mine-store`: a durable append-only event-log storage engine.
//!
//! This crate gives the delivery service a crash-safe persistence
//! layer: every mutation is journaled as a CRC-framed record in a
//! write-ahead log, segments rotate by size, snapshots compact the
//! history, and [`EventStore::open`] rebuilds everything a previous
//! process wrote — repairing the torn final record a kill -9 leaves
//! behind and refusing to paper over corruption anywhere else.
//!
//! The crate is storage only: payloads are opaque bytes, and the
//! caller owns both the event serialization (the server journals its
//! `SessionEvent`s as JSON) and the snapshot format.
//!
//! ```
//! use mine_store::{EventStore, StoreOptions};
//!
//! let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! let (store, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
//! assert!(recovered.events.is_empty());
//! let seq = store.append(b"session created").unwrap();
//! assert_eq!(seq, 1);
//! drop(store);
//!
//! let (_store, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
//! assert_eq!(recovered.events[0].payload, b"session created");
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fault;
pub mod frame;
pub mod log;
pub mod replicate;
pub mod scrub;

pub use error::StoreError;
pub use fault::{DiskFault, FaultPlan, NetAction, NetFault};
pub use log::{
    AppendFault, EventStore, Record, Recovered, Snapshot, StoreOptions, SyncPolicy, INITIAL_EPOCH,
};
pub use replicate::{Message, ReplError, StreamCursor};
pub use scrub::{
    diverging_windows, inject_bitrot, scrub_dir, RangeHash, ScrubReport, SegmentReport,
    SnapshotReport, RANGE_WINDOW,
};
