//! The storage engine: an append-only event log over segment files,
//! with snapshot compaction and crash recovery.
//!
//! # On-disk layout
//!
//! A store directory holds two kinds of files:
//!
//! ```text
//! wal-00000000000000000001.log    segment: frames (see `frame`), first seq 1
//! wal-00000000000000000812.log    next segment after size-based rotation
//! snapshot-00000000000000000811.snap   caller payload covering seq ≤ 811
//! ```
//!
//! Records carry monotonically increasing sequence numbers, starting
//! from one. A snapshot file named `snapshot-{N}` asserts that its
//! payload captures the effect of every record with seq ≤ N; compaction
//! writes one atomically (temp sibling + fsync + rename + directory
//! fsync — the same pattern `RepositorySnapshot::save` uses) and then
//! deletes the segments it covers.
//!
//! # Recovery
//!
//! [`EventStore::open`] replays the directory: it loads the newest
//! snapshot, scans every segment, skips records the snapshot already
//! covers, and returns the tail records for the caller to apply. A torn
//! final record — the signature of a crash mid-append — is truncated
//! away with a warning; a damaged record *inside* the committed history
//! is an error, never silently dropped.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::error::StoreError;
use crate::fault::{DiskFault, FaultPlan};
use crate::frame::{self, ScanEnd, MAX_PAYLOAD_BYTES};

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` after every append: nothing acknowledged is ever
    /// lost, at the cost of one disk round-trip per record.
    Always,
    /// `fdatasync` at most once per interval: bounds data loss to the
    /// records appended within the window.
    Interval(Duration),
    /// Never sync explicitly; the OS flushes on its own schedule. A
    /// process crash loses nothing (the page cache survives), a power
    /// loss may lose the unfsynced tail.
    Never,
}

impl SyncPolicy {
    /// Parses the CLI spelling: `always`, `never`, or `interval[:ms]`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted forms.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "always" => Ok(SyncPolicy::Always),
            "never" => Ok(SyncPolicy::Never),
            "interval" => Ok(SyncPolicy::Interval(Duration::from_millis(100))),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| SyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|_| format!("bad interval milliseconds {ms:?}")),
                None => Err(format!(
                    "unknown fsync policy {other:?} (expected always | interval[:ms] | never)"
                )),
            },
        }
    }
}

/// Tunables of the store.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Flush policy for appends.
    pub sync: SyncPolicy,
    /// Rotate to a new segment once the current one reaches this size.
    pub max_segment_bytes: u64,
    /// Fault injection for tests: fail one append mid-frame. `None` in
    /// production.
    pub append_fault: Option<AppendFault>,
    /// A seeded, replayable fault schedule (see [`FaultPlan`]) shared
    /// with the replication layer. `None` in production.
    pub fault_plan: Option<std::sync::Arc<FaultPlan>>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            sync: SyncPolicy::Always,
            max_segment_bytes: 8 * 1024 * 1024,
            append_fault: None,
            fault_plan: None,
        }
    }
}

/// Test-only fault injection: the append assigned `at_seq` writes only
/// `partial_bytes` of its frame and then fails as if the disk returned
/// `ENOSPC`. Exercises the store's real truncate-and-poison error path
/// without needing a genuinely full filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendFault {
    /// Sequence number of the append that fails.
    pub at_seq: u64,
    /// How many bytes of the frame land on disk before the failure.
    pub partial_bytes: usize,
}

/// One recovered record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The record's sequence number.
    pub seq: u64,
    /// The payload exactly as appended.
    pub payload: Vec<u8>,
}

/// The newest snapshot found during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The snapshot covers every record with seq ≤ `last_seq`.
    pub last_seq: u64,
    /// The caller's payload, byte for byte.
    pub payload: Vec<u8>,
}

/// Everything [`EventStore::open`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    /// The newest snapshot, when one exists.
    pub snapshot: Option<Snapshot>,
    /// Tail records not covered by the snapshot, in sequence order.
    pub events: Vec<Record>,
    /// Repairs performed (torn tails truncated), human-readable.
    pub warnings: Vec<String>,
    /// Number of segment files scanned.
    pub segments: usize,
}

struct Inner {
    file: File,
    segment_path: PathBuf,
    segment_bytes: u64,
    segment_records: u64,
    next_seq: u64,
    since_snapshot: u64,
    last_sync: Instant,
    dirty: bool,
    /// Set when an append failed mid-write; holds the cause. A poisoned
    /// writer refuses every further append/sync/snapshot so a half-frame
    /// can never be followed by "valid" data.
    poisoned: Option<String>,
}

/// A durable append-only event log bound to one directory.
///
/// Thread-safe: appends serialize on an internal mutex, so any number
/// of threads can share one store behind an `Arc`.
pub struct EventStore {
    dir: PathBuf,
    options: StoreOptions,
    inner: Mutex<Inner>,
    /// Durable replication epoch, mirrored from the `epoch` file for
    /// lock-free reads. See [`EventStore::set_epoch`].
    epoch: AtomicU64,
}

impl std::fmt::Debug for EventStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventStore")
            .field("dir", &self.dir)
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

pub(crate) fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

pub(crate) fn snapshot_name(last_seq: u64) -> String {
    format!("snapshot-{last_seq:020}.snap")
}

pub(crate) fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Flushes directory metadata (new/renamed/deleted entries) to disk.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Name of the durable epoch file inside a store directory.
const EPOCH_FILE: &str = "epoch";

/// The epoch a store starts at when no `epoch` file exists yet.
pub const INITIAL_EPOCH: u64 = 1;

fn read_epoch_file(dir: &Path) -> Result<u64, StoreError> {
    match std::fs::read_to_string(dir.join(EPOCH_FILE)) {
        Ok(text) => text.trim().parse().map_err(|_| StoreError::Corrupt {
            file: EPOCH_FILE.to_string(),
            offset: 0,
            reason: format!("unparseable epoch {:?}", text.trim()),
        }),
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(INITIAL_EPOCH),
        Err(err) => Err(err.into()),
    }
}

fn write_epoch_file(dir: &Path, epoch: u64) -> Result<(), StoreError> {
    let final_path = dir.join(EPOCH_FILE);
    let tmp_path = dir.join(format!(".{EPOCH_FILE}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut file = File::create(&tmp_path)?;
        file.write_all(epoch.to_string().as_bytes())?;
        file.sync_all()?;
        std::fs::rename(&tmp_path, &final_path)?;
        sync_dir(dir)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result.map_err(Into::into)
}

impl EventStore {
    /// Opens (or creates) the store at `dir`, recovering whatever a
    /// previous process left behind.
    ///
    /// Torn final records are truncated away and reported in
    /// [`Recovered::warnings`]; the returned store appends after the
    /// last intact record.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure and
    /// [`StoreError::Corrupt`] when the committed history is damaged
    /// (mid-stream CRC mismatch, missing sequence numbers).
    pub fn open(
        dir: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> Result<(Self, Recovered), StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;

        let mut segment_seqs = Vec::new();
        let mut snapshot_seqs = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if let Some(seq) = parse_numbered(&name, "wal-", ".log") {
                segment_seqs.push(seq);
            } else if let Some(seq) = parse_numbered(&name, "snapshot-", ".snap") {
                snapshot_seqs.push(seq);
            }
        }
        segment_seqs.sort_unstable();
        snapshot_seqs.sort_unstable();

        // Newest snapshot wins; older ones are leftovers of a crash
        // between snapshot write and cleanup.
        let snapshot = match snapshot_seqs.last() {
            Some(&last_seq) => {
                let payload = std::fs::read(dir.join(snapshot_name(last_seq)))?;
                for &stale in &snapshot_seqs[..snapshot_seqs.len() - 1] {
                    let _ = std::fs::remove_file(dir.join(snapshot_name(stale)));
                }
                Some(Snapshot { last_seq, payload })
            }
            None => None,
        };
        let snapshot_seq = snapshot.as_ref().map_or(0, |s| s.last_seq);

        let mut events: Vec<Record> = Vec::new();
        let mut warnings = Vec::new();
        let mut expected = snapshot_seq + 1;
        let mut last_segment_state: Option<(PathBuf, u64, u64)> = None;
        for (index, &first_seq) in segment_seqs.iter().enumerate() {
            let path = dir.join(segment_name(first_seq));
            let bytes = std::fs::read(&path)?;
            let (frames, end) = frame::scan(&bytes);
            let frame_count = frames.len() as u64;
            let is_last = index == segment_seqs.len() - 1
                || segment_seqs[index + 1..].iter().all(|&seq| {
                    std::fs::metadata(dir.join(segment_name(seq)))
                        .map(|m| m.len() == 0)
                        .unwrap_or(true)
                });
            let file_name = path
                .file_name()
                .expect("segment has a name")
                .to_string_lossy()
                .into_owned();
            let valid_end = frames.last().map_or(0, |f| f.end_offset);
            match end {
                ScanEnd::Clean => {}
                ScanEnd::Torn { offset, reason } if is_last => {
                    let dropped = bytes.len() as u64 - valid_end;
                    warnings.push(format!(
                        "truncated torn tail of {file_name}: {reason} at offset {offset} ({dropped} bytes dropped)"
                    ));
                    let file = OpenOptions::new().write(true).open(&path)?;
                    file.set_len(valid_end)?;
                    file.sync_all()?;
                }
                ScanEnd::Torn { offset, reason } => {
                    return Err(StoreError::Corrupt {
                        file: file_name,
                        offset,
                        reason: format!("{reason}, with later segments present"),
                    });
                }
                ScanEnd::Corrupt { offset, reason } => {
                    return Err(StoreError::Corrupt {
                        file: file_name,
                        offset,
                        reason,
                    });
                }
            }
            for frame in frames {
                if frame.seq <= snapshot_seq {
                    continue; // covered by the snapshot; segment not yet cleaned up
                }
                if frame.seq != expected {
                    return Err(StoreError::Corrupt {
                        file: file_name,
                        offset: frame.end_offset,
                        reason: format!("sequence gap: expected {expected}, found {}", frame.seq),
                    });
                }
                expected += 1;
                events.push(Record {
                    seq: frame.seq,
                    payload: frame.payload,
                });
            }
            if is_last {
                last_segment_state = Some((path.clone(), valid_end, frame_count));
                break;
            }
        }

        let next_seq = expected;
        let segments = segment_seqs.len();

        // Position the writer: continue the last segment when it still
        // has room, otherwise start a fresh one.
        let (segment_path, segment_bytes, segment_records) = match last_segment_state {
            Some((path, bytes, records)) if bytes < options.max_segment_bytes => {
                (path, bytes, records)
            }
            _ => (dir.join(segment_name(next_seq)), 0, 0),
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&segment_path)?;
        sync_dir(&dir)?;

        let epoch = read_epoch_file(&dir)?;
        let store = Self {
            dir,
            options,
            inner: Mutex::new(Inner {
                file,
                segment_path,
                segment_bytes,
                segment_records,
                next_seq,
                since_snapshot: events.len() as u64,
                last_sync: Instant::now(),
                dirty: false,
                poisoned: None,
            }),
            epoch: AtomicU64::new(epoch),
        };
        Ok((
            store,
            Recovered {
                snapshot,
                events,
                warnings,
                segments,
            },
        ))
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured fault schedule, if any (the scrubber's bit-rot
    /// injection seam consults it).
    #[must_use]
    pub fn fault_plan(&self) -> Option<std::sync::Arc<FaultPlan>> {
        self.options.fault_plan.clone()
    }

    /// Appends one record, returning its sequence number. Durability
    /// depends on the configured [`SyncPolicy`].
    ///
    /// A write failure (`ENOSPC`, `EIO`, …) truncates the segment back
    /// to the last intact frame and poisons the writer: the half-frame
    /// is never visible to recovery or replication, and no record is
    /// left behind for the failed sequence number. The poison is *not*
    /// permanent: the next append first re-runs the truncate-and-flush
    /// recovery (see [`EventStore::try_heal`]) and proceeds normally
    /// when the disk has healed, so a transient `ENOSPC` degrades the
    /// store instead of killing it.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::RecordTooLarge`] for oversized payloads,
    /// [`StoreError::Io`] on write failure, and [`StoreError::Poisoned`]
    /// when an earlier failure could not be healed.
    pub fn append(&self, payload: &[u8]) -> Result<u64, StoreError> {
        if payload.len() > MAX_PAYLOAD_BYTES {
            return Err(StoreError::RecordTooLarge {
                size: payload.len(),
                limit: MAX_PAYLOAD_BYTES,
            });
        }
        let mut inner = self.inner.lock().expect("store mutex");
        self.heal_locked(&mut inner)?;
        let seq = inner.next_seq;
        let frame = frame::encode(seq, payload);
        if inner.segment_records > 0
            && inner.segment_bytes + frame.len() as u64 > self.options.max_segment_bytes
        {
            if let Err(err) = self.rotate(&mut inner, seq) {
                return Err(self.poison(&mut inner, err));
            }
        }
        if let Err(err) = self.write_frame(&mut inner, seq, &frame) {
            return Err(self.poison(&mut inner, err));
        }
        inner.segment_bytes += frame.len() as u64;
        inner.segment_records += 1;
        inner.next_seq += 1;
        inner.since_snapshot += 1;
        inner.dirty = true;
        match self.options.sync {
            SyncPolicy::Always => {
                if let Err(err) = self.segment_sync(&mut inner) {
                    Self::roll_back_append(&mut inner, frame.len());
                    return Err(self.poison(&mut inner, err));
                }
                inner.last_sync = Instant::now();
                inner.dirty = false;
            }
            SyncPolicy::Interval(window) => {
                if inner.last_sync.elapsed() >= window {
                    if let Err(err) = self.segment_sync(&mut inner) {
                        Self::roll_back_append(&mut inner, frame.len());
                        return Err(self.poison(&mut inner, err));
                    }
                    inner.last_sync = Instant::now();
                    inner.dirty = false;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(seq)
    }

    /// Undoes the bookkeeping of the append in flight after its flush
    /// failed, so a failed append uniformly leaves no record behind:
    /// the sequence number is reused by the next attempt and the
    /// frame's bytes fall inside the range [`Self::poison`] truncates
    /// away. Without this, a sync-failed append would strand an
    /// un-acked record on disk and open a gap between what the caller
    /// believes exists and what followers are shipped.
    fn roll_back_append(inner: &mut Inner, frame_len: usize) {
        inner.segment_bytes -= frame_len as u64;
        inner.segment_records -= 1;
        inner.next_seq -= 1;
        inner.since_snapshot -= 1;
    }

    /// Flushes the current segment's data, honouring any scheduled
    /// fsync fault. Every segment-data sync must go through here so a
    /// failure can poison the writer at its caller.
    fn segment_sync(&self, inner: &mut Inner) -> std::io::Result<()> {
        if let Some(plan) = &self.options.fault_plan {
            if plan.fsync_fails() {
                return Err(std::io::Error::other("injected fsync failure"));
            }
        }
        inner.file.sync_data()
    }

    /// Writes one encoded frame, honouring the fault-injection knobs.
    fn write_frame(&self, inner: &mut Inner, seq: u64, frame: &[u8]) -> std::io::Result<()> {
        if let Some(fault) = self.options.append_fault {
            if fault.at_seq == seq {
                return Self::torn_write(inner, frame, fault.partial_bytes);
            }
        }
        if let Some(plan) = &self.options.fault_plan {
            match plan.disk_fault(seq) {
                Some(DiskFault::AppendError) => {
                    return Err(std::io::Error::other("injected append error (EIO)"));
                }
                Some(DiskFault::TornWrite { bytes }) => {
                    return Self::torn_write(inner, frame, bytes);
                }
                None => {}
            }
        }
        inner.file.write_all(frame)
    }

    /// Lands `partial_bytes` of the frame, makes the damage durable the
    /// way a real torn write would be, and fails as if the disk filled.
    fn torn_write(inner: &mut Inner, frame: &[u8], partial_bytes: usize) -> std::io::Result<()> {
        let cut = partial_bytes.min(frame.len());
        inner.file.write_all(&frame[..cut])?;
        let _ = inner.file.sync_data(); // make the half-frame durable, like a real torn write
        Err(std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            "injected append fault (disk full)",
        ))
    }

    /// Rolls the segment back to its last intact frame and marks the
    /// writer poisoned. Returns the error to hand the caller.
    ///
    /// The poison is cleared again by [`Self::heal_locked`] once a
    /// truncate + flush of the segment succeeds — it marks "the disk is
    /// currently untrustworthy", not "this store is dead".
    fn poison(&self, inner: &mut Inner, err: std::io::Error) -> StoreError {
        // Cut away whatever fraction of the frame (or sync state) is in
        // doubt. If even the truncate fails, recovery's torn-tail repair
        // is the backstop — the poison flag keeps this process from
        // writing past the damage either way.
        let _ = (|| -> std::io::Result<()> {
            inner.file.set_len(inner.segment_bytes)?;
            inner.file.sync_data()
        })();
        inner.poisoned = Some(err.to_string());
        StoreError::Io(err)
    }

    /// Attempts to clear the poison: truncates the segment back to the
    /// last intact frame and flushes, proving the disk accepts writes
    /// again. A no-op when the writer is healthy. Because the segment
    /// file is open in append mode, the next write after a successful
    /// `set_len` lands at the new end of file — no repositioning needed.
    fn heal_locked(&self, inner: &mut Inner) -> Result<(), StoreError> {
        if inner.poisoned.is_none() {
            return Ok(());
        }
        let attempt = (|| -> std::io::Result<()> {
            inner.file.set_len(inner.segment_bytes)?;
            self.segment_sync(inner)
        })();
        match attempt {
            Ok(()) => {
                inner.poisoned = None;
                inner.last_sync = Instant::now();
                inner.dirty = false;
                Ok(())
            }
            Err(err) => {
                let cause = err.to_string();
                inner.poisoned = Some(cause.clone());
                Err(StoreError::Poisoned { cause })
            }
        }
    }

    /// Whether the writer is poisoned, and by what. `None` means
    /// appends are being accepted.
    #[must_use]
    pub fn poisoned(&self) -> Option<String> {
        self.inner.lock().expect("store mutex").poisoned.clone()
    }

    /// Tries to recover a poisoned writer without reopening the store:
    /// truncates the active segment back to the last intact frame and
    /// flushes it. Returns `Ok(false)` when the writer was not poisoned,
    /// `Ok(true)` when the poison was cleared.
    ///
    /// This is the self-recovery seam degraded-mode serving retries
    /// with backoff until the disk heals.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Poisoned`] when the disk still refuses the
    /// truncate or flush; the writer stays poisoned.
    pub fn try_heal(&self) -> Result<bool, StoreError> {
        let mut inner = self.inner.lock().expect("store mutex");
        if inner.poisoned.is_none() {
            return Ok(false);
        }
        self.heal_locked(&mut inner)?;
        Ok(true)
    }

    /// Path of the segment currently being appended to. Everything else
    /// matching `wal-*.log` in the directory is sealed — safe for the
    /// scrubber to read and, if damaged, quarantine.
    #[must_use]
    pub fn active_segment(&self) -> PathBuf {
        self.inner.lock().expect("store mutex").segment_path.clone()
    }

    /// Quarantines the sealed segment whose first record is `first_seq`:
    /// renames `wal-{first_seq}.log` to `wal-{first_seq}.log.quarantine`
    /// and flushes the directory. The quarantined file is invisible to
    /// recovery, compaction, and snapshot installs (all of which match
    /// the `.log` suffix exactly), so the evidence of what was on disk
    /// is never deleted — repair replaces the history *around* it.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the segment is the active one
    /// (quarantining the write head would corrupt the log) or the
    /// rename fails.
    pub fn quarantine_segment(&self, first_seq: u64) -> Result<PathBuf, StoreError> {
        let inner = self.inner.lock().expect("store mutex");
        let path = self.dir.join(segment_name(first_seq));
        if path == inner.segment_path {
            return Err(StoreError::Io(std::io::Error::other(format!(
                "refusing to quarantine the active segment {}",
                path.display()
            ))));
        }
        let quarantined = path.with_extension("log.quarantine");
        std::fs::rename(&path, &quarantined)?;
        sync_dir(&self.dir)?;
        Ok(quarantined)
    }

    /// Rotates to a fresh segment starting at `first_seq`.
    fn rotate(&self, inner: &mut Inner, first_seq: u64) -> std::io::Result<()> {
        // Seal the old segment: flush it unless the caller opted out of
        // durability entirely.
        if !matches!(self.options.sync, SyncPolicy::Never) {
            self.segment_sync(inner)?;
        }
        let path = self.dir.join(segment_name(first_seq));
        inner.file = OpenOptions::new().create(true).append(true).open(&path)?;
        inner.segment_path = path;
        inner.segment_bytes = 0;
        inner.segment_records = 0;
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    ///
    /// A failed fsync poisons the writer exactly as a failed append
    /// does, because records appended since the last successful flush
    /// are in doubt — an acked write must never be allowed to follow a
    /// silently-failed flush. The poison clears once a later append (or
    /// [`EventStore::try_heal`]) truncates and flushes successfully.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on sync failure (and poisons the
    /// writer) and [`StoreError::Poisoned`] after an earlier failure.
    pub fn sync(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("store mutex");
        if let Some(cause) = &inner.poisoned {
            return Err(StoreError::Poisoned {
                cause: cause.clone(),
            });
        }
        if let Err(err) = self.segment_sync(&mut inner) {
            return Err(self.poison(&mut inner, err));
        }
        inner.last_sync = Instant::now();
        inner.dirty = false;
        Ok(())
    }

    /// The durable replication epoch, [`INITIAL_EPOCH`] when never set.
    ///
    /// The epoch fences failover: a promoted follower bumps it, and any
    /// record or leader claiming a lower epoch is stale and must be
    /// refused. Reads are lock-free.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Durably records a new replication epoch (atomic write: temp
    /// sibling + fsync + rename + directory fsync). The epoch survives
    /// crash and restart — a deposed primary that comes back finds the
    /// higher epoch on disk and must demote itself.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure; the previous
    /// epoch file survives a failed attempt.
    pub fn set_epoch(&self, epoch: u64) -> Result<(), StoreError> {
        // Serialize against other epoch writes and appends.
        let _inner = self.inner.lock().expect("store mutex");
        write_epoch_file(&self.dir, epoch)?;
        self.epoch.store(epoch, Ordering::SeqCst);
        Ok(())
    }

    /// The sequence number the next append will get.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().expect("store mutex").next_seq
    }

    /// Records appended since the last snapshot (or open).
    #[must_use]
    pub fn events_since_snapshot(&self) -> u64 {
        self.inner.lock().expect("store mutex").since_snapshot
    }

    /// Writes a snapshot covering every record appended so far, then
    /// compacts: all existing segments are deleted and the log restarts
    /// in a fresh segment.
    ///
    /// The caller owns the payload format and must guarantee it really
    /// captures the effect of every record with seq < [`EventStore::next_seq`];
    /// callers should quiesce appends for the duration (the store's own
    /// mutex is held, so concurrent `append`s block either way).
    ///
    /// The write is atomic — temp sibling, fsync, rename, directory
    /// fsync — so readers and recovery see either the old complete
    /// snapshot or the new complete snapshot, never a prefix.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure; the previous
    /// snapshot (if any) survives a failed attempt.
    pub fn snapshot(&self, payload: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("store mutex");
        if let Some(cause) = &inner.poisoned {
            return Err(StoreError::Poisoned {
                cause: cause.clone(),
            });
        }
        let last_seq = inner.next_seq - 1;
        let final_path = self.dir.join(snapshot_name(last_seq));
        let tmp_path = self.dir.join(format!(
            ".{}.tmp.{}",
            snapshot_name(last_seq),
            std::process::id()
        ));
        let result = (|| {
            let mut file = File::create(&tmp_path)?;
            file.write_all(payload)?;
            file.sync_all()?;
            std::fs::rename(&tmp_path, &final_path)?;
            sync_dir(&self.dir)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(result.expect_err("checked").into());
        }

        // The snapshot is durable: drop everything it covers.
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            let stale_segment = parse_numbered(&name, "wal-", ".log").is_some();
            let stale_snapshot =
                parse_numbered(&name, "snapshot-", ".snap").is_some_and(|seq| seq < last_seq);
            if stale_segment || stale_snapshot {
                let _ = std::fs::remove_file(self.dir.join(&name));
            }
        }
        let path = self.dir.join(segment_name(inner.next_seq));
        inner.file = OpenOptions::new().create(true).append(true).open(&path)?;
        inner.segment_path = path;
        inner.segment_bytes = 0;
        inner.segment_records = 0;
        inner.since_snapshot = 0;
        inner.dirty = false;
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// Replaces the store's entire history with a snapshot received from
    /// elsewhere (a replication bootstrap), asserting it covers every
    /// record with seq ≤ `last_seq`. All local segments and older
    /// snapshots are discarded and the writer restarts at
    /// `last_seq + 1` — after this, local appends carry the *same*
    /// sequence numbers as the source's records, which is what lets a
    /// follower mirror its primary's WAL byte for byte.
    ///
    /// The snapshot write itself is atomic (temp sibling + fsync +
    /// rename + directory fsync), so a crash mid-install recovers to
    /// either the old history or the new snapshot, never a mix.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure and
    /// [`StoreError::Poisoned`] after a failed append.
    pub fn install_snapshot(&self, payload: &[u8], last_seq: u64) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("store mutex");
        if let Some(cause) = &inner.poisoned {
            return Err(StoreError::Poisoned {
                cause: cause.clone(),
            });
        }
        let final_path = self.dir.join(snapshot_name(last_seq));
        let tmp_path = self.dir.join(format!(
            ".{}.tmp.{}",
            snapshot_name(last_seq),
            std::process::id()
        ));
        let result = (|| {
            let mut file = File::create(&tmp_path)?;
            file.write_all(payload)?;
            file.sync_all()?;
            std::fs::rename(&tmp_path, &final_path)?;
            sync_dir(&self.dir)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(result.expect_err("checked").into());
        }

        // The installed snapshot supersedes every local artifact:
        // segments (whatever their seqs meant locally) and any snapshot
        // not named exactly `last_seq`.
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            let stale_segment = parse_numbered(&name, "wal-", ".log").is_some();
            let stale_snapshot =
                parse_numbered(&name, "snapshot-", ".snap").is_some_and(|seq| seq != last_seq);
            if stale_segment || stale_snapshot {
                let _ = std::fs::remove_file(self.dir.join(&name));
            }
        }
        let next_seq = last_seq + 1;
        let path = self.dir.join(segment_name(next_seq));
        inner.file = OpenOptions::new().create(true).append(true).open(&path)?;
        inner.segment_path = path;
        inner.segment_bytes = 0;
        inner.segment_records = 0;
        inner.next_seq = next_seq;
        inner.since_snapshot = 0;
        inner.dirty = false;
        sync_dir(&self.dir)?;
        Ok(())
    }
}

impl Drop for EventStore {
    fn drop(&mut self) {
        // Best-effort flush so a graceful shutdown never loses the tail
        // under the interval/never policies.
        if let Ok(inner) = self.inner.lock() {
            if inner.dirty {
                let _ = inner.file.sync_data();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mine-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn payloads(recovered: &Recovered) -> Vec<String> {
        recovered
            .events
            .iter()
            .map(|r| String::from_utf8(r.payload.clone()).unwrap())
            .collect()
    }

    #[test]
    fn append_reopen_round_trip() {
        let dir = temp_dir("roundtrip");
        {
            let (store, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
            assert!(recovered.events.is_empty());
            assert!(recovered.snapshot.is_none());
            assert_eq!(store.append(b"one").unwrap(), 1);
            assert_eq!(store.append(b"two").unwrap(), 2);
            assert_eq!(store.append(b"three").unwrap(), 3);
        }
        let (store, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(payloads(&recovered), ["one", "two", "three"]);
        assert!(recovered.warnings.is_empty());
        assert_eq!(store.next_seq(), 4);
        assert_eq!(store.append(b"four").unwrap(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_recovery_reads_across_them() {
        let dir = temp_dir("rotate");
        let options = StoreOptions {
            max_segment_bytes: 64,
            ..StoreOptions::default()
        };
        let (store, _) = EventStore::open(&dir, options.clone()).unwrap();
        for i in 0..10 {
            store.append(format!("record-{i}").as_bytes()).unwrap();
        }
        drop(store);
        let segment_files = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("wal-")
            })
            .count();
        assert!(segment_files > 1, "expected rotation, got one segment");
        let (_, recovered) = EventStore::open(&dir, options).unwrap();
        assert_eq!(recovered.events.len(), 10);
        assert_eq!(recovered.segments, segment_files);
        assert_eq!(
            payloads(&recovered),
            (0..10).map(|i| format!("record-{i}")).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_segments_and_recovery_replays_snapshot_plus_tail() {
        let dir = temp_dir("snapshot");
        let (store, _) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..5 {
            store.append(format!("pre-{i}").as_bytes()).unwrap();
        }
        store.snapshot(b"state-after-5").unwrap();
        assert_eq!(store.events_since_snapshot(), 0);
        store.append(b"tail-0").unwrap();
        store.append(b"tail-1").unwrap();
        drop(store);

        let (store, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        let snapshot = recovered.snapshot.as_ref().unwrap();
        assert_eq!(snapshot.last_seq, 5);
        assert_eq!(snapshot.payload, b"state-after-5");
        assert_eq!(payloads(&recovered), ["tail-0", "tail-1"]);
        assert_eq!(store.next_seq(), 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_snapshot_covering_no_events_is_valid() {
        let dir = temp_dir("empty-snap");
        let (store, _) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        store.snapshot(b"empty-state").unwrap();
        drop(store);
        let (store, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recovered.snapshot.as_ref().unwrap().last_seq, 0);
        assert!(recovered.events.is_empty());
        assert_eq!(store.append(b"first").unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interval_policy_syncs_after_the_window() {
        let dir = temp_dir("interval");
        let options = StoreOptions {
            sync: SyncPolicy::Interval(Duration::from_millis(10)),
            ..StoreOptions::default()
        };
        let (store, _) = EventStore::open(&dir, options).unwrap();
        store.append(b"a").unwrap();
        std::thread::sleep(Duration::from_millis(15));
        store.append(b"b").unwrap(); // window elapsed → this append syncs
        store.sync().unwrap(); // and explicit sync always works
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_records_are_rejected() {
        let dir = temp_dir("oversize");
        let (store, _) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        let huge = vec![0_u8; MAX_PAYLOAD_BYTES + 1];
        assert!(matches!(
            store.append(&huge),
            Err(StoreError::RecordTooLarge { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_defaults_and_survives_reopen() {
        let dir = temp_dir("epoch");
        {
            let (store, _) = EventStore::open(&dir, StoreOptions::default()).unwrap();
            assert_eq!(store.epoch(), INITIAL_EPOCH);
            store.set_epoch(7).unwrap();
            assert_eq!(store.epoch(), 7);
        }
        let (store, _) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.epoch(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_poisons_the_writer_and_leaves_no_half_frame() {
        let dir = temp_dir("poison");
        let options = StoreOptions {
            append_fault: Some(AppendFault {
                at_seq: 3,
                partial_bytes: 9, // mid-header: worst-case torn write
            }),
            ..StoreOptions::default()
        };
        let (store, _) = EventStore::open(&dir, options).unwrap();
        store.append(b"one").unwrap();
        store.append(b"two").unwrap();
        let err = store.append(b"doomed").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
        // While poisoned, sync and snapshot refuse.
        assert!(store.poisoned().is_some());
        assert!(matches!(store.sync(), Err(StoreError::Poisoned { .. })));
        assert!(matches!(
            store.snapshot(b"img"),
            Err(StoreError::Poisoned { .. })
        ));
        // A retried append heals the writer first, then re-hits the
        // (persistent, seq-keyed) fault — the caller sees the fresh I/O
        // error each time, never a stale poison.
        assert!(matches!(store.append(b"after"), Err(StoreError::Io(_))));
        drop(store);
        // Recovery sees exactly the two intact records — the half-frame
        // was truncated away, so there is no torn-tail warning either.
        let (store, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(payloads(&recovered), ["one", "two"]);
        assert!(recovered.warnings.is_empty(), "{:?}", recovered.warnings);
        assert_eq!(store.append(b"three").unwrap(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn install_snapshot_rebases_history_and_sequence_numbers() {
        let dir = temp_dir("install");
        let (store, _) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        // Local history that the installed snapshot must wipe out.
        store.append(b"local-1").unwrap();
        store.append(b"local-2").unwrap();
        store.install_snapshot(b"primary-image", 41).unwrap();
        // The next append continues the *primary's* numbering.
        assert_eq!(store.next_seq(), 42);
        assert_eq!(store.append(b"tail-42").unwrap(), 42);
        drop(store);

        let (store, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        let snapshot = recovered.snapshot.as_ref().unwrap();
        assert_eq!(snapshot.last_seq, 41);
        assert_eq!(snapshot.payload, b"primary-image");
        assert_eq!(payloads(&recovered), ["tail-42"]);
        assert_eq!(recovered.events[0].seq, 42);
        assert_eq!(store.next_seq(), 43);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_fsync_poisons_the_writer_until_a_later_append_heals_it() {
        let dir = temp_dir("fsync-poison");
        let options = StoreOptions {
            sync: SyncPolicy::Never, // only the explicit sync() below counts
            fault_plan: Some(std::sync::Arc::new(
                FaultPlan::parse("disk.fsync_err@1").unwrap(),
            )),
            ..StoreOptions::default()
        };
        let (store, _) = EventStore::open(&dir, options).unwrap();
        store.append(b"acked-before-flush").unwrap();
        let err = store.sync().unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
        // Poisoned: no acked write can follow the silently-failed
        // flush until the disk proves itself again.
        assert!(store.poisoned().is_some());
        assert!(matches!(
            store.snapshot(b"img"),
            Err(StoreError::Poisoned { .. })
        ));
        // The next append re-runs the truncate-and-flush recovery; only
        // fsync #1 was scheduled to fail, so the poison clears and the
        // append lands.
        assert_eq!(store.append(b"after-heal").unwrap(), 2);
        assert!(store.poisoned().is_none());
        store.sync().unwrap();
        drop(store);
        let (store, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(payloads(&recovered), ["acked-before-flush", "after-heal"]);
        assert_eq!(store.append(b"after-reopen").unwrap(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_failure_under_always_rolls_back_the_append_and_self_heals() {
        // The regression for the permanent-poison bug: with
        // `SyncPolicy::Always`, an append whose *flush* fails must
        // (a) not ack, (b) leave no record behind for its sequence
        // number, and (c) not poison the store forever once the disk
        // heals.
        let dir = temp_dir("fsync-rollback");
        let options = StoreOptions {
            sync: SyncPolicy::Always,
            fault_plan: Some(std::sync::Arc::new(
                FaultPlan::parse("disk.fsync_err@1").unwrap(),
            )),
            ..StoreOptions::default()
        };
        let (store, _) = EventStore::open(&dir, options).unwrap();
        let err = store.append(b"doomed").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
        assert!(store.poisoned().is_some());
        // Explicit heal (the degraded-mode retry seam): fsync #2
        // succeeds, so the poison clears.
        assert!(store.try_heal().unwrap());
        assert!(store.poisoned().is_none());
        assert!(!store.try_heal().unwrap(), "already healthy: no-op");
        // The failed append was rolled back — seq 1 is reused.
        assert_eq!(store.append(b"first").unwrap(), 1);
        drop(store);
        // No half-frame and no phantom record: recovery sees exactly
        // the one acked append, with nothing to repair.
        let (_, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(payloads(&recovered), ["first"]);
        assert!(recovered.warnings.is_empty(), "{:?}", recovered.warnings);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_plan_append_error_poisons_without_a_half_frame() {
        let dir = temp_dir("plan-append-err");
        let options = StoreOptions {
            fault_plan: Some(std::sync::Arc::new(
                FaultPlan::parse("disk.append_err@2").unwrap(),
            )),
            ..StoreOptions::default()
        };
        let (store, _) = EventStore::open(&dir, options).unwrap();
        store.append(b"one").unwrap();
        let err = store.append(b"doomed").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
        // The retry heals, reuses seq 2, and re-hits the seq-keyed
        // fault: a fresh I/O error, not a stale poison.
        assert!(matches!(store.append(b"after"), Err(StoreError::Io(_))));
        drop(store);
        let (store, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(payloads(&recovered), ["one"]);
        assert!(recovered.warnings.is_empty(), "{:?}", recovered.warnings);
        assert_eq!(store.append(b"two").unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_plan_torn_write_matches_the_legacy_append_fault() {
        let dir = temp_dir("plan-torn");
        let options = StoreOptions {
            fault_plan: Some(std::sync::Arc::new(
                FaultPlan::parse("disk.torn@3:9").unwrap(),
            )),
            ..StoreOptions::default()
        };
        let (store, _) = EventStore::open(&dir, options).unwrap();
        store.append(b"one").unwrap();
        store.append(b"two").unwrap();
        assert!(matches!(store.append(b"doomed"), Err(StoreError::Io(_))));
        drop(store);
        // The half-frame was truncated at fault time: recovery is clean.
        let (_, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(payloads(&recovered), ["one", "two"]);
        assert!(recovered.warnings.is_empty(), "{:?}", recovered.warnings);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_renames_sealed_segments_and_refuses_the_active_one() {
        let dir = temp_dir("quarantine");
        let options = StoreOptions {
            max_segment_bytes: 64,
            ..StoreOptions::default()
        };
        let (store, _) = EventStore::open(&dir, options).unwrap();
        for i in 0..10 {
            store.append(format!("record-{i}").as_bytes()).unwrap();
        }
        let active = store.active_segment();
        let active_first = parse_numbered(
            &active.file_name().unwrap().to_string_lossy(),
            "wal-",
            ".log",
        )
        .unwrap();
        assert!(active_first > 1, "rotation sealed at least one segment");
        // Sealed segment 1 quarantines by rename: evidence kept.
        let quarantined = store.quarantine_segment(1).unwrap();
        assert!(quarantined.exists());
        assert!(!dir.join(segment_name(1)).exists());
        // The active segment is refused.
        assert!(store.quarantine_segment(active_first).is_err());
        // A snapshot install (the repair path) wipes `.log` segments
        // but leaves the quarantined evidence alone.
        store.install_snapshot(b"repaired-image", 20).unwrap();
        assert!(quarantined.exists(), "quarantine survives repair");
        drop(store);
        let (store, recovered) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recovered.snapshot.as_ref().unwrap().last_seq, 20);
        assert_eq!(store.next_seq(), 21);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_policy_parses_cli_spellings() {
        assert_eq!(SyncPolicy::parse("always").unwrap(), SyncPolicy::Always);
        assert_eq!(SyncPolicy::parse("never").unwrap(), SyncPolicy::Never);
        assert_eq!(
            SyncPolicy::parse("interval").unwrap(),
            SyncPolicy::Interval(Duration::from_millis(100))
        );
        assert_eq!(
            SyncPolicy::parse("interval:250").unwrap(),
            SyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(SyncPolicy::parse("sometimes").is_err());
        assert!(SyncPolicy::parse("interval:abc").is_err());
    }
}
