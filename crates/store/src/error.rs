//! Failure modes of the event-log store.

use std::fmt;

/// What went wrong inside the store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The log is damaged in a way recovery must not paper over: a
    /// corrupt record in the *middle* of the committed history (torn
    /// tails are repaired, not reported as corruption).
    Corrupt {
        /// Which file the damage was found in.
        file: String,
        /// Byte offset of the damaged frame.
        offset: u64,
        /// What exactly failed to check out.
        reason: String,
    },
    /// An appended record exceeds the frame format's size limit.
    RecordTooLarge {
        /// Size of the rejected payload.
        size: usize,
        /// The limit it exceeded.
        limit: usize,
    },
    /// A previous append failed mid-write (`ENOSPC`, `EIO`, …) or an
    /// fsync failed, and the segment writer refused further appends.
    /// The on-disk tail was truncated back to the last intact frame, so
    /// nothing half-written is ever visible to recovery or replication.
    /// The poison clears as soon as a truncate + flush of the segment
    /// succeeds again — retried automatically by the next append, or
    /// explicitly via `EventStore::try_heal` — so a transient disk
    /// failure degrades the store rather than killing it.
    Poisoned {
        /// Display form of the I/O error that poisoned the writer.
        cause: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store I/O error: {err}"),
            StoreError::Corrupt {
                file,
                offset,
                reason,
            } => {
                write!(f, "corrupt log: {reason} ({file} at offset {offset})")
            }
            StoreError::RecordTooLarge { size, limit } => {
                write!(f, "record of {size} bytes exceeds the {limit}-byte limit")
            }
            StoreError::Poisoned { cause } => {
                write!(
                    f,
                    "segment writer poisoned by an earlier failed append ({cause}); heals when the disk accepts writes again"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}
