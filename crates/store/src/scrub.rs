//! Integrity scrubbing: re-verifies the CRCs and framing of sealed WAL
//! segments and the newest snapshot, and condenses intact history into
//! comparable *range hashes*.
//!
//! A scrub pass is the read-only half of anti-entropy. It never
//! mutates the store; it reports, per sealed segment, whether every
//! frame still decodes and checksums, and folds each `(seq, payload)`
//! pair into a fixed-width sequence window ([`RANGE_WINDOW`] records
//! per window, FNV-1a over `seq ‖ payload`). Two nodes whose windows
//! cover the same sequence range with the same record count but hash
//! differently have byte-divergent history there — the signature of
//! silent corruption that frame CRCs alone cannot place, because both
//! sides' frames may be internally consistent.
//!
//! The same pass runs in three places:
//!
//! - online, from the server's background scrubber (the active segment
//!   is excluded — the write head moves under a live scan);
//! - offline, from `mine scrub <dir>` (no active segment: the last
//!   segment's torn tail is tolerated exactly like recovery does);
//! - on demand, from `GET /admin/ranges`, to serve the integrity table
//!   peers compare against.
//!
//! Scrubbing races benignly with compaction: a snapshot install may
//! delete a segment between the directory listing and the read, so a
//! vanished file is skipped, never reported as damage.

use std::collections::BTreeMap;
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::StoreError;
use crate::fault::FaultPlan;
use crate::frame::{self, ScanEnd};
use crate::log::{parse_numbered, segment_name};

/// Records per range-hash window. Window `w` covers sequence numbers
/// `[w·WINDOW + 1, (w+1)·WINDOW]`, so windows computed independently on
/// two nodes line up without coordination.
pub const RANGE_WINDOW: u64 = 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// First sequence number of the window containing `seq`.
#[must_use]
pub fn window_first(seq: u64) -> u64 {
    ((seq - 1) / RANGE_WINDOW) * RANGE_WINDOW + 1
}

/// The incremental hash of one sequence window's `(seq, payload)`
/// records, plus the exact range it covers so peers only compare
/// like with like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeHash {
    /// First sequence number of the window (inclusive).
    pub first_seq: u64,
    /// Last sequence number actually folded in (inclusive).
    pub last_seq: u64,
    /// Records folded into the hash.
    pub count: u64,
    /// FNV-1a 64-bit over each record's `seq (LE) ‖ payload`, in
    /// sequence order.
    pub hash: u64,
}

/// The verdict on one sealed WAL segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentReport {
    /// File name (`wal-….log`).
    pub file: String,
    /// First sequence number encoded in the name.
    pub first_seq: u64,
    /// Intact records decoded.
    pub records: u64,
    /// Segment size in bytes.
    pub bytes: u64,
    /// `None` when every frame verified; otherwise what failed.
    pub corrupt: Option<String>,
}

/// The verdict on the newest snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotReport {
    /// File name (`snapshot-….snap`).
    pub file: String,
    /// The sequence number the snapshot claims to cover.
    pub last_seq: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// `None` when the payload read back fully; otherwise the error.
    pub corrupt: Option<String>,
}

/// Everything one scrub pass found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Per-segment verdicts, in sequence order.
    pub segments: Vec<SegmentReport>,
    /// Range hashes over every intact record seen, in window order.
    pub ranges: Vec<RangeHash>,
    /// The newest snapshot's verdict, when one exists.
    pub snapshot: Option<SnapshotReport>,
}

impl ScrubReport {
    /// True when no segment and no snapshot failed verification.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.corrupt_segments().is_empty()
            && self.snapshot.as_ref().is_none_or(|s| s.corrupt.is_none())
    }

    /// The segments that failed verification.
    #[must_use]
    pub fn corrupt_segments(&self) -> Vec<&SegmentReport> {
        self.segments
            .iter()
            .filter(|s| s.corrupt.is_some())
            .collect()
    }
}

/// Runs one scrub pass over the store directory at `dir`.
///
/// `active` names the segment currently being appended to; it is
/// skipped entirely (online mode). With `active = None` (offline mode,
/// no writer) every segment is scanned, and a torn tail on the *last*
/// one is tolerated — that is the shape a crash leaves and recovery
/// repairs, not corruption.
///
/// # Errors
///
/// Returns [`StoreError::Io`] only for directory-level failures;
/// per-file damage is reported in the result, and files that vanish
/// mid-pass (compaction won the race) are skipped.
pub fn scrub_dir(dir: &Path, active: Option<&Path>) -> Result<ScrubReport, StoreError> {
    let mut segment_seqs = Vec::new();
    let mut snapshot_seqs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name().to_string_lossy().into_owned();
        if let Some(seq) = parse_numbered(&name, "wal-", ".log") {
            segment_seqs.push(seq);
        } else if let Some(seq) = parse_numbered(&name, "snapshot-", ".snap") {
            snapshot_seqs.push(seq);
        }
    }
    segment_seqs.sort_unstable();
    snapshot_seqs.sort_unstable();

    let mut report = ScrubReport::default();
    let mut windows: BTreeMap<u64, RangeHash> = BTreeMap::new();
    let scanned: Vec<u64> = segment_seqs
        .iter()
        .copied()
        .filter(|&first_seq| active.is_none_or(|a| a != dir.join(segment_name(first_seq))))
        .collect();
    for (index, &first_seq) in scanned.iter().enumerate() {
        let file = segment_name(first_seq);
        let path = dir.join(&file);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            // Compaction deleted it between listing and read.
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => continue,
            Err(err) => return Err(err.into()),
        };
        let (frames, end) = frame::scan(&bytes);
        let tail_tolerated = active.is_none() && index == scanned.len() - 1;
        let corrupt = match end {
            ScanEnd::Clean => None,
            ScanEnd::Torn { .. } if tail_tolerated => None,
            ScanEnd::Torn { offset, reason } => Some(format!("torn at offset {offset}: {reason}")),
            ScanEnd::Corrupt { offset, reason } => {
                Some(format!("corrupt at offset {offset}: {reason}"))
            }
        };
        // Framing intact: also require in-segment sequence continuity
        // starting at the sequence number the file name promises.
        let continuity = corrupt.is_none().then(|| {
            for (expected, frame) in (first_seq..).zip(frames.iter()) {
                if frame.seq != expected {
                    return Some(format!(
                        "sequence gap at offset {}: expected {expected}, found {}",
                        frame.end_offset, frame.seq
                    ));
                }
            }
            None
        });
        let corrupt = corrupt.or(continuity.flatten());
        if corrupt.is_none() {
            for frame in &frames {
                let first = window_first(frame.seq);
                let entry = windows.entry(first).or_insert(RangeHash {
                    first_seq: first,
                    last_seq: 0,
                    count: 0,
                    hash: FNV_OFFSET,
                });
                entry.hash = fnv1a(entry.hash, &frame.seq.to_le_bytes());
                entry.hash = fnv1a(entry.hash, &frame.payload);
                entry.last_seq = frame.seq;
                entry.count += 1;
            }
        }
        report.segments.push(SegmentReport {
            file,
            first_seq,
            records: frames.len() as u64,
            bytes: bytes.len() as u64,
            corrupt,
        });
    }
    report.ranges = windows.into_values().collect();

    if let Some(&last_seq) = snapshot_seqs.last() {
        let file = crate::log::snapshot_name(last_seq);
        match std::fs::read(dir.join(&file)) {
            Ok(payload) => {
                report.snapshot = Some(SnapshotReport {
                    file,
                    last_seq,
                    bytes: payload.len() as u64,
                    corrupt: None,
                });
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
            Err(err) => {
                report.snapshot = Some(SnapshotReport {
                    file,
                    last_seq,
                    bytes: 0,
                    corrupt: Some(err.to_string()),
                });
            }
        }
    }
    Ok(report)
}

/// Window starts where `local` and `remote` disagree *inside the acked
/// prefix*: both sides cover the identical range (`first_seq`,
/// `last_seq`, `count` all equal, `last_seq ≤ acked`) yet hash
/// differently. Shape mismatches are never flagged — differing
/// compaction horizons legitimately leave one side with a partial
/// window — so a divergence verdict is always byte-level.
#[must_use]
pub fn diverging_windows(local: &[RangeHash], remote: &[RangeHash], acked: u64) -> Vec<u64> {
    let remote_by_first: BTreeMap<u64, &RangeHash> =
        remote.iter().map(|r| (r.first_seq, r)).collect();
    local
        .iter()
        .filter(|ours| {
            remote_by_first.get(&ours.first_seq).is_some_and(|theirs| {
                ours.last_seq <= acked
                    && theirs.last_seq == ours.last_seq
                    && theirs.count == ours.count
                    && theirs.hash != ours.hash
            })
        })
        .map(|ours| ours.first_seq)
        .collect()
}

/// The deterministic data-at-rest corruption seam: for every
/// `disk.bitrot@SEQ:BYTES` directive in `plan` whose record sits in a
/// *sealed* segment (never `active`), claims the fault and XOR-flips
/// `BYTES` payload bytes of that record in place. Returns the sequence
/// numbers struck.
///
/// # Errors
///
/// Returns the underlying I/O error when a flip fails mid-way; claimed
/// faults do not re-fire on retry, mirroring how real bit rot strikes
/// once.
pub fn inject_bitrot(
    dir: &Path,
    active: Option<&Path>,
    plan: &FaultPlan,
) -> std::io::Result<Vec<u64>> {
    let faults = plan.bitrot_faults();
    if faults.is_empty() {
        return Ok(Vec::new());
    }
    let mut segment_seqs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name().to_string_lossy().into_owned();
        if let Some(seq) = parse_numbered(&name, "wal-", ".log") {
            segment_seqs.push(seq);
        }
    }
    segment_seqs.sort_unstable();
    let mut struck = Vec::new();
    for &first_seq in &segment_seqs {
        let path = dir.join(segment_name(first_seq));
        if active.is_some_and(|a| a == path) {
            continue;
        }
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => continue,
            Err(err) => return Err(err),
        };
        let (frames, _) = frame::scan(&bytes);
        for frame in &frames {
            let Some((_, flip)) = faults.iter().find(|(seq, _)| *seq == frame.seq) else {
                continue;
            };
            if frame.payload.is_empty() {
                continue; // nothing to flip without breaking framing
            }
            if plan.claim_bitrot(frame.seq).is_none() {
                continue; // already struck in an earlier pass
            }
            let payload_start = frame.end_offset - frame.payload.len() as u64;
            let span = (*flip).min(frame.payload.len());
            let mut flipped = frame.payload[..span].to_vec();
            for byte in &mut flipped {
                *byte ^= 0xFF;
            }
            let mut file = std::fs::OpenOptions::new().write(true).open(&path)?;
            file.seek(SeekFrom::Start(payload_start))?;
            file.write_all(&flipped)?;
            file.sync_data()?;
            struck.push(frame.seq);
        }
    }
    struck.sort_unstable();
    Ok(struck)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{EventStore, StoreOptions};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mine-scrub-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_segments() -> StoreOptions {
        StoreOptions {
            max_segment_bytes: 64,
            ..StoreOptions::default()
        }
    }

    #[test]
    fn clean_store_scrubs_clean_online_and_offline() {
        let dir = temp_dir("clean");
        let (store, _) = EventStore::open(&dir, small_segments()).unwrap();
        for i in 0..12 {
            store.append(format!("record-{i}").as_bytes()).unwrap();
        }
        let online = scrub_dir(&dir, Some(&store.active_segment())).unwrap();
        assert!(online.is_clean(), "{online:?}");
        assert!(online.segments.len() > 1, "rotation sealed segments");
        let total: u64 = online.ranges.iter().map(|r| r.count).sum();
        let sealed: u64 = online.segments.iter().map(|s| s.records).sum();
        assert_eq!(total, sealed);
        drop(store);
        let offline = scrub_dir(&dir, None).unwrap();
        assert!(offline.is_clean(), "{offline:?}");
        assert_eq!(
            offline.ranges.iter().map(|r| r.count).sum::<u64>(),
            12,
            "offline pass hashes every record"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitrot_in_a_sealed_segment_is_detected_and_struck_once() {
        let dir = temp_dir("bitrot");
        let (store, _) = EventStore::open(&dir, small_segments()).unwrap();
        for i in 0..12 {
            store.append(format!("record-{i}").as_bytes()).unwrap();
        }
        let active = store.active_segment();
        let clean = scrub_dir(&dir, Some(&active)).unwrap();
        assert!(clean.is_clean());

        let plan = FaultPlan::parse("disk.bitrot@2:3").unwrap();
        let struck = inject_bitrot(&dir, Some(&active), &plan).unwrap();
        assert_eq!(struck, vec![2]);
        // Claimed: a second pass does not strike again.
        assert!(inject_bitrot(&dir, Some(&active), &plan)
            .unwrap()
            .is_empty());

        let dirty = scrub_dir(&dir, Some(&active)).unwrap();
        let corrupt = dirty.corrupt_segments();
        assert_eq!(corrupt.len(), 1, "{dirty:?}");
        assert_eq!(corrupt[0].first_seq, 1);
        // The corrupt segment contributes no range hashes.
        assert!(
            dirty.ranges.iter().map(|r| r.count).sum::<u64>()
                < clean.ranges.iter().map(|r| r.count).sum::<u64>()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn offline_scrub_tolerates_a_torn_tail_like_recovery_does() {
        let dir = temp_dir("torn-tail");
        let (store, _) = EventStore::open(&dir, StoreOptions::default()).unwrap();
        store.append(b"one").unwrap();
        store.append(b"two").unwrap();
        let active = store.active_segment();
        drop(store);
        // Chop the last frame mid-payload: the crash signature.
        let len = std::fs::metadata(&active).unwrap().len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&active)
            .unwrap();
        file.set_len(len - 2).unwrap();
        drop(file);
        let offline = scrub_dir(&dir, None).unwrap();
        assert!(offline.is_clean(), "{offline:?}");
        // Online, the same segment (now sealed from the scrubber's view)
        // is damage.
        let online = scrub_dir(&dir, Some(Path::new("/nonexistent"))).unwrap();
        assert!(!online.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn range_hashes_agree_iff_ranges_are_byte_equal() {
        let dir_a = temp_dir("ranges-a");
        let dir_b = temp_dir("ranges-b");
        for dir in [&dir_a, &dir_b] {
            let (store, _) = EventStore::open(dir, small_segments()).unwrap();
            for i in 0..10 {
                store.append(format!("record-{i}").as_bytes()).unwrap();
            }
        }
        let a = scrub_dir(&dir_a, None).unwrap();
        let b = scrub_dir(&dir_b, None).unwrap();
        assert_eq!(a.ranges, b.ranges);
        assert!(diverging_windows(&a.ranges, &b.ranges, 10).is_empty());

        // Re-encode record 5 with a different payload of equal length:
        // internally consistent frames, byte-divergent history — the
        // damage frame CRCs cannot see and range hashes exist to catch.
        let mut seg = None;
        for entry in std::fs::read_dir(&dir_b).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().into_owned();
            if name.starts_with("wal-") && name.ends_with(".log") {
                let bytes = std::fs::read(dir_b.join(&name)).unwrap();
                let (frames, _) = frame::scan(&bytes);
                if frames.iter().any(|f| f.seq == 5) {
                    seg = Some((dir_b.join(&name), frames));
                }
            }
        }
        let (path, frames) = seg.expect("segment holding seq 5");
        let mut rebuilt = Vec::new();
        for f in &frames {
            let payload = if f.seq == 5 {
                b"recorD-4".to_vec() // same length, different bytes
            } else {
                f.payload.clone()
            };
            rebuilt.extend_from_slice(&frame::encode(f.seq, &payload));
        }
        std::fs::write(&path, &rebuilt).unwrap();
        let b = scrub_dir(&dir_b, None).unwrap();
        assert!(b.is_clean(), "valid CRCs: frame scan cannot see this");
        assert_ne!(a.ranges, b.ranges, "range hashes can");
        assert_eq!(diverging_windows(&b.ranges, &a.ranges, 10), vec![1]);
        // Outside the acked prefix nothing is flagged.
        assert!(diverging_windows(&b.ranges, &a.ranges, 0).is_empty());
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }
}
