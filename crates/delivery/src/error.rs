//! Error type of exam delivery.

use std::error::Error as StdError;
use std::fmt;

use mine_itembank::BankError;

/// Errors raised while running an exam session.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeliveryError {
    /// The exam definition and supplied problems disagree.
    ProblemSetMismatch {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// The delivery options fail validation (e.g. a non-finite or
    /// non-positive time accommodation).
    InvalidOptions {
        /// Explanation of the rejected option.
        reason: String,
    },
    /// An operation was attempted in the wrong session state.
    WrongState {
        /// The operation attempted.
        operation: &'static str,
        /// The state the session was in.
        state: &'static str,
    },
    /// The test time limit has expired.
    TimeExpired,
    /// The session is not resumable but a checkpoint was requested.
    NotResumable,
    /// A checkpoint did not match the exam it was resumed against.
    CheckpointMismatch {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// Navigation past the ends of the exam.
    OutOfBounds,
    /// Grading failed (answer kind did not fit the problem).
    Grading(BankError),
}

impl fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliveryError::ProblemSetMismatch { reason } => {
                write!(f, "problem set mismatch: {reason}")
            }
            DeliveryError::InvalidOptions { reason } => {
                write!(f, "invalid delivery options: {reason}")
            }
            DeliveryError::WrongState { operation, state } => {
                write!(f, "cannot {operation} while session is {state}")
            }
            DeliveryError::TimeExpired => write!(f, "test time limit expired"),
            DeliveryError::NotResumable => write!(f, "session is not resumable"),
            DeliveryError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint mismatch: {reason}")
            }
            DeliveryError::OutOfBounds => write!(f, "navigation out of bounds"),
            DeliveryError::Grading(err) => write!(f, "grading failed: {err}"),
        }
    }
}

impl StdError for DeliveryError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            DeliveryError::Grading(err) => Some(err),
            _ => None,
        }
    }
}

impl From<BankError> for DeliveryError {
    fn from(err: BankError) -> Self {
        DeliveryError::Grading(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            DeliveryError::TimeExpired.to_string(),
            "test time limit expired"
        );
        let err = DeliveryError::WrongState {
            operation: "answer",
            state: "finished",
        };
        assert_eq!(err.to_string(), "cannot answer while session is finished");
    }
}
