//! Driving the SCORM RTE from a delivery session (§5.5).
//!
//! The paper's packages ship JavaScript that calls `LMSSetValue` for
//! "learner record, learner progress, learner status". [`RteBridge`]
//! performs those calls natively against [`mine_scorm::ApiAdapter`]:
//! one `LMSInitialize` when the sitting starts, one interaction record
//! per answer, and score/status/session-time on finish.

use std::time::Duration;

use mine_core::{Answer, StudentId, StudentRecord};
use mine_scorm::rte::format_timespan;
use mine_scorm::{ApiAdapter, CmiDataModel, ScormError};

/// Pass mark used to map a score to `passed`/`failed`.
pub const DEFAULT_PASS_MARK: f64 = 0.6;

/// Bridges a session's lifecycle onto a SCORM API adapter.
#[derive(Debug)]
pub struct RteBridge {
    api: ApiAdapter,
    interactions: usize,
    pass_mark: f64,
}

impl RteBridge {
    /// Launches the adapter for a learner and initializes it.
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::Api`] when initialization is rejected.
    pub fn launch(student: &StudentId, student_name: &str) -> Result<Self, ScormError> {
        let model = CmiDataModel::for_student(student.as_str(), student_name);
        Self::launch_with_model(model)
    }

    /// Launches over an existing model (e.g. a resumed attempt carrying
    /// accumulated total time).
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::Api`] when initialization is rejected.
    pub fn launch_with_model(model: CmiDataModel) -> Result<Self, ScormError> {
        let mut api = ApiAdapter::with_model(model);
        if api.lms_initialize("") != "true" {
            return Err(ScormError::Api(api.last_error()));
        }
        let mut bridge = Self {
            api,
            interactions: 0,
            pass_mark: DEFAULT_PASS_MARK,
        };
        bridge
            .set("cmi.core.lesson_status", "incomplete")
            .expect("fresh adapter accepts lesson_status");
        Ok(bridge)
    }

    /// Overrides the pass mark (fraction of max score).
    pub fn set_pass_mark(&mut self, pass_mark: f64) {
        assert!(
            (0.0..=1.0).contains(&pass_mark),
            "pass mark must be a fraction"
        );
        self.pass_mark = pass_mark;
    }

    fn set(&mut self, element: &str, value: &str) -> Result<(), ScormError> {
        self.api
            .lms_set_value(element, value)
            .map(|_| ())
            .map_err(|_| ScormError::Api(self.api.last_error()))
    }

    /// Records one answered question as a `cmi.interactions.n` entry.
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::Api`] when the adapter rejects a write.
    pub fn record_answer(
        &mut self,
        problem_id: &str,
        answer: &Answer,
        is_correct: bool,
        time_spent: Duration,
    ) -> Result<(), ScormError> {
        let n = self.interactions;
        let interaction_type = match answer {
            Answer::Choice(_) | Answer::MultiChoice(_) => "choice",
            Answer::TrueFalse(_) => "true-false",
            Answer::Text(_) | Answer::Completion(_) => "fill-in",
            Answer::Match(_) => "matching",
            Answer::Skipped => "choice",
        };
        let response = match answer {
            Answer::Choice(key) => key.letter().to_string(),
            Answer::MultiChoice(keys) => keys.iter().map(|k| k.letter()).collect(),
            Answer::TrueFalse(v) => if *v { "t" } else { "f" }.to_string(),
            Answer::Text(text) => text.chars().take(255).collect(),
            Answer::Completion(blanks) => blanks.join(","),
            Answer::Match(pairs) => pairs
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(","),
            Answer::Skipped => String::new(),
        };
        self.set(&format!("cmi.interactions.{n}.id"), problem_id)?;
        self.set(&format!("cmi.interactions.{n}.type"), interaction_type)?;
        self.set(&format!("cmi.interactions.{n}.student_response"), &response)?;
        self.set(
            &format!("cmi.interactions.{n}.result"),
            if is_correct { "correct" } else { "wrong" },
        )?;
        self.set(
            &format!("cmi.interactions.{n}.latency"),
            &format_timespan(time_spent),
        )?;
        self.interactions += 1;
        Ok(())
    }

    /// Finalizes the attempt from the graded record: score, status,
    /// session time, then `LMSFinish`.
    ///
    /// Consumes the bridge and returns the terminated adapter for
    /// inspection/export.
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::Api`] when a write or the finish call is
    /// rejected.
    pub fn finish(mut self, record: &StudentRecord) -> Result<ApiAdapter, ScormError> {
        let max = record.max_score();
        let percent = if max > 0.0 {
            (record.score() / max * 100.0).clamp(0.0, 100.0)
        } else {
            0.0
        };
        self.set("cmi.core.score.raw", &format!("{percent:.2}"))?;
        self.set("cmi.core.score.min", "0")?;
        self.set("cmi.core.score.max", "100")?;
        let status = if percent >= self.pass_mark * 100.0 {
            "passed"
        } else {
            "failed"
        };
        self.set("cmi.core.lesson_status", status)?;
        self.set("cmi.core.session_time", &format_timespan(record.total_time))?;
        if self.api.lms_finish("") != "true" {
            return Err(ScormError::Api(self.api.last_error()));
        }
        Ok(self.api)
    }

    /// Stores a suspend checkpoint and finishes with `exit = suspend`.
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::Api`] when a write is rejected (e.g. the
    /// checkpoint exceeds the 4096-char suspend_data limit).
    pub fn suspend(
        mut self,
        checkpoint_json: &str,
        elapsed: Duration,
    ) -> Result<ApiAdapter, ScormError> {
        self.set("cmi.suspend_data", checkpoint_json)?;
        self.set("cmi.core.exit", "suspend")?;
        self.set("cmi.core.session_time", &format_timespan(elapsed))?;
        if self.api.lms_finish("") != "true" {
            return Err(ScormError::Api(self.api.last_error()));
        }
        Ok(self.api)
    }

    /// Access to the live adapter (e.g. for `LMSGetValue` checks).
    #[must_use]
    pub fn api(&self) -> &ApiAdapter {
        &self.api
    }

    /// Interactions recorded so far.
    #[must_use]
    pub fn interaction_count(&self) -> usize {
        self.interactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::{ItemResponse, OptionKey};

    fn record(correct: usize, total: usize) -> StudentRecord {
        let responses = (0..total)
            .map(|i| {
                let pid = format!("q{i}").parse().unwrap();
                if i < correct {
                    ItemResponse::correct(pid, Answer::TrueFalse(true), 1.0)
                } else {
                    ItemResponse::incorrect(pid, Answer::TrueFalse(false), 1.0)
                }
            })
            .collect();
        let mut record = StudentRecord::new("s1".parse().unwrap(), responses);
        record.total_time = Duration::from_secs(300);
        record
    }

    #[test]
    fn launch_initializes_and_marks_incomplete() {
        let bridge = RteBridge::launch(&"s1".parse().unwrap(), "Alice").unwrap();
        assert_eq!(bridge.api().model().lesson_status, "incomplete");
        assert_eq!(bridge.api().model().student_id, "s1");
    }

    #[test]
    fn answers_become_interactions() {
        let mut bridge = RteBridge::launch(&"s1".parse().unwrap(), "Alice").unwrap();
        bridge
            .record_answer(
                "q1",
                &Answer::Choice(OptionKey::C),
                true,
                Duration::from_secs(42),
            )
            .unwrap();
        bridge
            .record_answer(
                "q2",
                &Answer::TrueFalse(false),
                false,
                Duration::from_secs(10),
            )
            .unwrap();
        assert_eq!(bridge.interaction_count(), 2);
        let model = bridge.api().model();
        assert_eq!(model.interactions[0].id, "q1");
        assert_eq!(model.interactions[0].student_response, "C");
        assert_eq!(model.interactions[0].result, "correct");
        assert_eq!(model.interactions[0].latency, "00:00:42.00");
        assert_eq!(model.interactions[1].result, "wrong");
        assert_eq!(model.interactions[1].student_response, "f");
    }

    #[test]
    fn finish_sets_score_status_and_time() {
        let bridge = RteBridge::launch(&"s1".parse().unwrap(), "Alice").unwrap();
        let api = bridge.finish(&record(8, 10)).unwrap();
        let model = api.model();
        assert_eq!(model.score_raw, Some(80.0));
        assert_eq!(model.lesson_status, "passed");
        assert_eq!(model.total_time, Duration::from_secs(300));
        assert_eq!(api.commit_count(), 1);
    }

    #[test]
    fn failing_score_maps_to_failed() {
        let bridge = RteBridge::launch(&"s1".parse().unwrap(), "Alice").unwrap();
        let api = bridge.finish(&record(5, 10)).unwrap();
        assert_eq!(api.model().lesson_status, "failed");
    }

    #[test]
    fn custom_pass_mark() {
        let mut bridge = RteBridge::launch(&"s1".parse().unwrap(), "Alice").unwrap();
        bridge.set_pass_mark(0.5);
        let api = bridge.finish(&record(5, 10)).unwrap();
        assert_eq!(api.model().lesson_status, "passed");
    }

    #[test]
    fn empty_record_scores_zero() {
        let bridge = RteBridge::launch(&"s1".parse().unwrap(), "Alice").unwrap();
        let api = bridge.finish(&record(0, 0)).unwrap();
        assert_eq!(api.model().score_raw, Some(0.0));
        assert_eq!(api.model().lesson_status, "failed");
    }

    #[test]
    fn suspend_stores_checkpoint() {
        let bridge = RteBridge::launch(&"s1".parse().unwrap(), "Alice").unwrap();
        let api = bridge
            .suspend("{\"cursor\":3}", Duration::from_secs(120))
            .unwrap();
        assert_eq!(api.model().suspend_data, "{\"cursor\":3}");
        assert_eq!(api.model().exit, "suspend");
        assert_eq!(api.model().total_time, Duration::from_secs(120));
    }

    #[test]
    fn oversized_suspend_data_is_rejected() {
        let bridge = RteBridge::launch(&"s1".parse().unwrap(), "Alice").unwrap();
        let huge = "x".repeat(5000);
        assert!(bridge.suspend(&huge, Duration::ZERO).is_err());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn pass_mark_must_be_fraction() {
        let mut bridge = RteBridge::launch(&"s1".parse().unwrap(), "A").unwrap();
        bridge.set_pass_mark(60.0);
    }
}
