//! One learner's exam sitting (§3.2-VI, §3.4-II).
//!
//! The session runs on a *logical clock*: every answer reports how long
//! the learner spent, and the session accumulates it. This keeps runs
//! deterministic — the simulator decides pacing, the tests replay it —
//! while still enforcing the exam's `test_time` limit exactly.

use std::collections::BTreeMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use mine_core::{Answer, ExamId, ItemResponse, ProblemId, SessionId, StudentId, StudentRecord};
use mine_itembank::{Exam, Problem};

use crate::error::DeliveryError;
use crate::order::presentation_order;

/// Options controlling a sitting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveryOptions {
    /// Seed for the presentation-order shuffle.
    pub seed: u64,
    /// Whether the learner may pause and resume ("Resumable: true means
    /// resumed and false means paused at a later time", §3.2-VI-B).
    pub resumable: bool,
    /// Accessibility accommodation: the exam's time limit is multiplied
    /// by this factor for the learner (1.0 = none; 1.5 = time-and-a-half).
    pub time_accommodation: f64,
}

impl DeliveryOptions {
    /// Largest accepted accommodation multiplier. Anything above this is
    /// surely a bug (and would overflow `Duration` arithmetic anyway).
    pub const MAX_TIME_ACCOMMODATION: f64 = 100.0;

    /// Checks the options for nonsense values.
    ///
    /// A non-finite or non-positive `time_accommodation` would silently
    /// produce a meaningless deadline (NaN-propagating or zero), so it is
    /// rejected up front.
    ///
    /// # Errors
    ///
    /// Returns [`DeliveryError::InvalidOptions`] when
    /// `time_accommodation` is NaN, infinite, zero or negative, or above
    /// [`DeliveryOptions::MAX_TIME_ACCOMMODATION`].
    pub fn validate(&self) -> Result<(), DeliveryError> {
        let factor = self.time_accommodation;
        if !factor.is_finite() {
            return Err(DeliveryError::InvalidOptions {
                reason: format!("time_accommodation must be finite, got {factor}"),
            });
        }
        if factor <= 0.0 {
            return Err(DeliveryError::InvalidOptions {
                reason: format!("time_accommodation must be positive, got {factor}"),
            });
        }
        if factor > Self::MAX_TIME_ACCOMMODATION {
            return Err(DeliveryError::InvalidOptions {
                reason: format!(
                    "time_accommodation {factor} exceeds the maximum {}",
                    Self::MAX_TIME_ACCOMMODATION
                ),
            });
        }
        Ok(())
    }
}

impl Default for DeliveryOptions {
    fn default() -> Self {
        Self {
            seed: 0,
            resumable: true,
            time_accommodation: 1.0,
        }
    }
}

/// Lifecycle state of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionState {
    /// Accepting answers.
    Active,
    /// Paused via checkpoint; a new session must be resumed from it.
    Paused,
    /// Finished; the record has been produced.
    Finished,
}

/// A pause checkpoint — everything needed to resume the sitting, small
/// enough to live in `cmi.suspend_data`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// The session identity.
    pub session: SessionId,
    /// The exam being sat.
    pub exam: ExamId,
    /// The learner.
    pub student: StudentId,
    /// The shuffle seed (restores the same presentation order).
    pub seed: u64,
    /// The accommodation multiplier in force when paused.
    pub time_accommodation: f64,
    /// Elapsed logical time at pause.
    pub elapsed: Duration,
    /// Index of the next unanswered position.
    pub cursor: usize,
    /// Answers recorded so far, by problem.
    pub answers: BTreeMap<ProblemId, RecordedAnswer>,
}

/// A recorded answer inside a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedAnswer {
    /// What the learner answered.
    pub answer: Answer,
    /// Time spent on the problem.
    pub time_spent: Duration,
    /// Logical offset from session start when committed.
    pub answered_at: Duration,
}

/// A complete serializable image of an [`ExamSession`] — every field,
/// including the problem set with its graders — used by the server's
/// durability layer to snapshot live sittings and rebuild them
/// byte-identically after a restart.
///
/// Unlike [`SessionCheckpoint`] (which is deliberately small and
/// rebuilt against the repository on resume), an image is
/// self-contained: restoring it needs nothing but the image itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionImage {
    /// The session identity.
    pub id: SessionId,
    /// The exam being sat.
    pub exam_id: ExamId,
    /// The learner.
    pub student: StudentId,
    /// The options the sitting was started with.
    pub options: DeliveryOptions,
    /// Problems keyed by id, graders included.
    pub problems: BTreeMap<ProblemId, Problem>,
    /// Exam-local point overrides.
    pub point_overrides: BTreeMap<ProblemId, f64>,
    /// Presentation order.
    pub order: Vec<ProblemId>,
    /// Answers recorded so far.
    pub answers: BTreeMap<ProblemId, RecordedAnswer>,
    /// Index of the next unanswered position.
    pub cursor: usize,
    /// Elapsed logical time.
    pub elapsed: Duration,
    /// Effective time limit (accommodation already applied), if any.
    pub time_limit: Option<Duration>,
    /// Lifecycle state.
    pub state: SessionState,
}

/// One learner sitting one exam.
#[derive(Debug, Clone)]
pub struct ExamSession {
    id: SessionId,
    exam_id: ExamId,
    student: StudentId,
    options: DeliveryOptions,
    /// Problems keyed by id (graders).
    problems: BTreeMap<ProblemId, Problem>,
    /// Exam-local point overrides.
    point_overrides: BTreeMap<ProblemId, f64>,
    /// Presentation order.
    order: Vec<ProblemId>,
    /// Answers so far.
    answers: BTreeMap<ProblemId, RecordedAnswer>,
    cursor: usize,
    elapsed: Duration,
    time_limit: Option<Duration>,
    state: SessionState,
}

impl ExamSession {
    /// Starts a fresh sitting.
    ///
    /// # Errors
    ///
    /// Returns [`DeliveryError::InvalidOptions`] when the options fail
    /// [`DeliveryOptions::validate`] and
    /// [`DeliveryError::ProblemSetMismatch`] when `problems` does
    /// not cover the exam's entries exactly.
    pub fn start(
        exam: &Exam,
        problems: Vec<Problem>,
        student: StudentId,
        options: DeliveryOptions,
    ) -> Result<Self, DeliveryError> {
        options.validate()?;
        let by_id: BTreeMap<ProblemId, Problem> =
            problems.into_iter().map(|p| (p.id().clone(), p)).collect();
        for entry in exam.entries() {
            if !by_id.contains_key(&entry.problem) {
                return Err(DeliveryError::ProblemSetMismatch {
                    reason: format!("exam entry {} has no problem", entry.problem),
                });
            }
        }
        let point_overrides = exam
            .entries()
            .iter()
            .filter_map(|e| e.points.map(|p| (e.problem.clone(), p)))
            .collect();
        let order = presentation_order(exam, options.seed);
        let id = SessionId::new(format!("{}#{}@{}", exam.id(), student, options.seed))
            .expect("constructed from valid ids");
        let time_limit = exam
            .meta()
            .test_time
            .map(|limit| limit.mul_f64(options.time_accommodation));
        Ok(Self {
            id,
            exam_id: exam.id().clone(),
            student,
            options,
            problems: by_id,
            point_overrides,
            order,
            answers: BTreeMap::new(),
            cursor: 0,
            elapsed: Duration::ZERO,
            time_limit,
            state: SessionState::Active,
        })
    }

    /// The session identifier.
    #[must_use]
    pub fn id(&self) -> &SessionId {
        &self.id
    }

    /// The exam being sat.
    #[must_use]
    pub fn exam_id(&self) -> &ExamId {
        &self.exam_id
    }

    /// The learner sitting the exam.
    #[must_use]
    pub fn student(&self) -> &StudentId {
        &self.student
    }

    /// The options the sitting was started with.
    #[must_use]
    pub fn options(&self) -> &DeliveryOptions {
        &self.options
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The presentation order for this sitting.
    #[must_use]
    pub fn order(&self) -> &[ProblemId] {
        &self.order
    }

    /// Logical time elapsed.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Time remaining before the limit, `None` when the exam is
    /// unlimited.
    #[must_use]
    pub fn remaining_time(&self) -> Option<Duration> {
        self.time_limit
            .map(|limit| limit.saturating_sub(self.elapsed))
    }

    /// Number of answered questions so far.
    #[must_use]
    pub fn answered_count(&self) -> usize {
        self.answers.len()
    }

    /// The problem currently presented, or `None` when past the end.
    #[must_use]
    pub fn current(&self) -> Option<&Problem> {
        self.order.get(self.cursor).map(|id| &self.problems[id])
    }

    /// Moves to a specific position (review navigation).
    ///
    /// # Errors
    ///
    /// Returns [`DeliveryError::OutOfBounds`] past the exam length and
    /// [`DeliveryError::WrongState`] when not active.
    pub fn seek(&mut self, position: usize) -> Result<(), DeliveryError> {
        self.ensure_active("seek")?;
        if position >= self.order.len() {
            return Err(DeliveryError::OutOfBounds);
        }
        self.cursor = position;
        Ok(())
    }

    fn ensure_active(&self, operation: &'static str) -> Result<(), DeliveryError> {
        match self.state {
            SessionState::Active => Ok(()),
            SessionState::Paused => Err(DeliveryError::WrongState {
                operation,
                state: "paused",
            }),
            SessionState::Finished => Err(DeliveryError::WrongState {
                operation,
                state: "finished",
            }),
        }
    }

    /// Answers the current problem and advances the cursor.
    ///
    /// Re-answering a previously seen problem (after [`ExamSession::seek`])
    /// replaces the earlier answer; the time spent accumulates either way.
    ///
    /// # Errors
    ///
    /// * [`DeliveryError::WrongState`] when not active,
    /// * [`DeliveryError::OutOfBounds`] when past the last question,
    /// * [`DeliveryError::TimeExpired`] when the limit has run out (the
    ///   answer is *not* recorded),
    /// * [`DeliveryError::Grading`] when the answer kind mismatches.
    pub fn answer(&mut self, answer: Answer, time_spent: Duration) -> Result<(), DeliveryError> {
        self.ensure_active("answer")?;
        let problem_id = self
            .order
            .get(self.cursor)
            .cloned()
            .ok_or(DeliveryError::OutOfBounds)?;
        if let Some(limit) = self.time_limit {
            if self.elapsed + time_spent > limit {
                // The clock still ran out; the session is now expired.
                self.elapsed = limit;
                return Err(DeliveryError::TimeExpired);
            }
        }
        // Validate gradability before recording.
        let problem = &self.problems[&problem_id];
        problem.grade(&answer)?;
        self.elapsed += time_spent;
        self.answers.insert(
            problem_id,
            RecordedAnswer {
                answer,
                time_spent,
                answered_at: self.elapsed,
            },
        );
        self.cursor += 1;
        Ok(())
    }

    /// Skips the current problem (recorded as [`Answer::Skipped`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExamSession::answer`].
    pub fn skip(&mut self, time_spent: Duration) -> Result<(), DeliveryError> {
        self.answer(Answer::Skipped, time_spent)
    }

    /// Pauses the session into a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`DeliveryError::NotResumable`] when the options forbid it
    /// and [`DeliveryError::WrongState`] when not active.
    pub fn pause(&mut self) -> Result<SessionCheckpoint, DeliveryError> {
        self.ensure_active("pause")?;
        if !self.options.resumable {
            return Err(DeliveryError::NotResumable);
        }
        self.state = SessionState::Paused;
        Ok(SessionCheckpoint {
            session: self.id.clone(),
            exam: self.exam_id.clone(),
            student: self.student.clone(),
            seed: self.options.seed,
            time_accommodation: self.options.time_accommodation,
            elapsed: self.elapsed,
            cursor: self.cursor,
            answers: self.answers.clone(),
        })
    }

    /// Reactivates a paused session in place.
    ///
    /// When a session registry keeps the paused [`ExamSession`] itself in
    /// memory (rather than only its [`SessionCheckpoint`]), resuming does
    /// not need to rebuild the session from the exam and problems —
    /// everything is still there. This flips `Paused` back to `Active`;
    /// the logical clock, cursor, and answers are untouched.
    ///
    /// # Errors
    ///
    /// Returns [`DeliveryError::WrongState`] unless the session is
    /// paused.
    pub fn reactivate(&mut self) -> Result<(), DeliveryError> {
        match self.state {
            SessionState::Paused => {
                self.state = SessionState::Active;
                Ok(())
            }
            SessionState::Active => Err(DeliveryError::WrongState {
                operation: "reactivate",
                state: "active",
            }),
            SessionState::Finished => Err(DeliveryError::WrongState {
                operation: "reactivate",
                state: "finished",
            }),
        }
    }

    /// Resumes a sitting from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`DeliveryError::CheckpointMismatch`] when the checkpoint
    /// does not belong to this exam or references unknown problems.
    pub fn resume(
        exam: &Exam,
        problems: Vec<Problem>,
        checkpoint: SessionCheckpoint,
    ) -> Result<Self, DeliveryError> {
        if checkpoint.exam != *exam.id() {
            return Err(DeliveryError::CheckpointMismatch {
                reason: format!(
                    "checkpoint is for exam {}, not {}",
                    checkpoint.exam,
                    exam.id()
                ),
            });
        }
        let mut session = Self::start(
            exam,
            problems,
            checkpoint.student,
            DeliveryOptions {
                seed: checkpoint.seed,
                resumable: true,
                time_accommodation: checkpoint.time_accommodation,
            },
        )?;
        for problem in checkpoint.answers.keys() {
            if !session.problems.contains_key(problem) {
                return Err(DeliveryError::CheckpointMismatch {
                    reason: format!("checkpoint answers unknown problem {problem}"),
                });
            }
        }
        if checkpoint.cursor > session.order.len() {
            return Err(DeliveryError::CheckpointMismatch {
                reason: "checkpoint cursor past the exam".into(),
            });
        }
        session.answers = checkpoint.answers;
        session.cursor = checkpoint.cursor;
        session.elapsed = checkpoint.elapsed;
        Ok(session)
    }

    /// Captures a complete [`SessionImage`] of this sitting.
    #[must_use]
    pub fn image(&self) -> SessionImage {
        SessionImage {
            id: self.id.clone(),
            exam_id: self.exam_id.clone(),
            student: self.student.clone(),
            options: self.options.clone(),
            problems: self.problems.clone(),
            point_overrides: self.point_overrides.clone(),
            order: self.order.clone(),
            answers: self.answers.clone(),
            cursor: self.cursor,
            elapsed: self.elapsed,
            time_limit: self.time_limit,
            state: self.state,
        }
    }

    /// Rebuilds a sitting from a [`SessionImage`], byte-identical to the
    /// session the image was captured from.
    ///
    /// # Errors
    ///
    /// Returns [`DeliveryError::CheckpointMismatch`] when the image is
    /// internally inconsistent (order references unknown problems, or
    /// the cursor points past the exam).
    pub fn from_image(image: SessionImage) -> Result<Self, DeliveryError> {
        for problem in image.order.iter().chain(image.answers.keys()) {
            if !image.problems.contains_key(problem) {
                return Err(DeliveryError::CheckpointMismatch {
                    reason: format!("image references unknown problem {problem}"),
                });
            }
        }
        if image.cursor > image.order.len() {
            return Err(DeliveryError::CheckpointMismatch {
                reason: "image cursor past the exam".into(),
            });
        }
        Ok(Self {
            id: image.id,
            exam_id: image.exam_id,
            student: image.student,
            options: image.options,
            problems: image.problems,
            point_overrides: image.point_overrides,
            order: image.order,
            answers: image.answers,
            cursor: image.cursor,
            elapsed: image.elapsed,
            time_limit: image.time_limit,
            state: image.state,
        })
    }

    /// Finishes the sitting, producing the graded [`StudentRecord`].
    ///
    /// Unanswered problems are recorded as skipped. The record lists
    /// responses in presentation order.
    ///
    /// # Errors
    ///
    /// Returns [`DeliveryError::WrongState`] when already finished.
    pub fn finish(&mut self) -> Result<StudentRecord, DeliveryError> {
        if self.state == SessionState::Finished {
            return Err(DeliveryError::WrongState {
                operation: "finish",
                state: "finished",
            });
        }
        self.state = SessionState::Finished;
        let mut responses = Vec::with_capacity(self.order.len());
        for problem_id in &self.order {
            let problem = &self.problems[problem_id];
            let points = self
                .point_overrides
                .get(problem_id)
                .copied()
                .unwrap_or(problem.points());
            let graded_problem = {
                let mut p = problem.clone();
                p.set_points(points);
                p
            };
            let (answer, time_spent, answered_at) = match self.answers.get(problem_id) {
                Some(recorded) => (
                    recorded.answer.clone(),
                    recorded.time_spent,
                    Some(recorded.answered_at),
                ),
                None => (Answer::Skipped, Duration::ZERO, None),
            };
            let grade = graded_problem.grade(&answer)?;
            responses.push(ItemResponse {
                problem: problem_id.clone(),
                answer,
                is_correct: grade.is_correct,
                points_awarded: grade.points_awarded,
                points_possible: grade.points_possible,
                time_spent,
                answered_at,
            });
        }
        let mut record = StudentRecord::new(self.student.clone(), responses);
        record.total_time = self.elapsed;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::OptionKey;
    use mine_itembank::{ChoiceOption, ExamEntry};

    fn problems() -> Vec<Problem> {
        vec![
            Problem::multiple_choice(
                "q1",
                "Pick B.",
                [
                    ChoiceOption::new(OptionKey::A, "a"),
                    ChoiceOption::new(OptionKey::B, "b"),
                ],
                OptionKey::B,
            )
            .unwrap(),
            Problem::true_false("q2", "Yes?", true).unwrap(),
            Problem::true_false("q3", "No?", false).unwrap(),
        ]
    }

    fn exam() -> Exam {
        Exam::builder("quiz")
            .unwrap()
            .entry("q1".parse().unwrap())
            .entry_with(ExamEntry::new("q2".parse().unwrap()).worth(3.0))
            .entry("q3".parse().unwrap())
            .test_time(Duration::from_secs(600))
            .build()
            .unwrap()
    }

    fn start() -> ExamSession {
        ExamSession::start(
            &exam(),
            problems(),
            "s1".parse().unwrap(),
            DeliveryOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn happy_path_full_sitting() {
        let mut session = start();
        assert_eq!(session.state(), SessionState::Active);
        assert_eq!(session.current().unwrap().id().as_str(), "q1");
        session
            .answer(Answer::Choice(OptionKey::B), Duration::from_secs(30))
            .unwrap();
        session
            .answer(Answer::TrueFalse(true), Duration::from_secs(20))
            .unwrap();
        session
            .answer(Answer::TrueFalse(true), Duration::from_secs(10))
            .unwrap();
        assert_eq!(session.answered_count(), 3);
        let record = session.finish().unwrap();
        assert_eq!(record.correct_count(), 2);
        // q2 carries the 3-point exam override.
        assert_eq!(record.score(), 1.0 + 3.0);
        assert_eq!(record.max_score(), 1.0 + 3.0 + 1.0);
        assert_eq!(record.total_time, Duration::from_secs(60));
        // answered_at offsets are cumulative.
        assert_eq!(
            record.responses[0].answered_at,
            Some(Duration::from_secs(30))
        );
        assert_eq!(
            record.responses[2].answered_at,
            Some(Duration::from_secs(60))
        );
    }

    #[test]
    fn missing_problem_is_a_mismatch() {
        let err = ExamSession::start(
            &exam(),
            problems()[..2].to_vec(),
            "s".parse().unwrap(),
            DeliveryOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, DeliveryError::ProblemSetMismatch { .. }));
    }

    #[test]
    fn time_limit_enforced() {
        let mut session = start();
        session
            .answer(Answer::Choice(OptionKey::B), Duration::from_secs(590))
            .unwrap();
        let err = session
            .answer(Answer::TrueFalse(true), Duration::from_secs(30))
            .unwrap_err();
        assert_eq!(err, DeliveryError::TimeExpired);
        assert_eq!(session.remaining_time(), Some(Duration::ZERO));
        // Can still finish; unanswered become skipped.
        let record = session.finish().unwrap();
        assert_eq!(record.correct_count(), 1);
        assert_eq!(record.attempted_count(), 1);
    }

    #[test]
    fn skip_and_unanswered_are_recorded_as_skipped() {
        let mut session = start();
        session.skip(Duration::from_secs(5)).unwrap();
        session
            .answer(Answer::TrueFalse(true), Duration::from_secs(5))
            .unwrap();
        let record = session.finish().unwrap();
        assert!(matches!(record.responses[0].answer, Answer::Skipped));
        assert!(matches!(record.responses[2].answer, Answer::Skipped));
        assert_eq!(record.responses[2].answered_at, None);
    }

    #[test]
    fn wrong_answer_kind_is_rejected_and_not_recorded() {
        let mut session = start();
        let err = session
            .answer(Answer::TrueFalse(true), Duration::from_secs(5))
            .unwrap_err();
        assert!(matches!(err, DeliveryError::Grading(_)));
        assert_eq!(session.answered_count(), 0);
        assert_eq!(session.current().unwrap().id().as_str(), "q1");
    }

    #[test]
    fn seek_allows_revision_and_replaces_answer() {
        let mut session = start();
        session
            .answer(Answer::Choice(OptionKey::A), Duration::from_secs(10))
            .unwrap();
        session.seek(0).unwrap();
        session
            .answer(Answer::Choice(OptionKey::B), Duration::from_secs(5))
            .unwrap();
        // Revisit recorded once, with the latest answer.
        assert_eq!(session.answered_count(), 1);
        session.seek(2).unwrap();
        assert!(session.seek(3).is_err());
        let record = {
            session
                .answer(Answer::TrueFalse(false), Duration::from_secs(1))
                .unwrap();
            session.finish().unwrap()
        };
        assert!(record.responses[0].is_correct);
        // Time accumulated across both visits.
        assert_eq!(record.total_time, Duration::from_secs(16));
    }

    #[test]
    fn time_accommodation_extends_the_limit() {
        // Exam limit 600 s; time-and-a-half gives 900 s.
        let mut session = ExamSession::start(
            &exam(),
            problems(),
            "s".parse().unwrap(),
            DeliveryOptions {
                seed: 0,
                resumable: true,
                time_accommodation: 1.5,
            },
        )
        .unwrap();
        assert_eq!(session.remaining_time(), Some(Duration::from_secs(900)));
        session
            .answer(Answer::Choice(OptionKey::B), Duration::from_secs(850))
            .unwrap();
        // Would have expired without the accommodation.
        assert_eq!(session.remaining_time(), Some(Duration::from_secs(50)));
        let err = session
            .answer(Answer::TrueFalse(true), Duration::from_secs(60))
            .unwrap_err();
        assert_eq!(err, DeliveryError::TimeExpired);
    }

    #[test]
    fn accommodation_survives_pause_and_resume() {
        let mut session = ExamSession::start(
            &exam(),
            problems(),
            "s".parse().unwrap(),
            DeliveryOptions {
                seed: 0,
                resumable: true,
                time_accommodation: 2.0,
            },
        )
        .unwrap();
        let checkpoint = session.pause().unwrap();
        let resumed = ExamSession::resume(&exam(), problems(), checkpoint).unwrap();
        assert_eq!(resumed.remaining_time(), Some(Duration::from_secs(1200)));
    }

    #[test]
    fn pause_and_resume_restores_everything() {
        let mut session = start();
        session
            .answer(Answer::Choice(OptionKey::B), Duration::from_secs(30))
            .unwrap();
        let checkpoint = session.pause().unwrap();
        assert_eq!(session.state(), SessionState::Paused);
        assert!(session
            .answer(Answer::TrueFalse(true), Duration::ZERO)
            .is_err());

        // Checkpoint survives serialization (suspend_data style).
        let json = serde_json::to_string(&checkpoint).unwrap();
        let restored: SessionCheckpoint = serde_json::from_str(&json).unwrap();

        let mut resumed = ExamSession::resume(&exam(), problems(), restored).unwrap();
        assert_eq!(resumed.elapsed(), Duration::from_secs(30));
        assert_eq!(resumed.answered_count(), 1);
        assert_eq!(resumed.current().unwrap().id().as_str(), "q2");
        resumed
            .answer(Answer::TrueFalse(true), Duration::from_secs(10))
            .unwrap();
        resumed
            .answer(Answer::TrueFalse(false), Duration::from_secs(10))
            .unwrap();
        let record = resumed.finish().unwrap();
        assert_eq!(record.correct_count(), 3);
    }

    #[test]
    fn nonsense_time_accommodation_is_rejected() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 101.0] {
            let err = ExamSession::start(
                &exam(),
                problems(),
                "s".parse().unwrap(),
                DeliveryOptions {
                    seed: 0,
                    resumable: true,
                    time_accommodation: bad,
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, DeliveryError::InvalidOptions { .. }),
                "accommodation {bad} should be invalid, got {err:?}"
            );
        }
    }

    #[test]
    fn reactivate_resumes_a_paused_session_in_place() {
        let mut session = start();
        session
            .answer(Answer::Choice(OptionKey::B), Duration::from_secs(30))
            .unwrap();
        session.pause().unwrap();
        assert_eq!(session.state(), SessionState::Paused);
        session.reactivate().unwrap();
        assert_eq!(session.state(), SessionState::Active);
        // Clock and answers survived.
        assert_eq!(session.elapsed(), Duration::from_secs(30));
        assert_eq!(session.answered_count(), 1);
        session
            .answer(Answer::TrueFalse(true), Duration::from_secs(10))
            .unwrap();
        // Reactivating an active or finished session is a state error.
        assert!(matches!(
            session.reactivate(),
            Err(DeliveryError::WrongState { .. })
        ));
        session
            .answer(Answer::TrueFalse(false), Duration::ZERO)
            .unwrap();
        session.finish().unwrap();
        assert!(matches!(
            session.reactivate(),
            Err(DeliveryError::WrongState { .. })
        ));
    }

    #[test]
    fn image_round_trip_rebuilds_the_session_byte_identically() {
        let mut session = start();
        session
            .answer(Answer::Choice(OptionKey::B), Duration::from_secs(30))
            .unwrap();
        let image = session.image();
        // The image survives serialization (the durability layer stores
        // it as JSON inside snapshots).
        let json = serde_json::to_string(&image).unwrap();
        let restored: SessionImage = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, image);
        let mut rebuilt = ExamSession::from_image(restored).unwrap();
        assert_eq!(rebuilt.id(), session.id());
        assert_eq!(rebuilt.elapsed(), session.elapsed());
        assert_eq!(rebuilt.answered_count(), 1);
        // Both copies finish to the identical graded record.
        let a = session.finish().unwrap();
        let b = rebuilt.finish().unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn from_image_rejects_inconsistent_images() {
        let session = start();
        let mut image = session.image();
        image.cursor = 99;
        assert!(matches!(
            ExamSession::from_image(image),
            Err(DeliveryError::CheckpointMismatch { .. })
        ));
        let mut image = session.image();
        image.problems.clear();
        assert!(matches!(
            ExamSession::from_image(image),
            Err(DeliveryError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn accessors_expose_exam_and_options() {
        let session = start();
        assert_eq!(session.exam_id().as_str(), "quiz");
        assert_eq!(session.options(), &DeliveryOptions::default());
    }

    #[test]
    fn non_resumable_sessions_cannot_pause() {
        let mut session = ExamSession::start(
            &exam(),
            problems(),
            "s".parse().unwrap(),
            DeliveryOptions {
                seed: 0,
                resumable: false,
                time_accommodation: 1.0,
            },
        )
        .unwrap();
        assert_eq!(session.pause().unwrap_err(), DeliveryError::NotResumable);
        assert_eq!(session.state(), SessionState::Active);
    }

    #[test]
    fn resume_rejects_foreign_checkpoints() {
        let mut session = start();
        let mut checkpoint = session.pause().unwrap();
        checkpoint.exam = "other-exam".parse().unwrap();
        let err = ExamSession::resume(&exam(), problems(), checkpoint).unwrap_err();
        assert!(matches!(err, DeliveryError::CheckpointMismatch { .. }));
    }

    #[test]
    fn double_finish_is_an_error() {
        let mut session = start();
        session.finish().unwrap();
        assert!(session.finish().is_err());
    }

    #[test]
    fn answering_past_the_end_is_out_of_bounds() {
        let mut session = start();
        for _ in 0..3 {
            session.skip(Duration::from_secs(1)).unwrap();
        }
        assert_eq!(
            session
                .answer(Answer::TrueFalse(true), Duration::from_secs(1))
                .unwrap_err(),
            DeliveryError::OutOfBounds
        );
    }
}
