//! Exam delivery: sessions, ordering, monitoring, and LMS tracking (§5).
//!
//! "Learners take the exam or the problems with Internet browser. When
//! learners take the exam, monitor function captures the client picture
//! for monitoring the exam progress." This crate is the server side of
//! that flow, built to be driven deterministically (a logical clock, a
//! seeded shuffle) so the simulator and the tests produce identical runs:
//!
//! * [`ExamSession`] — one learner sitting one exam: presentation order
//!   (fixed/random + per-group shuffle, §3.2-VI-C / §5.4), answer
//!   collection with grading, a time limit, and pause/resume
//!   checkpoints ("Resumable", §3.2-VI-B),
//! * [`Monitor`]/[`MonitorHub`] — the on-line exam monitor subsystem:
//!   timestamped snapshot events with synthetic frame payloads,
//! * [`RteBridge`] — drives a SCORM [`mine_scorm::ApiAdapter`] from the
//!   session lifecycle (initialize → interactions → score/status →
//!   finish).
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use mine_core::Answer;
//! use mine_delivery::{DeliveryOptions, ExamSession};
//! use mine_itembank::{Exam, Problem};
//!
//! let problems = vec![Problem::true_false("q1", "1 + 1 = 2", true)?];
//! let exam = Exam::builder("quiz")?.entry("q1".parse()?).build()?;
//! let mut session = ExamSession::start(
//!     &exam,
//!     problems,
//!     "student-1".parse()?,
//!     DeliveryOptions::default(),
//! )?;
//! session.answer(Answer::TrueFalse(true), Duration::from_secs(10))?;
//! let record = session.finish()?;
//! assert_eq!(record.correct_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod monitor;
pub mod order;
pub mod rte_bridge;
pub mod session;

pub use error::DeliveryError;
pub use monitor::{Monitor, MonitorEvent, MonitorHub, SnapshotPolicy};
pub use order::presentation_order;
pub use rte_bridge::RteBridge;
pub use session::{
    DeliveryOptions, ExamSession, RecordedAnswer, SessionCheckpoint, SessionImage, SessionState,
};
