//! The on-line exam monitor subsystem (§5).
//!
//! "When learners take the exam, monitor function captures the client
//! picture for monitoring the exam progress." The paper's subsystem
//! grabs webcam frames from the browser; here a [`Monitor`] attached to a
//! session emits [`MonitorEvent`]s — including synthetic snapshot frames —
//! over a crossbeam channel into a [`MonitorHub`] where a proctor (or a
//! test) observes the whole class.

use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use mine_core::{SessionId, StudentId};

/// When the monitor captures a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotPolicy {
    /// Capture a frame every `n` answered questions (0 disables).
    pub every_answers: usize,
    /// Capture a frame whenever this much logical time passed since the
    /// previous frame (zero disables).
    pub every_elapsed: Duration,
    /// Flag answers committed faster than this (zero disables) — a
    /// too-fast pace suggests the learner is not reading the questions.
    pub min_answer_time: Duration,
}

impl Default for SnapshotPolicy {
    /// Every 3 answers or every 5 minutes, whichever first.
    fn default() -> Self {
        Self {
            every_answers: 3,
            every_elapsed: Duration::from_secs(300),
            min_answer_time: Duration::from_secs(2),
        }
    }
}

/// An event observed by the proctor.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorEvent {
    /// A learner started a session.
    SessionStarted {
        /// The session.
        session: SessionId,
        /// The learner.
        student: StudentId,
    },
    /// A snapshot frame was captured.
    Snapshot {
        /// The session.
        session: SessionId,
        /// The learner.
        student: StudentId,
        /// Monotonic frame number within the session.
        seq: u64,
        /// Logical time of the capture.
        at: Duration,
        /// The frame payload (synthetic in this reproduction).
        frame: Bytes,
    },
    /// A learner paused their session.
    SessionPaused {
        /// The session.
        session: SessionId,
    },
    /// The monitor flagged suspicious activity for proctor review.
    Flagged {
        /// The session.
        session: SessionId,
        /// What looked suspicious.
        reason: String,
        /// Logical time of the flag.
        at: Duration,
    },
    /// A learner finished; final progress counters attached.
    SessionFinished {
        /// The session.
        session: SessionId,
        /// Questions answered.
        answered: usize,
        /// Total logical time of the sitting.
        total_time: Duration,
    },
}

/// The proctor's end: collects events from all monitored sessions.
#[derive(Debug)]
pub struct MonitorHub {
    sender: Sender<MonitorEvent>,
    receiver: Receiver<MonitorEvent>,
}

impl Default for MonitorHub {
    fn default() -> Self {
        Self::new()
    }
}

impl MonitorHub {
    /// Creates a hub.
    #[must_use]
    pub fn new() -> Self {
        let (sender, receiver) = unbounded();
        Self { sender, receiver }
    }

    /// Attaches a monitor for one session.
    #[must_use]
    pub fn monitor(
        &self,
        session: SessionId,
        student: StudentId,
        policy: SnapshotPolicy,
    ) -> Monitor {
        let monitor = Monitor {
            session,
            student,
            policy,
            sender: self.sender.clone(),
            seq: 0,
            answers_since_snapshot: 0,
            last_snapshot_at: Duration::ZERO,
            last_answer_at: Duration::ZERO,
        };
        let _ = monitor.sender.send(MonitorEvent::SessionStarted {
            session: monitor.session.clone(),
            student: monitor.student.clone(),
        });
        monitor
    }

    /// Drains all pending events.
    #[must_use]
    pub fn drain(&self) -> Vec<MonitorEvent> {
        let mut events = Vec::new();
        while let Ok(event) = self.receiver.try_recv() {
            events.push(event);
        }
        events
    }

    /// Blocking receive with timeout (for threaded proctoring).
    #[must_use]
    pub fn recv_timeout(&self, timeout: Duration) -> Option<MonitorEvent> {
        self.receiver.recv_timeout(timeout).ok()
    }
}

/// The session's end of the monitor: reports progress and captures
/// synthetic frames per policy.
#[derive(Debug, Clone)]
pub struct Monitor {
    session: SessionId,
    student: StudentId,
    policy: SnapshotPolicy,
    sender: Sender<MonitorEvent>,
    seq: u64,
    answers_since_snapshot: usize,
    last_snapshot_at: Duration,
    last_answer_at: Duration,
}

impl Monitor {
    /// Notifies the hub that an answer was committed; captures a frame
    /// when the policy fires and emits a [`MonitorEvent::Flagged`] when
    /// the answer came faster than the policy's pace floor. Returns
    /// whether a snapshot was taken.
    pub fn on_answer(&mut self, elapsed: Duration) -> bool {
        if !self.policy.min_answer_time.is_zero()
            && elapsed.saturating_sub(self.last_answer_at) < self.policy.min_answer_time
        {
            self.flag("answered faster than the pace floor", elapsed);
        }
        self.last_answer_at = elapsed;
        self.answers_since_snapshot += 1;
        let by_count = self.policy.every_answers > 0
            && self.answers_since_snapshot >= self.policy.every_answers;
        let by_time = !self.policy.every_elapsed.is_zero()
            && elapsed.saturating_sub(self.last_snapshot_at) >= self.policy.every_elapsed;
        if by_count || by_time {
            self.capture(elapsed);
            true
        } else {
            false
        }
    }

    /// Raises a proctor flag.
    pub fn flag(&self, reason: impl Into<String>, elapsed: Duration) {
        let _ = self.sender.send(MonitorEvent::Flagged {
            session: self.session.clone(),
            reason: reason.into(),
            at: elapsed,
        });
    }

    /// Forces a snapshot capture now (proctor-initiated).
    pub fn capture(&mut self, elapsed: Duration) {
        let frame = synth_frame(&self.student, self.seq);
        let _ = self.sender.send(MonitorEvent::Snapshot {
            session: self.session.clone(),
            student: self.student.clone(),
            seq: self.seq,
            at: elapsed,
            frame,
        });
        self.seq += 1;
        self.answers_since_snapshot = 0;
        self.last_snapshot_at = elapsed;
    }

    /// Reports a pause.
    pub fn on_pause(&self) {
        let _ = self.sender.send(MonitorEvent::SessionPaused {
            session: self.session.clone(),
        });
    }

    /// Reports the finish with final counters.
    pub fn on_finish(&self, answered: usize, total_time: Duration) {
        let _ = self.sender.send(MonitorEvent::SessionFinished {
            session: self.session.clone(),
            answered,
            total_time,
        });
    }

    /// Frames captured so far.
    #[must_use]
    pub fn frames_captured(&self) -> u64 {
        self.seq
    }
}

/// Builds a deterministic synthetic "webcam frame": a tagged header plus
/// a pseudo-random payload derived from the student id and sequence
/// number, standing in for the real picture the paper captures.
#[must_use]
pub fn synth_frame(student: &StudentId, seq: u64) -> Bytes {
    let mut data = Vec::with_capacity(64);
    data.extend_from_slice(b"FRAME");
    data.extend_from_slice(&seq.to_be_bytes());
    let mut state = seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for byte in student.as_str().bytes() {
        state = state.rotate_left(7) ^ u64::from(byte);
    }
    for _ in 0..6 {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        data.extend_from_slice(&state.to_be_bytes());
    }
    Bytes::from(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(s: &str) -> SessionId {
        s.parse().unwrap()
    }

    fn stid(s: &str) -> StudentId {
        s.parse().unwrap()
    }

    #[test]
    fn start_event_emitted_on_attach() {
        let hub = MonitorHub::new();
        let _monitor = hub.monitor(sid("sess"), stid("alice"), SnapshotPolicy::default());
        let events = hub.drain();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], MonitorEvent::SessionStarted { .. }));
    }

    #[test]
    fn snapshots_fire_by_answer_count() {
        let hub = MonitorHub::new();
        let mut monitor = hub.monitor(
            sid("sess"),
            stid("alice"),
            SnapshotPolicy {
                every_answers: 2,
                every_elapsed: Duration::ZERO,
                min_answer_time: Duration::ZERO,
            },
        );
        assert!(!monitor.on_answer(Duration::from_secs(10)));
        assert!(monitor.on_answer(Duration::from_secs(20)));
        assert!(!monitor.on_answer(Duration::from_secs(30)));
        assert!(monitor.on_answer(Duration::from_secs(40)));
        assert_eq!(monitor.frames_captured(), 2);
        let snapshots = hub
            .drain()
            .into_iter()
            .filter(|e| matches!(e, MonitorEvent::Snapshot { .. }))
            .count();
        assert_eq!(snapshots, 2);
    }

    #[test]
    fn snapshots_fire_by_elapsed_time() {
        let hub = MonitorHub::new();
        let mut monitor = hub.monitor(
            sid("sess"),
            stid("bob"),
            SnapshotPolicy {
                every_answers: 0,
                every_elapsed: Duration::from_secs(60),
                min_answer_time: Duration::ZERO,
            },
        );
        assert!(!monitor.on_answer(Duration::from_secs(30)));
        assert!(monitor.on_answer(Duration::from_secs(61)));
        assert!(!monitor.on_answer(Duration::from_secs(100)));
        assert!(monitor.on_answer(Duration::from_secs(121)));
    }

    #[test]
    fn frames_are_deterministic_per_student_and_seq() {
        assert_eq!(
            synth_frame(&stid("alice"), 0),
            synth_frame(&stid("alice"), 0)
        );
        assert_ne!(
            synth_frame(&stid("alice"), 0),
            synth_frame(&stid("alice"), 1)
        );
        assert_ne!(synth_frame(&stid("alice"), 0), synth_frame(&stid("bob"), 0));
        let frame = synth_frame(&stid("alice"), 3);
        assert!(frame.starts_with(b"FRAME"));
        assert_eq!(frame.len(), 5 + 8 + 48);
    }

    #[test]
    fn sequence_numbers_increase_monotonically() {
        let hub = MonitorHub::new();
        let mut monitor = hub.monitor(sid("s"), stid("x"), SnapshotPolicy::default());
        for _ in 0..5 {
            monitor.capture(Duration::ZERO);
        }
        let seqs: Vec<u64> = hub
            .drain()
            .into_iter()
            .filter_map(|e| match e {
                MonitorEvent::Snapshot { seq, .. } => Some(seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pause_and_finish_events() {
        let hub = MonitorHub::new();
        let monitor = hub.monitor(sid("s"), stid("x"), SnapshotPolicy::default());
        monitor.on_pause();
        monitor.on_finish(7, Duration::from_secs(500));
        let events = hub.drain();
        assert!(matches!(events[1], MonitorEvent::SessionPaused { .. }));
        match &events[2] {
            MonitorEvent::SessionFinished {
                answered,
                total_time,
                ..
            } => {
                assert_eq!(*answered, 7);
                assert_eq!(*total_time, Duration::from_secs(500));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hub_collects_from_multiple_threads() {
        let hub = MonitorHub::new();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let mut monitor = hub.monitor(
                    sid(&format!("s{i}")),
                    stid(&format!("learner{i}")),
                    SnapshotPolicy {
                        every_answers: 1,
                        every_elapsed: Duration::ZERO,
                        min_answer_time: Duration::ZERO,
                    },
                );
                std::thread::spawn(move || {
                    for answer in 0..10 {
                        monitor.on_answer(Duration::from_secs(answer));
                    }
                    monitor.on_finish(10, Duration::from_secs(10));
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let events = hub.drain();
        let snapshots = events
            .iter()
            .filter(|e| matches!(e, MonitorEvent::Snapshot { .. }))
            .count();
        let finishes = events
            .iter()
            .filter(|e| matches!(e, MonitorEvent::SessionFinished { .. }))
            .count();
        assert_eq!(snapshots, 40);
        assert_eq!(finishes, 4);
    }

    #[test]
    fn too_fast_answers_are_flagged() {
        let hub = MonitorHub::new();
        let mut monitor = hub.monitor(
            sid("s"),
            stid("racer"),
            SnapshotPolicy {
                every_answers: 0,
                every_elapsed: Duration::ZERO,
                min_answer_time: Duration::from_secs(5),
            },
        );
        monitor.on_answer(Duration::from_secs(1)); // 1s after start → flag
        monitor.on_answer(Duration::from_secs(30)); // 29s gap → fine
        monitor.on_answer(Duration::from_secs(32)); // 2s gap → flag
        let flags: Vec<_> = hub
            .drain()
            .into_iter()
            .filter(|e| matches!(e, MonitorEvent::Flagged { .. }))
            .collect();
        assert_eq!(flags.len(), 2);
        if let MonitorEvent::Flagged { reason, at, .. } = &flags[1] {
            assert!(reason.contains("pace"));
            assert_eq!(*at, Duration::from_secs(32));
        }
    }

    #[test]
    fn proctor_can_flag_manually() {
        let hub = MonitorHub::new();
        let monitor = hub.monitor(sid("s"), stid("x"), SnapshotPolicy::default());
        monitor.flag("looked away from camera", Duration::from_secs(10));
        let events = hub.drain();
        assert!(events.iter().any(
            |e| matches!(e, MonitorEvent::Flagged { reason, .. } if reason.contains("camera"))
        ));
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let hub = MonitorHub::new();
        assert!(hub.recv_timeout(Duration::from_millis(10)).is_none());
    }
}
