//! Presentation order computation (§3.2-VI-C, §5.4).
//!
//! Fixed order keeps the authored entry sequence. Random order shuffles
//! the whole exam. Independently, a presentation group marked
//! `shuffle_within` shuffles its own questions while the group block
//! stays in place. All shuffles derive from a caller-supplied seed so a
//! session can be replayed (and a resumed session sees the same order).

use rand::seq::SliceRandom;
use rand::SeedableRng;

use mine_core::ProblemId;
use mine_itembank::Exam;
use mine_metadata::DisplayOrder;

/// Computes the order problems are shown for one sitting.
///
/// # Examples
///
/// ```
/// use mine_delivery::presentation_order;
/// use mine_itembank::Exam;
///
/// let exam = Exam::builder("e")?
///     .entry("q1".parse()?)
///     .entry("q2".parse()?)
///     .build()?;
/// // Fixed order is the authored order regardless of seed.
/// assert_eq!(
///     presentation_order(&exam, 7),
///     vec!["q1".parse()?, "q2".parse()?],
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn presentation_order(exam: &Exam, seed: u64) -> Vec<ProblemId> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    match exam.display_order() {
        DisplayOrder::Random => {
            let mut order = exam.problem_ids();
            order.shuffle(&mut rng);
            order
        }
        DisplayOrder::Fixed => {
            // Walk entries in authored order, emitting each group block at
            // the position of its first entry; shuffle within blocks that
            // ask for it.
            let mut order: Vec<ProblemId> = Vec::with_capacity(exam.len());
            let mut emitted_groups: Vec<&mine_core::GroupId> = Vec::new();
            for entry in exam.entries() {
                match &entry.group {
                    None => order.push(entry.problem.clone()),
                    Some(group_id) => {
                        if emitted_groups.contains(&group_id) {
                            continue;
                        }
                        emitted_groups.push(group_id);
                        let mut block: Vec<ProblemId> = exam
                            .entries_in_group(group_id)
                            .map(|e| e.problem.clone())
                            .collect();
                        let shuffle = exam.group(group_id).is_some_and(|g| g.style.shuffle_within);
                        if shuffle {
                            block.shuffle(&mut rng);
                        }
                        order.extend(block);
                    }
                }
            }
            order
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_itembank::{ExamEntry, GroupStyle, PresentationGroup};

    fn pid(s: &str) -> ProblemId {
        s.parse().unwrap()
    }

    fn exam_with_groups(shuffle_within: bool) -> Exam {
        Exam::builder("e")
            .unwrap()
            .group(
                PresentationGroup::new("g".parse().unwrap()).with_style(GroupStyle {
                    shuffle_within,
                    ..GroupStyle::default()
                }),
            )
            .entry(pid("q1"))
            .entry_with(ExamEntry::new(pid("q2")).in_group("g".parse().unwrap()))
            .entry_with(ExamEntry::new(pid("q3")).in_group("g".parse().unwrap()))
            .entry_with(ExamEntry::new(pid("q4")).in_group("g".parse().unwrap()))
            .entry(pid("q5"))
            .build()
            .unwrap()
    }

    #[test]
    fn fixed_order_without_shuffle_is_authored_order() {
        let exam = exam_with_groups(false);
        for seed in 0..5 {
            assert_eq!(
                presentation_order(&exam, seed),
                vec![pid("q1"), pid("q2"), pid("q3"), pid("q4"), pid("q5")]
            );
        }
    }

    #[test]
    fn group_shuffle_keeps_block_in_place() {
        let exam = exam_with_groups(true);
        for seed in 0..20 {
            let order = presentation_order(&exam, seed);
            assert_eq!(order[0], pid("q1"), "seed {seed}");
            assert_eq!(order[4], pid("q5"), "seed {seed}");
            let mut middle: Vec<_> = order[1..4].to_vec();
            middle.sort();
            assert_eq!(middle, vec![pid("q2"), pid("q3"), pid("q4")]);
        }
        // Some seed actually permutes the block.
        let baseline = presentation_order(&exam_with_groups(false), 0);
        assert!(
            (0..20).any(|seed| presentation_order(&exam, seed) != baseline),
            "shuffle_within never changed the order"
        );
    }

    #[test]
    fn random_order_is_seed_deterministic_permutation() {
        let exam = Exam::builder("e")
            .unwrap()
            .display_order(DisplayOrder::Random)
            .entry(pid("q1"))
            .entry(pid("q2"))
            .entry(pid("q3"))
            .entry(pid("q4"))
            .build()
            .unwrap();
        let a = presentation_order(&exam, 42);
        let b = presentation_order(&exam, 42);
        assert_eq!(a, b, "same seed replays identically");
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, vec![pid("q1"), pid("q2"), pid("q3"), pid("q4")]);
        assert!(
            (0..20).any(|seed| presentation_order(&exam, seed) != a),
            "different seeds should eventually differ"
        );
    }

    #[test]
    fn empty_exam_yields_empty_order() {
        let exam = Exam::builder("e").unwrap().build().unwrap();
        assert!(presentation_order(&exam, 1).is_empty());
    }
}
