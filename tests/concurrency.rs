//! Concurrency stress: many actors and learners hit one shared
//! authoring system from threads — the §5 picture of authors,
//! instructors, tutors, learners, and an administrator working at once.

use std::time::Duration;

use mine_assessment::authoring::AuthoringSystem;
use mine_assessment::core::{Answer, OptionKey};
use mine_assessment::delivery::{DeliveryOptions, MonitorEvent};
use mine_assessment::itembank::{ChoiceOption, Exam, Problem, Query};

fn seed_system() -> AuthoringSystem {
    let system = AuthoringSystem::new();
    for i in 0..10 {
        system
            .author_problem(
                "seed",
                Problem::multiple_choice(
                    format!("q{i}"),
                    format!("Question {i}"),
                    OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("{k}"))),
                    OptionKey::A,
                )
                .unwrap()
                .with_subject("shared"),
            )
            .unwrap();
    }
    let mut builder = Exam::builder("shared-exam").unwrap();
    for i in 0..10 {
        builder = builder.entry(format!("q{i}").parse().unwrap());
    }
    system
        .author_exam("seed", builder.build().unwrap())
        .unwrap();
    system
}

#[test]
fn authors_learners_and_searchers_run_concurrently() {
    let system = seed_system();
    let mut handles = Vec::new();

    // 4 authors add problems.
    for author in 0..4 {
        let system = system.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..25 {
                system
                    .author_problem(
                        &format!("author{author}"),
                        Problem::true_false(
                            format!("a{author}-p{i}"),
                            format!("Statement {i} from author {author}"),
                            i % 2 == 0,
                        )
                        .unwrap(),
                    )
                    .unwrap();
            }
        }));
    }

    // 4 learners sit the shared exam concurrently.
    for learner in 0..4 {
        let system = system.clone();
        handles.push(std::thread::spawn(move || {
            let (mut session, mut monitor) = system
                .deliver(
                    &"shared-exam".parse().unwrap(),
                    format!("learner{learner}").parse().unwrap(),
                    DeliveryOptions {
                        seed: learner,
                        resumable: true,
                        time_accommodation: 1.0,
                    },
                )
                .unwrap();
            while session.current().is_some() {
                session
                    .answer(Answer::Choice(OptionKey::A), Duration::from_secs(10))
                    .unwrap();
                monitor.on_answer(session.elapsed());
            }
            let record = session.finish().unwrap();
            monitor.on_finish(record.attempted_count(), record.total_time);
            assert_eq!(record.correct_count(), 10);
        }));
    }

    // 2 tutors search while everything churns.
    for _ in 0..2 {
        let system = system.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                let _ = system.search_problems(&Query::text("statement"));
                let _ = system.search_problems(&Query::builder().subject("shared").build());
            }
        }));
    }

    for handle in handles {
        handle.join().unwrap();
    }

    // Everything landed: 10 seed + 100 authored problems.
    assert_eq!(system.repository().problem_count(), 110);
    // Audit saw every mutating action exactly once: 10 + 1 + 100.
    assert_eq!(system.audit().len(), 111);
    // The monitor hub collected all four learners' lifecycles.
    let events = system.monitor_hub().drain();
    let finishes = events
        .iter()
        .filter(|e| matches!(e, MonitorEvent::SessionFinished { .. }))
        .count();
    assert_eq!(finishes, 4);
    // Search index reflects the final state.
    assert_eq!(system.search_problems(&Query::text("statement")).len(), 100);
}

#[test]
fn concurrent_edits_to_one_problem_serialize_cleanly() {
    let system = seed_system();
    let id: mine_assessment::core::ProblemId = "q0".parse().unwrap();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let system = system.clone();
            let id = id.clone();
            std::thread::spawn(move || {
                for i in 0..20 {
                    system
                        .edit_problem(&format!("editor{t}"), &id, |p| {
                            p.set_subject(format!("subject-{t}-{i}"));
                            Ok(())
                        })
                        .unwrap();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    // 160 edits + initial insert → version 161; no update lost.
    assert_eq!(system.repository().problem_version(&id).unwrap(), 161);
}

#[test]
fn batch_cache_survives_hammering_from_many_threads() {
    use mine_assessment::analysis::{AnalysisConfig, BatchAnalyzer, ExamAnalysis};
    use mine_assessment::simulator::{CohortSpec, Simulation};
    use std::sync::Arc;

    let problems: Vec<Problem> = (0..6)
        .map(|i| {
            Problem::multiple_choice(
                format!("q{i}"),
                format!("Question {i}"),
                OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("{k}"))),
                OptionKey::A,
            )
            .unwrap()
        })
        .collect();
    let mut builder = Exam::builder("hammer").unwrap();
    for i in 0..6 {
        builder = builder.entry(format!("q{i}").parse().unwrap());
    }
    let exam = builder.build().unwrap();
    // 6 distinct sittings contending for a cache that only holds 4, so
    // threads race on hits, misses, inserts, and evictions at once.
    let records: Vec<_> = (0..6)
        .map(|seed| {
            Simulation::new(exam.clone(), problems.clone())
                .cohort(CohortSpec::new(20).seed(seed))
                .run()
                .unwrap()
        })
        .collect();
    let expected: Vec<_> = records
        .iter()
        .map(|r| ExamAnalysis::analyze(r, &problems, &AnalysisConfig::default()).unwrap())
        .collect();

    let analyzer = Arc::new(BatchAnalyzer::new(AnalysisConfig::default()).with_cache_capacity(4));
    let problems = Arc::new(problems);
    let records = Arc::new(records);
    let expected = Arc::new(expected);
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let analyzer = Arc::clone(&analyzer);
            let problems = Arc::clone(&problems);
            let records = Arc::clone(&records);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                for round in 0..15 {
                    let i = (t + round) % records.len();
                    let analysis = analyzer.analyze_one(&records[i], &problems).unwrap();
                    assert_eq!(analysis, expected[i], "thread {t} round {round}");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let stats = analyzer.cache_stats();
    // Every lookup was counted, and the bound held under contention.
    assert_eq!(stats.hits + stats.misses, 8 * 15);
    assert!(stats.entries <= 4, "capacity exceeded: {}", stats.entries);
    assert!(stats.hits > 0, "repeated inputs should hit");
}
