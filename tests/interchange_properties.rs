//! Property tests for the interchange formats: arbitrary problems
//! survive QTI and SCORM round-trips.

use proptest::prelude::*;

use mine_assessment::core::{Answer, ExamRecord, ItemResponse, StudentRecord};
use mine_assessment::core::{CognitionLevel, OptionKey};
use mine_assessment::itembank::{ChoiceOption, MatchPairs, Problem, ProblemBody};
use mine_assessment::qti::{item_from_qti, item_to_qti, results_from_qti, results_to_qti};
use mine_assessment::scorm::package::{problem_from_content_xml, problem_to_content_xml};
use mine_assessment::scorm::AiccCourse;
use mine_assessment::scorm::ContentPackage;

fn arb_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 <>&'\"?.,-]{1,40}"
}

fn arb_body() -> impl Strategy<Value = ProblemBody> {
    prop_oneof![
        // multiple choice
        (arb_text(), 2usize..6, 0usize..6).prop_flat_map(|(stem, n, correct)| {
            let correct = correct % n;
            (
                Just(stem),
                proptest::collection::vec(arb_text(), n..=n),
                Just(correct),
            )
                .prop_map(move |(stem, texts, correct)| ProblemBody::MultipleChoice {
                    stem,
                    options: texts
                        .into_iter()
                        .enumerate()
                        .map(|(i, t)| ChoiceOption::new(OptionKey::from_index(i).unwrap(), t))
                        .collect(),
                    correct: OptionKey::from_index(correct).unwrap(),
                })
        }),
        // true / false
        (arb_text(), arb_text(), any::<bool>()).prop_map(|(stem, hint, correct)| {
            ProblemBody::TrueFalse {
                stem,
                hint,
                correct,
            }
        }),
        // essay
        (
            arb_text(),
            arb_text(),
            proptest::collection::vec(arb_text(), 0..3)
        )
            .prop_map(|(question, hint, keywords)| ProblemBody::Essay {
                question,
                hint,
                keywords,
            }),
        // completion
        (
            arb_text(),
            proptest::collection::vec("[a-zA-Z0-9]{1,10}", 1..4)
        )
            .prop_map(|(stem, blanks)| ProblemBody::Completion { stem, blanks }),
        // match
        (2usize..5, 0usize..1000).prop_flat_map(|(n, shift)| {
            (
                proptest::collection::vec(arb_text(), n..=n),
                proptest::collection::vec(arb_text(), n..=n),
                Just(shift),
            )
                .prop_map(move |(left, right, shift)| {
                    let n = left.len();
                    ProblemBody::Match(MatchPairs {
                        left,
                        right,
                        correct: (0..n).map(|i| (i + shift) % n).collect(),
                    })
                })
        }),
        // questionnaire
        (arb_text(), 2usize..6).prop_flat_map(|(prompt, n)| {
            (Just(prompt), proptest::collection::vec(arb_text(), n..=n)).prop_map(
                |(prompt, texts)| ProblemBody::Questionnaire {
                    prompt,
                    options: texts
                        .into_iter()
                        .enumerate()
                        .map(|(i, t)| ChoiceOption::new(OptionKey::from_index(i).unwrap(), t))
                        .collect(),
                },
            )
        }),
    ]
}

fn arb_problem() -> impl Strategy<Value = Problem> {
    ("[a-z][a-z0-9-]{0,12}", arb_body(), 0usize..6, 1u32..10).prop_map(
        |(id, body, level, points)| {
            Problem::new(id, body)
                .unwrap()
                .with_points(f64::from(points))
                .with_subject("prop-subject")
                .with_cognition_level(CognitionLevel::ALL[level])
        },
    )
}

fn arb_answer() -> impl Strategy<Value = Answer> {
    prop_oneof![
        (0usize..8).prop_map(|i| Answer::Choice(OptionKey::from_index(i).unwrap())),
        proptest::collection::vec(0usize..8, 0..4).prop_map(|is| Answer::MultiChoice(
            is.into_iter()
                .map(|i| OptionKey::from_index(i).unwrap())
                .collect()
        )),
        any::<bool>().prop_map(Answer::TrueFalse),
        "[ -~]{0,24}".prop_map(Answer::Text),
        proptest::collection::vec("[a-z0-9 ]{0,8}", 0..3).prop_map(Answer::Completion),
        proptest::collection::vec(0usize..6, 0..4).prop_map(Answer::Match),
        Just(Answer::Skipped),
    ]
}

fn arb_exam_record() -> impl Strategy<Value = ExamRecord> {
    (1usize..5, 1usize..6).prop_flat_map(|(n_students, n_questions)| {
        proptest::collection::vec(
            proptest::collection::vec(
                (arb_answer(), any::<bool>(), 0u32..100),
                n_questions..=n_questions,
            ),
            n_students..=n_students,
        )
        .prop_map(move |matrix| {
            let students = matrix
                .into_iter()
                .enumerate()
                .map(|(s, row)| {
                    let responses = row
                        .into_iter()
                        .enumerate()
                        .map(|(q, (answer, correct, points))| {
                            let mut response = if correct {
                                ItemResponse::correct(
                                    format!("q{q}").parse().unwrap(),
                                    answer,
                                    f64::from(points),
                                )
                            } else {
                                ItemResponse::incorrect(
                                    format!("q{q}").parse().unwrap(),
                                    answer,
                                    f64::from(points),
                                )
                            };
                            response.time_spent = std::time::Duration::from_secs(u64::from(points));
                            response
                        })
                        .collect();
                    StudentRecord::new(format!("s{s}").parse().unwrap(), responses)
                })
                .collect();
            ExamRecord::new("prop-exam".parse().unwrap(), students)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn qti_results_round_trip(record in arb_exam_record()) {
        let doc = results_to_qti(&record);
        let text = doc.to_xml_string();
        let parsed = mine_assessment::xml::parse_document(&text).unwrap();
        let back = results_from_qti(&parsed).unwrap();
        prop_assert_eq!(&back.exam, &record.exam);
        prop_assert_eq!(back.class_size(), record.class_size());
        for (a, b) in back.students.iter().zip(&record.students) {
            prop_assert_eq!(&a.student, &b.student);
            prop_assert_eq!(a.score(), b.score());
            prop_assert_eq!(a.correct_count(), b.correct_count());
            for (ra, rb) in a.responses.iter().zip(&b.responses) {
                prop_assert_eq!(&ra.answer, &rb.answer);
                prop_assert_eq!(ra.time_spent, rb.time_spent);
            }
        }
    }

    #[test]
    fn aicc_round_trip_from_packages(
        problems in proptest::collection::vec(arb_problem(), 1..6)
    ) {
        let mut seen = std::collections::HashSet::new();
        let problems: Vec<Problem> = problems
            .into_iter()
            .filter(|p| seen.insert(p.id().clone()))
            .collect();
        let package = ContentPackage::builder("PKG-AICC")
            .problems(problems.clone())
            .build()
            .unwrap();
        let course = AiccCourse::from_manifest(&package.manifest).unwrap();
        course.validate().unwrap();
        prop_assert_eq!(course.units.len(), problems.len());
        let back = AiccCourse::parse(&course.to_crs(), &course.to_au(), &course.to_cst()).unwrap();
        back.validate().unwrap();
        prop_assert_eq!(back.units, course.units);
        prop_assert_eq!(back.course_id, course.course_id);
    }

    #[test]
    fn qti_item_round_trip(problem in arb_problem()) {
        let xml = item_to_qti(&problem);
        let text = mine_assessment::xml::Document::new(xml).to_xml_string();
        let parsed = mine_assessment::xml::parse_document(&text).unwrap();
        let back = item_from_qti(&parsed.root).unwrap();
        prop_assert_eq!(back.body(), problem.body());
        prop_assert_eq!(back.points(), problem.points());
        prop_assert_eq!(back.cognition_level(), problem.cognition_level());
        prop_assert_eq!(back.subject(), problem.subject());
    }

    #[test]
    fn scorm_content_xml_round_trip(problem in arb_problem()) {
        let xml = problem_to_content_xml(&problem);
        let text = mine_assessment::xml::Document::new(xml).to_xml_string();
        let parsed = mine_assessment::xml::parse_document(&text).unwrap();
        let back = problem_from_content_xml(&parsed.root).unwrap();
        prop_assert_eq!(back.body(), problem.body());
        prop_assert_eq!(back.points(), problem.points());
    }

    #[test]
    fn scorm_package_round_trip(
        problems in proptest::collection::vec(arb_problem(), 1..6)
    ) {
        // Deduplicate ids (the generator may collide).
        let mut seen = std::collections::HashSet::new();
        let problems: Vec<Problem> = problems
            .into_iter()
            .filter(|p| seen.insert(p.id().clone()))
            .collect();
        let package = ContentPackage::builder("PKG-PROP")
            .problems(problems.clone())
            .build()
            .unwrap();
        let reparsed = ContentPackage::from_files(package.clone().into_files()).unwrap();
        prop_assert_eq!(&reparsed.manifest, &package.manifest);
        let extracted = reparsed.extract_problems().unwrap();
        prop_assert_eq!(extracted.len(), problems.len());
        for problem in &problems {
            let found = extracted.iter().find(|p| p.id() == problem.id()).unwrap();
            prop_assert_eq!(found.body(), problem.body());
            prop_assert_eq!(found.metadata(), problem.metadata());
        }
    }
}
