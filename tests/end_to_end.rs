//! End-to-end integration: author → package → exchange → deliver →
//! track → analyze → write back, across every crate in the workspace.

use std::time::Duration;

use mine_assessment::analysis::{render_signal_report, AnalysisConfig};
use mine_assessment::authoring::{AuthoringSystem, ExternalRepository};
use mine_assessment::core::{Answer, CognitionLevel, ExamRecord, OptionKey};
use mine_assessment::delivery::{DeliveryOptions, MonitorEvent, RteBridge};
use mine_assessment::itembank::{
    ChoiceOption, Exam, ExamEntry, GroupStyle, PresentationGroup, Problem,
};
use mine_assessment::metadata::DisplayOrder;
use mine_assessment::simulator::{CohortSpec, Simulation};

fn build_system() -> (AuthoringSystem, mine_assessment::core::ExamId) {
    let system = AuthoringSystem::new();
    for i in 0..8 {
        system
            .author_problem(
                "hung",
                Problem::multiple_choice(
                    format!("q{i}"),
                    format!("Question {i} about protocol layering"),
                    OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("choice {k}"))),
                    OptionKey::B,
                )
                .unwrap()
                .with_subject(if i < 4 { "layers" } else { "addressing" })
                .with_cognition_level(if i % 2 == 0 {
                    CognitionLevel::Knowledge
                } else {
                    CognitionLevel::Comprehension
                }),
            )
            .unwrap();
    }
    let mut builder = Exam::builder("integration-final")
        .unwrap()
        .title("Integration final")
        .display_order(DisplayOrder::Fixed)
        .group(
            PresentationGroup::new("part1".parse().unwrap()).with_style(GroupStyle {
                columns: 2,
                shuffle_within: true,
                ..GroupStyle::default()
            }),
        )
        .test_time(Duration::from_secs(3600));
    for i in 0..8 {
        let entry = ExamEntry::new(format!("q{i}").parse().unwrap());
        builder = builder.entry_with(if i < 4 {
            entry.in_group("part1".parse().unwrap())
        } else {
            entry
        });
    }
    system.author_exam("lin", builder.build().unwrap()).unwrap();
    (system, "integration-final".parse().unwrap())
}

#[test]
fn full_lifecycle_author_to_writeback() {
    let (system, exam_id) = build_system();

    // Deliver to one real session with RTE tracking and the monitor.
    let (mut session, mut monitor) = system
        .deliver(
            &exam_id,
            "manual-student".parse().unwrap(),
            DeliveryOptions::default(),
        )
        .unwrap();
    let mut bridge = RteBridge::launch(&"manual-student".parse().unwrap(), "Manual").unwrap();
    while let Some(problem) = session.current().cloned() {
        let answer = Answer::Choice(OptionKey::B);
        let correct = problem.grade(&answer).unwrap().is_correct;
        session
            .answer(answer.clone(), Duration::from_secs(20))
            .unwrap();
        bridge
            .record_answer(
                problem.id().as_str(),
                &answer,
                correct,
                Duration::from_secs(20),
            )
            .unwrap();
        monitor.on_answer(session.elapsed());
    }
    let manual_record = session.finish().unwrap();
    monitor.on_finish(manual_record.attempted_count(), manual_record.total_time);
    let api = bridge.finish(&manual_record).unwrap();
    assert_eq!(api.model().score_raw, Some(100.0));
    assert_eq!(api.model().lesson_status, "passed");

    // The rest of the class is simulated through the same delivery path.
    let (exam, problems) = system.repository().resolve_exam(&exam_id).unwrap();
    let mut record = Simulation::new(exam, problems)
        .cohort(CohortSpec::new(43).seed(8))
        .run_monitored(system.monitor_hub())
        .unwrap();
    record.students.push(manual_record);
    assert_eq!(record.class_size(), 44);
    record.validate().unwrap();

    // Monitor saw every simulated session plus the manual one.
    let events = system.monitor_hub().drain();
    let finishes = events
        .iter()
        .filter(|e| matches!(e, MonitorEvent::SessionFinished { .. }))
        .count();
    assert_eq!(finishes, 44);

    // Analyze and write the measured indices back into the bank.
    let record = ExamRecord::new(exam_id.clone(), record.students);
    let analysis = system
        .analyze(&exam_id, &record, &AnalysisConfig::default())
        .unwrap();
    assert_eq!(analysis.questions.len(), 8);
    let report = render_signal_report(&analysis);
    assert!(report.contains("class of 44"));

    system.apply_analysis("lin", &exam_id, &analysis).unwrap();
    for i in 0..8 {
        let problem = system
            .repository()
            .problem(&format!("q{i}").parse().unwrap())
            .unwrap();
        let test = problem.metadata().individual_test.as_ref().unwrap();
        assert!(test.difficulty.is_some(), "q{i} difficulty written back");
        assert!(
            test.discrimination.is_some(),
            "q{i} discrimination written back"
        );
    }
}

#[test]
fn scorm_exchange_preserves_written_back_metadata() {
    let (system, exam_id) = build_system();
    let (exam, problems) = system.repository().resolve_exam(&exam_id).unwrap();
    let record = Simulation::new(exam, problems)
        .cohort(CohortSpec::new(44).seed(21))
        .run()
        .unwrap();
    let analysis = system
        .analyze(&exam_id, &record, &AnalysisConfig::default())
        .unwrap();
    system.apply_analysis("lin", &exam_id, &analysis).unwrap();

    // Publish and reimport elsewhere; the measured indices travel in the
    // SCORM descriptors.
    let external = ExternalRepository::new();
    system
        .publish("lin", &exam_id, &external, "final-pkg")
        .unwrap();
    let other = AuthoringSystem::new();
    let report = other
        .import_package("chen", &external.fetch("final-pkg").unwrap())
        .unwrap();
    assert_eq!(report.imported_problems.len(), 8);

    let original = system.repository().problem(&"q3".parse().unwrap()).unwrap();
    let imported = other.repository().problem(&"q3".parse().unwrap()).unwrap();
    assert_eq!(
        original
            .metadata()
            .individual_test
            .as_ref()
            .unwrap()
            .difficulty,
        imported
            .metadata()
            .individual_test
            .as_ref()
            .unwrap()
            .difficulty,
    );
    assert_eq!(original.body(), imported.body());
}

#[test]
fn qti_exchange_round_trips_the_same_exam() {
    let (system, exam_id) = build_system();
    let doc = system.export_qti("lin", &exam_id).unwrap();
    let text = doc.to_xml_string();
    let parsed = mine_assessment::xml::parse_document(&text).unwrap();
    let other = AuthoringSystem::new();
    let report = other.import_qti("chen", &parsed).unwrap();
    assert_eq!(report.imported_problems.len(), 8);
    let (exam, _) = other.repository().resolve_exam(&exam_id).unwrap();
    assert_eq!(exam.title(), "Integration final");
    assert_eq!(exam.len(), 8);
    assert!(exam.group(&"part1".parse().unwrap()).is_some());
}

#[test]
fn random_display_order_still_analyzes() {
    let system = AuthoringSystem::new();
    for i in 0..6 {
        system
            .author_problem(
                "hung",
                Problem::true_false(format!("t{i}"), format!("Statement {i}"), i % 2 == 0).unwrap(),
            )
            .unwrap();
    }
    let mut builder = Exam::builder("shuffled")
        .unwrap()
        .display_order(DisplayOrder::Random);
    for i in 0..6 {
        builder = builder.entry(format!("t{i}").parse().unwrap());
    }
    system.author_exam("lin", builder.build().unwrap()).unwrap();

    let (exam, problems) = system
        .repository()
        .resolve_exam(&"shuffled".parse().unwrap())
        .unwrap();
    let record = Simulation::new(exam, problems)
        .cohort(CohortSpec::new(40).seed(17))
        .run()
        .unwrap();
    // Students saw different orders, yet records stay consistent and the
    // analysis works on the canonical problem set.
    record.validate().unwrap();
    let analysis = system
        .analyze(
            &"shuffled".parse().unwrap(),
            &record,
            &AnalysisConfig::default(),
        )
        .unwrap();
    assert_eq!(analysis.questions.len(), 6);
}
