//! Property-based invariants across the delivery → analysis pipeline.

use std::time::Duration;

use proptest::prelude::*;

use mine_assessment::analysis::{AnalysisConfig, BatchAnalyzer, ExamAnalysis, ScoreGroups};
use mine_assessment::core::{Answer, CognitionLevel, GroupFraction, OptionKey};
use mine_assessment::delivery::{DeliveryOptions, ExamSession};
use mine_assessment::itembank::{ChoiceOption, Exam, Problem};
use mine_assessment::simulator::{CohortSpec, Simulation};

fn problems(n_questions: usize, n_options: usize) -> Vec<Problem> {
    (0..n_questions)
        .map(|i| {
            Problem::multiple_choice(
                format!("q{i}"),
                format!("Question {i}"),
                OptionKey::first(n_options).map(|k| ChoiceOption::new(k, format!("{k}"))),
                OptionKey::A,
            )
            .unwrap()
            .with_subject(format!("subject{}", i % 3))
            .with_cognition_level(CognitionLevel::ALL[i % 6])
        })
        .collect()
}

fn exam(n_questions: usize) -> Exam {
    let mut builder = Exam::builder("prop-exam").unwrap();
    for i in 0..n_questions {
        builder = builder.entry(format!("q{i}").parse().unwrap());
    }
    builder.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The §4.1.1 identities hold for every question of every simulated
    /// class: D = PH − PL, P = (PH + PL)/2, both in range, and option
    /// matrix column sums never exceed the group size.
    #[test]
    fn index_identities_hold(
        class in 8usize..60,
        n_questions in 2usize..8,
        n_options in 2usize..6,
        seed in 0u64..500,
    ) {
        let problems = problems(n_questions, n_options);
        let record = Simulation::new(exam(n_questions), problems.clone())
            .cohort(CohortSpec::new(class).seed(seed))
            .run()
            .unwrap();
        let analysis =
            ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default()).unwrap();
        let group_size = analysis.groups.group_size();
        for question in &analysis.questions {
            let i = &question.indices;
            prop_assert!((i.discrimination.value() - (i.ph - i.pl)).abs() < 1e-12);
            prop_assert!((i.difficulty.value() - (i.ph + i.pl) / 2.0).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&i.ph));
            prop_assert!((0.0..=1.0).contains(&i.pl));
            let matrix = question.matrix.as_ref().unwrap();
            prop_assert!(matrix.high_sum() <= group_size);
            prop_assert!(matrix.low_sum() <= group_size);
        }
        // The two-way table classifies every problem (all carry levels).
        prop_assert_eq!(analysis.two_way.total(), n_questions);
        prop_assert!(analysis.two_way.unclassified().is_empty());
    }

    /// High and low groups are disjoint and sized per the fraction, for
    /// any acceptable fraction.
    #[test]
    fn group_split_invariants(
        class in 4usize..120,
        fraction in 0.25f64..0.34,
        seed in 0u64..200,
    ) {
        let problems = problems(3, 4);
        let record = Simulation::new(exam(3), problems)
            .cohort(CohortSpec::new(class).seed(seed))
            .run()
            .unwrap();
        let fraction = GroupFraction::new(fraction).unwrap();
        let groups = ScoreGroups::split(&record, fraction).unwrap();
        prop_assert_eq!(groups.high().len(), groups.low().len());
        prop_assert!(2 * groups.group_size() <= class);
        for student in groups.high() {
            prop_assert!(!groups.is_low(student));
        }
        // High-group minimum score ≥ low-group maximum score.
        let score_of = |id: &mine_assessment::core::StudentId| {
            record
                .students
                .iter()
                .find(|s| &s.student == id)
                .unwrap()
                .score()
        };
        let high_min = groups.high().iter().map(score_of).fold(f64::INFINITY, f64::min);
        let low_max = groups.low().iter().map(score_of).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(high_min >= low_max);
    }

    /// Analysis is a pure function of the record: re-running it yields
    /// identical output.
    #[test]
    fn analysis_is_deterministic(seed in 0u64..100) {
        let problems = problems(5, 4);
        let record = Simulation::new(exam(5), problems.clone())
            .cohort(CohortSpec::new(30).seed(seed))
            .run()
            .unwrap();
        let a = ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default()).unwrap();
        let b = ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Pausing and resuming a session at any point produces the same
    /// final record as an uninterrupted sitting with the same answers.
    #[test]
    fn resume_equivalence(
        pause_at in 0usize..5,
        seed in 0u64..100,
        answers in proptest::collection::vec(0usize..4, 5),
    ) {
        let problems = problems(5, 4);
        let the_exam = exam(5);
        let student: mine_assessment::core::StudentId = "s".parse().unwrap();
        let options = DeliveryOptions {
            seed,
            resumable: true,
            time_accommodation: 1.0,
        };

        // Uninterrupted run.
        let mut straight =
            ExamSession::start(&the_exam, problems.clone(), student.clone(), options.clone())
                .unwrap();
        for &choice in &answers {
            straight
                .answer(
                    Answer::Choice(OptionKey::from_index(choice).unwrap()),
                    Duration::from_secs(10),
                )
                .unwrap();
        }
        let expected = straight.finish().unwrap();

        // Interrupted run.
        let mut first =
            ExamSession::start(&the_exam, problems.clone(), student, options).unwrap();
        for &choice in &answers[..pause_at] {
            first
                .answer(
                    Answer::Choice(OptionKey::from_index(choice).unwrap()),
                    Duration::from_secs(10),
                )
                .unwrap();
        }
        let checkpoint = first.pause().unwrap();
        let json = serde_json::to_string(&checkpoint).unwrap();
        let restored = serde_json::from_str(&json).unwrap();
        let mut second = ExamSession::resume(&the_exam, problems, restored).unwrap();
        for &choice in &answers[pause_at..] {
            second
                .answer(
                    Answer::Choice(OptionKey::from_index(choice).unwrap()),
                    Duration::from_secs(10),
                )
                .unwrap();
        }
        let actual = second.finish().unwrap();
        prop_assert_eq!(actual, expected);
    }

    /// Stronger cohorts never analyze as harder: mean difficulty index P
    /// (larger = easier) is non-decreasing in cohort ability.
    #[test]
    fn difficulty_tracks_ability(seed in 0u64..50) {
        let problems = problems(6, 4);
        let mean_p = |ability: f64| {
            let record = Simulation::new(exam(6), problems.clone())
                .students(CohortSpec::new(80).ability(ability, 0.4).seed(seed).generate())
                .seed(seed)
                .run()
                .unwrap();
            let analysis =
                ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default()).unwrap();
            analysis
                .questions
                .iter()
                .map(|q| q.indices.difficulty.value())
                .sum::<f64>()
                / 6.0
        };
        let weak = mean_p(-1.5);
        let strong = mean_p(1.5);
        prop_assert!(strong > weak, "strong {strong} vs weak {weak}");
    }

    /// The parallel batch engine is invisible in the output: for any
    /// batch and any thread count, every analysis serializes to exactly
    /// the bytes the sequential pipeline produces.
    #[test]
    fn batch_analysis_is_byte_identical_to_sequential(
        exams in 1usize..6,
        class in 8usize..40,
        n_questions in 2usize..7,
        threads in 1usize..9,
        seed in 0u64..200,
    ) {
        let problems = problems(n_questions, 4);
        let records: Vec<_> = (0..exams)
            .map(|i| {
                Simulation::new(exam(n_questions), problems.clone())
                    .cohort(CohortSpec::new(class).seed(seed.wrapping_add(i as u64)))
                    .run()
                    .unwrap()
            })
            .collect();
        let report = BatchAnalyzer::new(AnalysisConfig::default())
            .with_threads(threads)
            .analyze_records(&records, &problems)
            .unwrap();
        prop_assert_eq!(report.analyses.len(), records.len());
        for (record, parallel) in records.iter().zip(&report.analyses) {
            let sequential =
                ExamAnalysis::analyze(record, &problems, &AnalysisConfig::default()).unwrap();
            let parallel_bytes = serde_json::to_string(parallel).unwrap();
            let sequential_bytes = serde_json::to_string(&sequential).unwrap();
            prop_assert_eq!(&parallel_bytes, &sequential_bytes);
        }
    }

    /// The simulator's parallel cohort path is likewise invisible: same
    /// seed, same record, whatever the thread count.
    #[test]
    fn parallel_simulation_is_byte_identical_to_sequential(
        class in 4usize..40,
        threads in 0usize..9,
        seed in 0u64..200,
    ) {
        let problems = problems(4, 4);
        let simulation = Simulation::new(exam(4), problems)
            .cohort(CohortSpec::new(class).seed(seed));
        let sequential = simulation.run().unwrap();
        let parallel = simulation.run_parallel(threads).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&parallel).unwrap(),
            serde_json::to_string(&sequential).unwrap()
        );
    }
}
