//! End-to-end tests of the `mine` CLI binary: each test drives the real
//! executable over a temp database file.

use std::path::PathBuf;
use std::process::{Command, Output};

fn mine_bin() -> PathBuf {
    // Integration tests run from target/debug/deps; the binary sits one
    // level up. CARGO_BIN_EXE_<name> is set because the bin belongs to
    // this package.
    PathBuf::from(env!("CARGO_BIN_EXE_mine"))
}

fn run(args: &[&str]) -> Output {
    Command::new(mine_bin())
        .args(args)
        .output()
        .expect("mine binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).to_string()
}

fn temp_db(tag: &str) -> (tempdir::Dir, String) {
    let dir = tempdir::Dir::new(tag);
    let db = dir.path.join("bank.json").display().to_string();
    (dir, db)
}

/// Minimal self-removing temp dir (no tempfile crate in the sanctioned
/// set).
mod tempdir {
    pub struct Dir {
        pub path: std::path::PathBuf,
    }

    impl Dir {
        pub fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "mine-cli-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id(),
            ));
            std::fs::create_dir_all(&path).expect("temp dir creatable");
            Self { path }
        }
    }

    impl Drop for Dir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[test]
fn full_cli_workflow() {
    let (_dir, db) = temp_db("workflow");

    let out = run(&["init", &db]);
    assert!(out.status.success(), "{out:?}");

    let out = run(&[
        "add-choice",
        &db,
        "q1",
        "networking",
        "B",
        "A",
        "Which protocol is reliable?",
        "TCP",
        "UDP",
        "ICMP",
    ]);
    assert!(out.status.success(), "{out:?}");
    let out = run(&[
        "add-tf",
        &db,
        "q2",
        "networking",
        "A",
        "true",
        "TCP",
        "is",
        "reliable",
    ]);
    assert!(out.status.success(), "{out:?}");
    let out = run(&["add-exam", &db, "quiz", "Demo quiz", "q1", "q2"]);
    assert!(out.status.success(), "{out:?}");

    let out = run(&["list", &db]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("problems (2):"), "{text}");
    assert!(text.contains("multiple-choice"));
    assert!(text.contains("Demo quiz"));

    let out = run(&["search", &db, "reliable"]);
    let text = stdout(&out);
    assert!(text.contains("q1"), "{text}");
    assert!(text.contains("q2"), "{text}");

    let out = run(&["tree", &db, "q1"]);
    let text = stdout(&out);
    assert!(text.contains("MINE SCORM Meta-data"), "{text}");
    assert!(text.contains("Cognition: Comprehension (B)"), "{text}");

    let out = run(&["simulate", &db, "quiz", "44", "7"]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("EXAM ANALYSIS REPORT"), "{text}");
    assert!(text.contains("class 44"), "{text}");
    assert!(text.contains("lights:"), "{text}");
}

#[test]
fn export_scorm_writes_a_package_tree() {
    let (dir, db) = temp_db("scorm");
    run(&["init", &db]);
    run(&["add-tf", &db, "q1", "s", "A", "true", "statement"]);
    run(&["add-exam", &db, "e", "Exported", "q1"]);
    let out_dir = dir.path.join("pkg").display().to_string();
    let out = run(&["export-scorm", &db, "e", &out_dir]);
    assert!(out.status.success(), "{out:?}");
    assert!(dir.path.join("pkg/imsmanifest.xml").is_file());
    assert!(dir.path.join("pkg/problems/q1/content.xml").is_file());
    assert!(dir.path.join("pkg/problems/q1/descriptor.xml").is_file());
    assert!(dir.path.join("pkg/exam/exam.xml").is_file());
    // The written tree reparses as a valid package.
    let package =
        mine_assessment::scorm::ContentPackage::read_from_dir(dir.path.join("pkg")).unwrap();
    assert_eq!(package.extract_problems().unwrap().len(), 1);
}

#[test]
fn cli_errors_are_reported_not_panicked() {
    let (_dir, db) = temp_db("errors");
    // Unknown command.
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    // Missing database.
    let out = run(&["list", "/nonexistent/db.json"]);
    assert!(!out.status.success());
    // Duplicate problem id.
    run(&["init", &db]);
    run(&["add-tf", &db, "q1", "s", "A", "true", "x"]);
    let out = run(&["add-tf", &db, "q1", "s", "A", "true", "x"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("already exists"));
    // Bad cognition level.
    let out = run(&["add-tf", &db, "q2", "s", "Z", "true", "x"]);
    assert!(!out.status.success());
    // Exam referencing a missing problem.
    let out = run(&["add-exam", &db, "e", "T", "ghost"]);
    assert!(!out.status.success());
    // Simulate on an unknown exam.
    let out = run(&["simulate", &db, "nope", "10", "1"]);
    assert!(!out.status.success());
    // No args at all.
    let out = run(&[]);
    assert!(!out.status.success());
}

#[test]
fn thread_counts_are_validated_not_clamped() {
    let (_dir, db) = temp_db("threads");
    run(&["init", &db]);
    run(&["add-tf", &db, "q1", "s", "A", "true", "x"]);
    run(&["add-tf", &db, "q2", "s", "B", "false", "y"]);
    run(&["add-exam", &db, "e", "T", "q1", "q2"]);

    // Validation runs before anything touches the database, with a
    // typed error naming the offending source.
    for bad in ["0", "lots", "18446744073709551615", "4096"] {
        let out = run(&["batch-analyze", &db, "e", "1", "8", "1", "--threads", bad]);
        assert!(!out.status.success(), "--threads {bad} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(err.contains("--threads"), "error names the flag: {err}");
    }

    // The MINE_THREADS environment override is validated the same way…
    let out = Command::new(mine_bin())
        .args(["batch-analyze", &db, "e", "1", "8", "1"])
        .env("MINE_THREADS", "0")
        .output()
        .expect("mine binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("MINE_THREADS"));

    // …and an explicit --threads flag wins over a bad environment.
    let out = Command::new(mine_bin())
        .args(["batch-analyze", &db, "e", "1", "8", "1", "--threads", "2"])
        .env("MINE_THREADS", "0")
        .output()
        .expect("mine binary runs");
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("batch: 1 sittings"));

    // `serve` validates through the same path.
    let out = run(&["serve", &db, "--threads", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
}
